"""Shortest-path reconstruction on top of the SPC-Index.

The index stores distances and counts, not paths — but paths can be
reconstructed without any BFS by walking distance-consistent neighbors:
``w`` follows ``v`` on some shortest s-t path iff

    sd(s, w) = sd(s, v) + 1   and   sd(w, t) = sd(v, t) - 1

and both facts are O(l) index queries.  ``shortest_path`` extracts one path
in O(sd · deg · l); ``enumerate_shortest_paths`` yields them all (lazily,
with an optional cap — there may be exponentially many, which is the whole
point of counting them instead).
"""

INF = float("inf")


def shortest_path(graph, index, s, t):
    """Return one shortest s-t path as a vertex list, or None if unreachable.

    Example
    -------
    >>> from repro.graph import path_graph
    >>> from repro.core import build_spc_index
    >>> g = path_graph(4)
    >>> shortest_path(g, build_spc_index(g), 0, 3)
    [0, 1, 2, 3]
    """
    d = index.distance(s, t)
    if d is INF or d == INF:
        return None
    path = [s]
    v = s
    remaining = d
    while v != t:
        for w in graph.neighbors(v):
            if index.distance(w, t) == remaining - 1:
                path.append(w)
                v = w
                remaining -= 1
                break
        else:
            raise RuntimeError(
                f"index inconsistent with graph while tracing {s} -> {t}"
            )
    return path


def enumerate_shortest_paths(graph, index, s, t, limit=None):
    """Yield every shortest s-t path (each as a vertex list).

    Paths are produced in DFS order over distance-consistent neighbors;
    ``limit`` caps the enumeration (None = all).  The number of yielded
    paths equals ``index.count(s, t)`` — asserted by the test suite.
    """
    total_d = index.distance(s, t)
    if total_d == INF:
        return
    yielded = 0
    stack = [(s, [s])]
    while stack:
        v, prefix = stack.pop()
        if v == t:
            yield prefix
            yielded += 1
            if limit is not None and yielded >= limit:
                return
            continue
        remaining = total_d - len(prefix) + 1
        # Push in reverse-sorted order so paths pop lexicographically.
        nexts = [
            w for w in graph.neighbors(v)
            if index.distance(w, t) == remaining - 1
        ]
        for w in sorted(nexts, reverse=True):
            stack.append((w, prefix + [w]))


def is_on_some_shortest_path(index, s, t, v):
    """True if vertex ``v`` lies on at least one shortest s-t path."""
    d_st = index.distance(s, t)
    if d_st == INF:
        return False
    return index.distance(s, v) + index.distance(v, t) == d_st


def count_paths_through(index, s, t, v):
    """Number of shortest s-t paths passing through vertex ``v``.

    The classic Brandes decomposition: spc(s, v) * spc(v, t) when v is on a
    shortest path, else 0.  With v in {s, t} every shortest path "passes
    through" trivially.
    """
    d_st, c_st = index.query(s, t)
    if c_st == 0:
        return 0
    if v == s or v == t:
        return c_st
    d_sv, c_sv = index.query(s, v)
    d_vt, c_vt = index.query(v, t)
    if d_sv + d_vt != d_st:
        return 0
    return c_sv * c_vt
