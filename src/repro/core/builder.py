"""HP-SPC: static construction of the SPC-Index (§2.2, from Zhang & Yu [30]).

Every vertex v, in descending order of rank, performs a *hub pushing* step: a
pruned BFS over G_v — the subgraph of vertices ranked no higher than v.  The
BFS tracks the restricted distance D[w] and restricted counting C[w] (paths
whose intermediate vertices all rank below v, i.e. paths on which v is the
highest-ranked vertex).  When a vertex w is dequeued, the existing index is
probed: if it already certifies a distance shorter than D[w], every path the
BFS is following through w is non-shortest, so the search prunes; otherwise
the label (v, D[w], C[w]) — which equals (v, sd(v,w), spc(v̂,w)) whenever it
matters — is pushed into L(w) and the BFS continues.

The pruning probe uses the standard PLL engineering trick: the root's label
set is loaded into a dict once per BFS, making each probe O(|L(w)|).
"""

from collections import deque

from repro.core.index import SPCIndex
from repro.order import VertexOrder, make_order

INF = float("inf")


def build_spc_index(graph, order=None, strategy="degree"):
    """Construct the SPC-Index of ``graph`` under ``order``.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.Graph` (undirected, unweighted, simple).
    order:
        A :class:`repro.order.VertexOrder`, or None to derive one.
    strategy:
        Ordering strategy passed to :func:`repro.order.make_order` when
        ``order`` is None — ``"degree"`` is the paper's choice.

    Returns
    -------
    SPCIndex
        An index satisfying the Exact Shortest Paths Covering constraint:
        for every pair (s, t), SpcQUERY(s, t) = (sd(s,t), spc(s,t)).
    """
    if order is None:
        order = make_order(graph, strategy)
    elif not isinstance(order, VertexOrder):
        order = VertexOrder(order)
    index = SPCIndex(order, with_self_labels=False)
    rank = order.rank_map()

    for root in order:  # live vertices, highest rank first
        r = rank[root]
        if root not in graph:
            # Vertices may exist in the order but not the graph only if the
            # caller passed a stale order; treat as isolated.
            index.label_set(root).set(r, 0, 1)
            continue
        _hub_push(graph, index, rank, root, r)
    return index


def _hub_push(graph, index, rank, root, r):
    """One pruned BFS rooted at ``root`` (rank ``r``), pushing hub-``r`` labels."""
    label_of = index.label_set
    root_labels = label_of(root)
    root_labels.set(r, 0, 1)  # self label (v, 0, 1)
    root_dist = dict(zip(root_labels.hubs, root_labels.dists))

    dist = {root: 0}
    count = {root: 1}
    queue = deque()
    for w in graph.neighbors(root):
        if rank[w] > r:
            dist[w] = 1
            count[w] = 1
            queue.append(w)

    while queue:
        v = queue.popleft()
        dv = dist[v]
        # Pruning probe: distance via hubs ranked higher than root.
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        pruned = False
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None and rd + dists[i] < dv:
                pruned = True
                break
        if pruned:
            continue
        ls.set(r, dv, count[v])
        cv = count[v]
        dnext = dv + 1
        for w in graph.neighbors(v):
            dw = dist.get(w)
            if dw is None:
                if rank[w] > r:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv
    return index
