"""Instrumentation for the update algorithms.

The paper's Figures 8 and 9 report the average number of label operations
per update, broken down exactly as counted here:

* ``renew_count`` (RenewC) — counting renewed, distance unchanged;
* ``renew_dist`` (RenewD)  — distance renewed (count may change too);
* ``inserted``   (Insert)  — label newly inserted;
* ``removed``    (Remove)  — label deleted (decremental only).

Table 5 reports the affected-set cardinalities |SRa|, |SRb|, |Ra|, |Rb|,
also tracked here.  Every IncSPC / DecSPC call returns an
:class:`UpdateStats` so the benchmark harness reads these numbers directly
off the return value.
"""

from dataclasses import dataclass, field


@dataclass
class UpdateStats:
    """Counters describing one index update."""

    kind: str = ""  # "insert" | "delete"
    edge: tuple = ()
    renew_count: int = 0
    renew_dist: int = 0
    inserted: int = 0
    removed: int = 0
    bfs_visits: int = 0
    affected_hubs: int = 0
    sr_a: int = 0
    sr_b: int = 0
    r_a: int = 0
    r_b: int = 0
    isolated_fast_path: bool = False
    elapsed: float = 0.0

    @property
    def total_label_ops(self):
        """All label mutations performed by the update."""
        return self.renew_count + self.renew_dist + self.inserted + self.removed

    @property
    def net_entry_change(self):
        """Net change in the number of label entries (Insert - Remove)."""
        return self.inserted - self.removed

    def merge(self, other):
        """Accumulate another update's counters into this one (for streams)."""
        self.renew_count += other.renew_count
        self.renew_dist += other.renew_dist
        self.inserted += other.inserted
        self.removed += other.removed
        self.bfs_visits += other.bfs_visits
        self.affected_hubs += other.affected_hubs
        self.sr_a += other.sr_a
        self.sr_b += other.sr_b
        self.r_a += other.r_a
        self.r_b += other.r_b
        self.elapsed += other.elapsed
        return self


@dataclass
class StreamStats:
    """Aggregated counters over a stream of updates (Figure 10)."""

    updates: int = 0
    insertions: int = 0
    deletions: int = 0
    vertex_ops: int = 0
    totals: UpdateStats = field(default_factory=UpdateStats)
    per_update: list = field(default_factory=list)

    def record(self, stats):
        """Append one update's stats to the stream history."""
        self.updates += 1
        if stats.kind == "insert":
            self.insertions += 1
        elif stats.kind == "delete":
            self.deletions += 1
        else:
            self.vertex_ops += 1
        self.totals.merge(stats)
        self.per_update.append(stats)

    @property
    def accumulated_time(self):
        """Total elapsed seconds across all recorded updates."""
        return self.totals.elapsed

    @property
    def net_entry_change(self):
        """Net index entry growth over the stream."""
        return self.totals.inserted - self.totals.removed
