"""Label storage for the SPC-Index (§2.2, Table 2).

Each vertex v owns a label set L(v): triples (h, sd(h, v), σ_{h,v}) where h
is a hub ranked at least as high as v and σ_{h,v} = spc(ĥ, v), the number of
shortest h-v paths on which h is the highest-ranked vertex.

``LabelSet`` keeps the triples in three parallel lists sorted by hub rank
ascending (rank 0 = highest) — the in-memory equivalent of the paper's
"labels of each vertex are stored in an array in descending order of
ranking".  Sorted storage makes SpcQUERY a two-pointer merge and point
lookups a bisect.

Hubs are stored as *rank numbers*, not vertex ids: ranks are dense ints,
compare in one machine op, and stay stable across updates because new
vertices always append to the order.

``pack_entry``/``unpack_entry`` reproduce the paper's physical encoding
("each label entry (v, d, c) is encoded in a 64-bit integer ... v, d, and c
take up 25, 10, and 29 bits") so the Table 4 index-size accounting can use
the same 8-bytes-per-entry rule as the paper.

A ``LabelSet`` can additionally be *bound* to an index-level reverse hub
map (hub rank -> set of holder vertices) via :meth:`bind`.  Once bound,
every mutation — :meth:`set`, :meth:`remove`, :meth:`clear` — keeps the
shared map in sync, so the maintenance algorithms never have to thread
holder bookkeeping through their hot loops.  The reverse map is what makes
"who holds hub h?" an O(1) lookup instead of an O(n) sweep over every
label set (see DESIGN.md §9).

The same reporting seam optionally feeds a *dirty-vertex sink*: a set the
owning index installs (``set_dirty_sink``) that collects the owner vertex
of every mutated label set.  The serving layer drains it after each
applied batch to journal per-vertex label deltas for hub-partitioned
shards (DESIGN.md §13) without the maintenance algorithms knowing.
"""

from bisect import bisect_left

INF = float("inf")

HUB_BITS = 25
DIST_BITS = 10
COUNT_BITS = 29

_HUB_MAX = (1 << HUB_BITS) - 1
_DIST_MAX = (1 << DIST_BITS) - 1
_COUNT_MAX = (1 << COUNT_BITS) - 1

ENTRY_BYTES = 8


def pack_entry(hub, dist, count):
    """Pack (hub, dist, count) into the paper's 64-bit layout.

    Counts larger than 29 bits saturate at the field maximum, mirroring what
    a fixed-width implementation would be forced to do.
    """
    if not 0 <= hub <= _HUB_MAX:
        raise ValueError(f"hub {hub} out of {HUB_BITS}-bit range")
    if not 0 <= dist <= _DIST_MAX:
        raise ValueError(f"dist {dist} out of {DIST_BITS}-bit range")
    c = min(count, _COUNT_MAX)
    if c < 0:
        raise ValueError(f"count {count} must be non-negative")
    return (hub << (DIST_BITS + COUNT_BITS)) | (dist << COUNT_BITS) | c


def unpack_entry(packed):
    """Invert :func:`pack_entry`; returns (hub, dist, count)."""
    hub = packed >> (DIST_BITS + COUNT_BITS)
    dist = (packed >> COUNT_BITS) & _DIST_MAX
    count = packed & _COUNT_MAX
    return hub, dist, count


class LabelSet:
    """Sorted triple store for one vertex's labels.

    The three parallel lists are public attributes (``hubs``, ``dists``,
    ``counts``) because the update algorithms iterate them in hot loops;
    mutate only through :meth:`set` / :meth:`remove` so sortedness holds.

    When owned by an index, the set is *bound* (:meth:`bind`) to the
    index's reverse hub map; mutations then maintain the map transparently.
    """

    __slots__ = ("hubs", "dists", "counts", "_holders", "_owner", "_sink")

    def __init__(self):
        self.hubs = []
        self.dists = []
        self.counts = []
        self._holders = None
        self._owner = None
        self._sink = None

    def bind(self, holders, owner):
        """Attach this set to a shared reverse hub map.

        ``holders`` is the index's ``{hub_rank: set(vertex_id)}`` dict and
        ``owner`` the vertex whose labels this set stores.  Any hubs already
        present are registered immediately, so binding a populated set (as
        ``from_dict`` / ``copy`` do) leaves the map consistent.
        """
        self._holders = holders
        self._owner = owner
        for h in self.hubs:
            s = holders.get(h)
            if s is None:
                holders[h] = {owner}
            else:
                s.add(owner)

    def __len__(self):
        return len(self.hubs)

    def __iter__(self):
        """Iterate (hub_rank, dist, count) triples in ascending rank order."""
        return zip(self.hubs, self.dists, self.counts)

    def __contains__(self, hub):
        i = bisect_left(self.hubs, hub)
        return i < len(self.hubs) and self.hubs[i] == hub

    def get(self, hub):
        """Return (dist, count) for ``hub`` or None if absent."""
        hubs = self.hubs
        i = bisect_left(hubs, hub)
        if i < len(hubs) and hubs[i] == hub:
            return self.dists[i], self.counts[i]
        return None

    def set(self, hub, dist, count):
        """Insert or replace the entry for ``hub``.

        Returns ``"inserted"`` or ``"replaced"`` so callers can maintain the
        paper's RenewC / RenewD / Insert statistics without a second lookup.
        """
        sink = self._sink
        if sink is not None:
            sink.add(self._owner)
        hubs = self.hubs
        i = bisect_left(hubs, hub)
        if i < len(hubs) and hubs[i] == hub:
            self.dists[i] = dist
            self.counts[i] = count
            return "replaced"
        hubs.insert(i, hub)
        self.dists.insert(i, dist)
        self.counts.insert(i, count)
        holders = self._holders
        if holders is not None:
            s = holders.get(hub)
            if s is None:
                holders[hub] = {self._owner}
            else:
                s.add(self._owner)
        return "inserted"

    def remove(self, hub):
        """Delete the entry for ``hub``; returns True if it existed."""
        hubs = self.hubs
        i = bisect_left(hubs, hub)
        if i < len(hubs) and hubs[i] == hub:
            sink = self._sink
            if sink is not None:
                sink.add(self._owner)
            del hubs[i]
            del self.dists[i]
            del self.counts[i]
            holders = self._holders
            if holders is not None:
                s = holders.get(hub)
                if s is not None:
                    s.discard(self._owner)
                    if not s:
                        del holders[hub]
            return True
        return False

    def clear(self):
        """Remove every entry.

        Marks the owner dirty even when already empty: a vertex drop must
        reach the delta journal so shards forget the vertex too.
        """
        sink = self._sink
        if sink is not None:
            sink.add(self._owner)
        holders = self._holders
        if holders is not None:
            owner = self._owner
            for h in self.hubs:
                s = holders.get(h)
                if s is not None:
                    s.discard(owner)
                    if not s:
                        del holders[h]
        del self.hubs[:]
        del self.dists[:]
        del self.counts[:]

    def as_dict(self):
        """Return {hub_rank: (dist, count)} — handy for tests."""
        return {h: (d, c) for h, d, c in self}

    def copy(self):
        """Return an independent, *unbound* copy of this label set.

        The copy does not report into any reverse hub map; the adopting
        index re-binds it (see ``SPCIndex.copy``).
        """
        other = LabelSet()
        other.hubs = list(self.hubs)
        other.dists = list(self.dists)
        other.counts = list(self.counts)
        return other

    def packed(self):
        """Return the entries in the paper's 64-bit packed encoding."""
        return [pack_entry(h, d, c) for h, d, c in self]

    def __repr__(self):
        entries = ", ".join(f"({h},{d},{c})" for h, d, c in self)
        return f"LabelSet[{entries}]"


def counting_probe(source_labels, target_label_of, hub_filter=None):
    """Return ``probe(t) -> (sd, spc)`` sharing one scan of the source labels.

    The PSPC-style batch-serving primitive behind ``source_probe`` on every
    counting index: ``source_labels`` (an iterable of (hub, dist, count)
    triples — the query source's label set) is materialized into one
    hub -> (dist, count) dict, and each ``probe(t)`` answers by a single
    scan over ``target_label_of(t)``'s label arrays — the same array-probe
    trick SrrSEARCH uses.  Equivalent to the two-pointer merge query for
    every t; profitable whenever several queries share a source.

    ``hub_filter`` (a ``rank -> bool`` predicate) restricts the merge to a
    hub subset, yielding a *partial* answer: the (dist, count) contribution
    of just those hubs.  Partials over a partition of the hub space combine
    back to the full answer with
    :func:`repro.audit.comparator.merge_partial_answers` — the algebra the
    scatter-gather shard router is built on (DESIGN.md §13).
    """
    s_entry = {}
    if hub_filter is None:
        for h, d, c in source_labels:
            s_entry[h] = (d, c)
    else:
        for h, d, c in source_labels:
            if hub_filter(h):
                s_entry[h] = (d, c)

    def probe(t):
        lt = target_label_of(t)
        hubs, dists, counts = lt.hubs, lt.dists, lt.counts
        best = INF
        count = 0
        get = s_entry.get
        for i in range(len(hubs)):
            e = get(hubs[i])
            if e is not None:
                d = e[0] + dists[i]
                if d < best:
                    best = d
                    count = e[1] * counts[i]
                elif d == best:
                    count += e[1] * counts[i]
        return best, count

    return probe
