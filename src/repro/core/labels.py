"""Label storage for the SPC-Index (§2.2, Table 2).

Each vertex v owns a label set L(v): triples (h, sd(h, v), σ_{h,v}) where h
is a hub ranked at least as high as v and σ_{h,v} = spc(ĥ, v), the number of
shortest h-v paths on which h is the highest-ranked vertex.

``LabelSet`` keeps the triples in three parallel lists sorted by hub rank
ascending (rank 0 = highest) — the in-memory equivalent of the paper's
"labels of each vertex are stored in an array in descending order of
ranking".  Sorted storage makes SpcQUERY a two-pointer merge and point
lookups a bisect.

Hubs are stored as *rank numbers*, not vertex ids: ranks are dense ints,
compare in one machine op, and stay stable across updates because new
vertices always append to the order.

``pack_entry``/``unpack_entry`` reproduce the paper's physical encoding
("each label entry (v, d, c) is encoded in a 64-bit integer ... v, d, and c
take up 25, 10, and 29 bits") so the Table 4 index-size accounting can use
the same 8-bytes-per-entry rule as the paper.
"""

from bisect import bisect_left

HUB_BITS = 25
DIST_BITS = 10
COUNT_BITS = 29

_HUB_MAX = (1 << HUB_BITS) - 1
_DIST_MAX = (1 << DIST_BITS) - 1
_COUNT_MAX = (1 << COUNT_BITS) - 1

ENTRY_BYTES = 8


def pack_entry(hub, dist, count):
    """Pack (hub, dist, count) into the paper's 64-bit layout.

    Counts larger than 29 bits saturate at the field maximum, mirroring what
    a fixed-width implementation would be forced to do.
    """
    if not 0 <= hub <= _HUB_MAX:
        raise ValueError(f"hub {hub} out of {HUB_BITS}-bit range")
    if not 0 <= dist <= _DIST_MAX:
        raise ValueError(f"dist {dist} out of {DIST_BITS}-bit range")
    c = min(count, _COUNT_MAX)
    if c < 0:
        raise ValueError(f"count {count} must be non-negative")
    return (hub << (DIST_BITS + COUNT_BITS)) | (dist << COUNT_BITS) | c


def unpack_entry(packed):
    """Invert :func:`pack_entry`; returns (hub, dist, count)."""
    hub = packed >> (DIST_BITS + COUNT_BITS)
    dist = (packed >> COUNT_BITS) & _DIST_MAX
    count = packed & _COUNT_MAX
    return hub, dist, count


class LabelSet:
    """Sorted triple store for one vertex's labels.

    The three parallel lists are public attributes (``hubs``, ``dists``,
    ``counts``) because the update algorithms iterate them in hot loops;
    mutate only through :meth:`set` / :meth:`remove` so sortedness holds.
    """

    __slots__ = ("hubs", "dists", "counts")

    def __init__(self):
        self.hubs = []
        self.dists = []
        self.counts = []

    def __len__(self):
        return len(self.hubs)

    def __iter__(self):
        """Iterate (hub_rank, dist, count) triples in ascending rank order."""
        return zip(self.hubs, self.dists, self.counts)

    def __contains__(self, hub):
        i = bisect_left(self.hubs, hub)
        return i < len(self.hubs) and self.hubs[i] == hub

    def get(self, hub):
        """Return (dist, count) for ``hub`` or None if absent."""
        hubs = self.hubs
        i = bisect_left(hubs, hub)
        if i < len(hubs) and hubs[i] == hub:
            return self.dists[i], self.counts[i]
        return None

    def set(self, hub, dist, count):
        """Insert or replace the entry for ``hub``.

        Returns ``"inserted"`` or ``"replaced"`` so callers can maintain the
        paper's RenewC / RenewD / Insert statistics without a second lookup.
        """
        hubs = self.hubs
        i = bisect_left(hubs, hub)
        if i < len(hubs) and hubs[i] == hub:
            self.dists[i] = dist
            self.counts[i] = count
            return "replaced"
        hubs.insert(i, hub)
        self.dists.insert(i, dist)
        self.counts.insert(i, count)
        return "inserted"

    def remove(self, hub):
        """Delete the entry for ``hub``; returns True if it existed."""
        hubs = self.hubs
        i = bisect_left(hubs, hub)
        if i < len(hubs) and hubs[i] == hub:
            del hubs[i]
            del self.dists[i]
            del self.counts[i]
            return True
        return False

    def clear(self):
        """Remove every entry."""
        del self.hubs[:]
        del self.dists[:]
        del self.counts[:]

    def as_dict(self):
        """Return {hub_rank: (dist, count)} — handy for tests."""
        return {h: (d, c) for h, d, c in self}

    def copy(self):
        """Return an independent copy of this label set."""
        other = LabelSet()
        other.hubs = list(self.hubs)
        other.dists = list(self.dists)
        other.counts = list(self.counts)
        return other

    def packed(self):
        """Return the entries in the paper's 64-bit packed encoding."""
        return [pack_entry(h, d, c) for h, d, c in self]

    def __repr__(self):
        entries = ", ".join(f"({h},{d},{c})" for h, d, c in self)
        return f"LabelSet[{entries}]"
