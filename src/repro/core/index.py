"""The SPC-Index: hub labeling for shortest path counting (§2.2).

``SPCIndex`` owns a :class:`~repro.order.VertexOrder` (the total order ≤)
and one :class:`~repro.core.labels.LabelSet` per vertex.  It answers

* :meth:`query` — SpcQUERY (Algorithm 1): scan the common hubs of L(s) and
  L(t); the answer is (sd, spc) where spc sums σ_{h,s}·σ_{h,t} over the
  common hubs minimizing sd(h,s)+sd(h,t);
* :meth:`pre_query` — PreQUERY (§3.2.2): same, but only hubs ranked
  *strictly higher* than s participate, yielding an upper bound used as the
  pruning test in DecUPDATE;
* :meth:`distance` / :meth:`count` — conveniences over :meth:`query`.

The index never touches the graph at query time; that is the point of 2-hop
labeling and what the benchmarks in Figure 7(c) measure.

Alongside the forward map (vertex -> L(v)) the index maintains a *reverse
hub map* ``holders``: hub rank -> set of vertices whose label set contains
that hub.  Every :class:`LabelSet` is bound to it on creation, so the
builders and the Inc/Dec maintenance algorithms keep it in sync for free.
The map is what turns "remove hub h from everyone who holds it" — the
§3.2.3 isolated-vertex sweep, DecUPDATE's removal pass, vertex dropping —
from O(n) scans into O(affected) lookups (DESIGN.md §9).
"""

from repro.core.labels import ENTRY_BYTES, LabelSet, counting_probe
from repro.exceptions import VertexNotFound
from repro.order import VertexOrder

INF = float("inf")

_NO_HOLDERS = frozenset()


class SPCIndex:
    """Hub-labeling index answering shortest-path counting queries.

    Instances are normally produced by :func:`repro.core.builder.build_spc_index`
    and maintained by IncSPC / DecSPC; direct construction creates an index
    with only self-labels, correct for an edgeless graph.
    """

    __slots__ = ("_order", "_labels", "_holders", "_dirty")

    def __init__(self, order, with_self_labels=True):
        if not isinstance(order, VertexOrder):
            order = VertexOrder(order)
        self._order = order
        self._labels = {}
        self._holders = {}
        self._dirty = None
        rank = order.rank_map()
        for v in order:
            ls = LabelSet()
            ls.bind(self._holders, v)
            if with_self_labels:
                ls.set(rank[v], 0, 1)
            self._labels[v] = ls

    # ------------------------------------------------------------------
    # Order / rank access
    # ------------------------------------------------------------------

    @property
    def order(self):
        """The total order ≤ the index was built under."""
        return self._order

    def rank(self, v):
        """Rank number of vertex ``v`` (0 = highest rank)."""
        return self._order.rank(v)

    def vertex_of_rank(self, r):
        """Vertex id holding rank number ``r``."""
        return self._order.vertex(r)

    def __contains__(self, v):
        return v in self._labels

    def vertices(self):
        """Iterate over all indexed vertex ids."""
        return iter(self._labels)

    # ------------------------------------------------------------------
    # Label access
    # ------------------------------------------------------------------

    def label_set(self, v):
        """Return the internal :class:`LabelSet` of ``v`` (library use)."""
        try:
            return self._labels[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def labels(self, v):
        """Return L(v) as [(hub_vertex_id, dist, count)] in rank order.

        This is the public, id-space view matching the paper's Table 2.
        """
        ls = self.label_set(v)
        return [(self._order.vertex(h), d, c) for h, d, c in ls]

    def hubs(self, v):
        """Return the set of hub vertex ids appearing in L(v)."""
        return {self._order.vertex(h) for h in self.label_set(v).hubs}

    # ------------------------------------------------------------------
    # Reverse hub map
    # ------------------------------------------------------------------

    def holders(self, hub_rank):
        """Vertices whose label set contains ``hub_rank`` — O(1) lookup.

        Returns the live internal set (empty frozenset when nobody holds
        the hub): treat it as read-only, and copy before iterating if the
        loop body mutates label sets.
        """
        return self._holders.get(hub_rank, _NO_HOLDERS)

    def holders_map(self):
        """The internal {hub_rank: set(vertex_id)} reverse map (read-only)."""
        return self._holders

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s, t):
        """SpcQUERY(s, t): return (sd(s, t), spc(s, t)).

        Disconnected pairs return (inf, 0); query(v, v) returns (0, 1) via
        the self-label.
        """
        ls = self.label_set(s)
        lt = self.label_set(t)
        return _merge_query(ls, lt, stop_rank=None)

    def pre_query(self, s, t):
        """PreQUERY(s, t): like :meth:`query` but hubs ranked at or below s
        are excluded — the upper bound (d̄, c̄) used by DecUPDATE."""
        ls = self.label_set(s)
        lt = self.label_set(t)
        return _merge_query(ls, lt, stop_rank=self._order.rank(s))

    def distance(self, s, t):
        """Return sd(s, t) (inf when disconnected)."""
        return self.query(s, t)[0]

    def count(self, s, t):
        """Return spc(s, t) (0 when disconnected)."""
        return self.query(s, t)[1]

    def source_probe(self, s, hub_filter=None):
        """Return ``probe(t) -> (sd, spc)`` sharing one scan of L(s).

        See :func:`repro.core.labels.counting_probe` — equivalent to
        :meth:`query` for every t, profitable whenever several queries
        share a source.  ``hub_filter`` restricts the merge to a hub-rank
        subset and yields shard-mergeable *partial* answers.
        """
        return counting_probe(self.label_set(s), self.label_set, hub_filter)

    def set_dirty_sink(self, sink):
        """Install (or clear, with ``None``) a dirty-vertex sink.

        ``sink`` is a set; every subsequent label mutation adds the owning
        vertex to it.  The serving layer drains it per applied batch to
        journal label deltas for hub-partitioned shards; ``copy`` /
        ``from_dict`` clones never inherit the sink.
        """
        self._dirty = sink
        for ls in self._labels.values():
            ls._sink = sink

    # ------------------------------------------------------------------
    # Dynamic-maintenance support
    # ------------------------------------------------------------------

    def add_vertex(self, v):
        """Register a new (isolated) vertex with the lowest rank.

        Matches §3: "for a newly-added isolated vertex v, we only need to
        add an empty label set L(v)" — plus the conventional self-label so
        query(v, v) answers (0, 1).
        """
        r = self._order.append(v)
        ls = LabelSet()
        ls.bind(self._holders, v)
        ls._sink = self._dirty
        ls.set(r, 0, 1)
        self._labels[v] = ls
        return r

    def drop_vertex_labels(self, v):
        """Forget a vertex's label set (used after all its edges are gone).

        The vertex's rank slot is tombstoned, never recycled: ranks must
        stay stable for the labels of other vertices to remain meaningful.
        The same id may later be re-added (it gets a fresh lowest rank).

        Any label entry elsewhere that still references ``v`` as hub (a
        stale Lemma 3.1 leftover) is purged via the reverse hub map, so the
        whole operation costs O(|L(v)| + |holders(v)|), not O(n).
        """
        ls = self._labels.get(v)
        if ls is None:
            raise VertexNotFound(v)
        rv = self._order.rank(v)
        ls.clear()  # unregisters v from every holders(h) it appeared in
        for u in list(self._holders.get(rv, _NO_HOLDERS)):
            self._labels[u].remove(rv)
        del self._labels[v]
        self._order.remove(v)

    # ------------------------------------------------------------------
    # Size accounting (Table 4)
    # ------------------------------------------------------------------

    @property
    def num_entries(self):
        """Total number of label entries across all vertices."""
        return sum(len(ls) for ls in self._labels.values())

    @property
    def size_bytes(self):
        """Index size under the paper's 8-bytes-per-entry encoding."""
        return self.num_entries * ENTRY_BYTES

    def average_label_size(self):
        """Average |L(v)| — the paper's parameter l."""
        if not self._labels:
            return 0.0
        return self.num_entries / len(self._labels)

    def max_label_size(self):
        """Largest |L(v)| over all vertices."""
        return max((len(ls) for ls in self._labels.values()), default=0)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self):
        """Return a JSON-serializable snapshot of the index.

        Tombstoned rank slots serialize as null so ranks survive roundtrips.
        """
        return {
            "order": self._order.as_raw_list(),
            "labels": {
                str(v): [[h, d, c] for h, d, c in ls]
                for v, ls in self._labels.items()
            },
        }

    @classmethod
    def from_dict(cls, payload, vertex_type=int):
        """Rebuild an index from :meth:`to_dict` output.

        The reverse hub map is derivable from the labels, so it is not
        serialized; the bound ``set`` calls here rebuild it exactly.
        """
        order = VertexOrder(payload["order"])
        index = cls(order, with_self_labels=False)
        for key, entries in payload["labels"].items():
            v = vertex_type(key)
            ls = index.label_set(v)
            for h, d, c in entries:
                ls.set(h, d, c)
        return index

    def copy(self):
        """Return an independent deep copy (order shared structurally).

        Copied label sets are re-bound to the clone's own reverse hub map,
        which ``bind`` repopulates from their hubs.
        """
        clone = SPCIndex(VertexOrder(self._order.as_raw_list()), with_self_labels=False)
        for v, ls in self._labels.items():
            dup = ls.copy()
            dup.bind(clone._holders, v)
            clone._labels[v] = dup
        return clone

    def __repr__(self):
        return (
            f"SPCIndex(n={len(self._labels)}, entries={self.num_entries}, "
            f"avg_label={self.average_label_size():.1f})"
        )


def _merge_query(ls, lt, stop_rank):
    """Two-pointer merge over two sorted label sets.

    Implements Algorithm 1; with ``stop_rank`` set, hubs with rank >= that
    value are ignored (PreQUERY's early break at the query vertex itself).
    """
    hubs_s, dists_s, counts_s = ls.hubs, ls.dists, ls.counts
    hubs_t, dists_t, counts_t = lt.hubs, lt.dists, lt.counts
    i, j = 0, 0
    len_s, len_t = len(hubs_s), len(hubs_t)
    best = INF
    count = 0
    while i < len_s and j < len_t:
        hs = hubs_s[i]
        ht = hubs_t[j]
        if hs == ht:
            if stop_rank is not None and hs >= stop_rank:
                break
            d = dists_s[i] + dists_t[j]
            if d < best:
                best = d
                count = counts_s[i] * counts_t[j]
            elif d == best:
                count += counts_s[i] * counts_t[j]
            i += 1
            j += 1
        elif hs < ht:
            i += 1
        else:
            j += 1
    return best, count
