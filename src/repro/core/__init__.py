"""Core: the SPC-Index, HP-SPC construction, and the DSPC update algorithms."""

from repro.core.builder import build_spc_index
from repro.core.decremental import dec_spc
from repro.core.dynamic import DynamicSPC, build_dynamic
from repro.core.incremental import inc_spc
from repro.core.index import SPCIndex
from repro.core.labels import ENTRY_BYTES, LabelSet, pack_entry, unpack_entry
from repro.core.paths import (
    count_paths_through,
    enumerate_shortest_paths,
    is_on_some_shortest_path,
    shortest_path,
)
from repro.core.stats import StreamStats, UpdateStats

__all__ = [
    "SPCIndex",
    "LabelSet",
    "build_spc_index",
    "inc_spc",
    "dec_spc",
    "DynamicSPC",
    "build_dynamic",
    "UpdateStats",
    "StreamStats",
    "pack_entry",
    "unpack_entry",
    "ENTRY_BYTES",
    "shortest_path",
    "enumerate_shortest_paths",
    "is_on_some_shortest_path",
    "count_paths_through",
]
