"""DecSPC: decremental maintenance of the SPC-Index (§3.2, Algorithms 4-6).

Deleting an edge (a, b) may *increase* distances and *decrease* counts, so
outdated labels cannot be left behind the way IncSPC leaves stale distance
overestimates.  DecSPC works in two phases:

1.  **SrrSEARCH** (Algorithm 5) partitions the vertices whose shortest paths
    cross (a, b) into *affected hubs* SR (Sender-and-Receiver — labels with
    these vertices as hubs may need renewal, insertion or deletion) and
    *affected ordinary vertices* R (Receiver-Only — only their own label
    sets may change).  A vertex v on a's side is affected iff
    sd(v,a) + 1 = sd(v,b); it is a hub (SR) iff it is a common hub of a and
    b (Condition A: some v̂-shortest path crosses the edge) or
    spc(v,a) = spc(v,b) (Condition B: *all* shortest v-b paths cross it).
    Everything is computed on G_i, before the edge is removed, with a
    pruned BFS per side that stops at unaffected vertices.

2.  **DecUPDATE** (Algorithm 6) runs one rank-pruned BFS on G_{i+1} from
    each affected hub h (in descending order of rank, so PreQUERY's upper
    bound d̄ — computed from strictly higher-ranked, already-repaired hubs —
    is sound).  Visited vertices in the opposite side's SR ∪ R get their
    (h, ·, ·) label renewed or inserted and are marked U[v] = True.  If h
    was a common hub of a and b, labels of *unvisited* opposite-side
    vertices are removed afterwards: either h got disconnected from them or
    their label became dominated.

The §3.2.3 isolated-vertex optimization short-circuits the whole procedure
when the deletion strands a degree-1, lower-ranked endpoint: its label set
collapses to the self-label and no other vertex can hold it as a hub.
"""

from collections import deque

from repro.core.stats import UpdateStats
from repro.exceptions import EdgeNotFound

INF = float("inf")


def dec_spc(graph, index, a, b, stats=None, use_isolated_fast_path=True):
    """Delete edge (a, b) from ``graph`` and repair ``index`` (Algorithm 4).

    The graph mutation happens here, *after* SrrSEARCH probes G_i.  Returns
    an :class:`UpdateStats` whose sr_a/sr_b/r_a/r_b fields feed Table 5.
    """
    if stats is None:
        stats = UpdateStats(kind="delete", edge=(a, b))

    if not graph.has_edge(a, b):
        raise EdgeNotFound(a, b)

    if use_isolated_fast_path and _try_isolated_fast_path(graph, index, a, b, stats):
        return stats

    order = index.order
    la = index.label_set(a)
    lb = index.label_set(b)
    lab = set(la.hubs) & set(lb.hubs)  # common hubs of a and b (rank numbers)

    sr_a, r_a = _srr_search(graph, index, a, b, lab)
    sr_b, r_b = _srr_search(graph, index, b, a, lab)
    stats.sr_a, stats.sr_b = len(sr_a), len(sr_b)
    stats.r_a, stats.r_b = len(r_a), len(r_b)

    graph.remove_edge(a, b)

    rank = order.rank_map()
    targets_b = sr_b | r_b  # opposite side for hubs from SRa
    targets_a = sr_a | r_a

    affected_hubs = sorted(sr_a | sr_b, key=lambda v: rank[v])
    stats.affected_hubs = len(affected_hubs)
    for h_vertex in affected_hubs:  # descending order of rank
        h_in_lab = rank[h_vertex] in lab
        if h_vertex in sr_a:
            _dec_update(graph, index, h_vertex, targets_b, h_in_lab, stats)
        else:
            _dec_update(graph, index, h_vertex, targets_a, h_in_lab, stats)
    return stats


def _try_isolated_fast_path(graph, index, a, b, stats):
    """§3.2.3: deleting the last edge of a lower-ranked, degree-1 vertex.

    Returns True when the optimization applied (edge removed, index fixed).
    The vertex being stranded must rank *below* the surviving endpoint:
    every path leaving it starts with the higher-ranked neighbor, so in a
    canonical index no label uses it as hub, and its own labels all die
    with the disconnection.

    One caveat keeps this from being pure O(1): earlier *incremental*
    updates legitimately retain stale labels (Lemma 3.1), and a stale
    entry may still reference the stranded vertex as hub even though the
    canonical argument says none can (same failure family as DESIGN.md
    §5).  Those entries would answer finite distances to a now-isolated
    vertex.  The reverse hub map lists exactly who holds the stranded
    vertex's hub, so purging them is O(affected) — PR 2 had to sweep all
    n label sets here (see DESIGN.md §9).
    """
    rank = index.order.rank_map()
    deg_a = graph.degree(a)
    deg_b = graph.degree(b)
    if deg_b == 1 and deg_a == 1:
        # Both stranded: keep the paper's convention that b is the
        # lower-ranked one.
        if rank[a] > rank[b]:
            a, b = b, a
    elif deg_a == 1:
        a, b = b, a
    elif deg_b != 1:
        return False
    # Here deg(b) == 1; the optimization needs a ranked higher than b.
    if rank[a] > rank[b]:
        return False
    graph.remove_edge(a, b)
    rb = rank[b]
    label_of = index.label_set
    for u in list(index.holders(rb)):
        if u != b and label_of(u).remove(rb):
            stats.removed += 1
    lb = label_of(b)
    stats.removed += len(lb) - 1
    lb.clear()
    lb.set(rb, 0, 1)
    stats.isolated_fast_path = True
    return True


def _srr_search(graph, index, a, b, lab):
    """Algorithm 5: compute (SR, R) for side ``a`` against opposite ``b``.

    Runs on G_i (edge still present).  ``lab`` holds the common hubs of the
    edge endpoints as rank numbers.
    """
    rank = index.order.rank_map()
    label_of = index.label_set
    lb = label_of(b)
    # Opposite-endpoint label array: sd/spc(v, b) probes cost O(|L(v)|).
    b_entry = {h: (d, c) for h, d, c in lb}

    sr, r = set(), set()
    dist = {a: 0}
    count = {a: 1}
    queue = deque([a])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        # (d, c) = SpcQUERY(v, b) via the array.
        d_q, c_q = INF, 0
        ls = label_of(v)
        hubs, dists, counts = ls.hubs, ls.dists, ls.counts
        for i in range(len(hubs)):
            e = b_entry.get(hubs[i])
            if e is not None:
                cand = dists[i] + e[0]
                if cand < d_q:
                    d_q = cand
                    c_q = counts[i] * e[1]
                elif cand == d_q:
                    c_q += counts[i] * e[1]
        if dv + 1 != d_q:
            continue  # unaffected: no shortest v-b path crosses (a, b)
        if rank[v] in lab or count[v] == c_q:
            sr.add(v)
        else:
            r.add(v)
        cv = count[v]
        dnext = dv + 1
        for w in graph.neighbors(v):
            dw = dist.get(w)
            if dw is None:
                dist[w] = dnext
                count[w] = cv
                queue.append(w)
            elif dw == dnext:
                count[w] += cv
    return sr, r


def _dec_update(graph, index, h_vertex, targets, h_in_lab, stats):
    """Algorithm 6: repair all (h, ·, ·) labels with one rank-pruned BFS."""
    order = index.order
    rank = order.rank_map()
    label_of = index.label_set
    h = rank[h_vertex]

    # PreQUERY array: the root's labels from *strictly* higher-ranked hubs.
    hub_labels = label_of(h_vertex)
    root_dist = {hr: d for hr, d, _ in hub_labels if hr != h}

    updated = set()  # U[v] = True
    dist = {h_vertex: 0}
    count = {h_vertex: 1}
    queue = deque([h_vertex])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        stats.bfs_visits += 1

        # d̄ = PreQUERY(h, v) distance via hubs ranked above h.
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        d_bar = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < d_bar:
                    d_bar = cand
        if d_bar < dv:
            continue

        if v in targets:
            existing = ls.get(h)
            if existing is None:
                ls.set(h, dv, count[v])
                stats.inserted += 1
            else:
                d_i, c_i = existing
                if d_i != dv:
                    ls.set(h, dv, count[v])
                    stats.renew_dist += 1
                elif c_i != count[v]:
                    ls.set(h, dv, count[v])
                    stats.renew_count += 1
            updated.add(v)

        cv = count[v]
        dnext = dv + 1
        for w in graph.neighbors(v):
            dw = dist.get(w)
            if dw is None:
                if h <= rank[w]:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv

    # Label removal: unvisited or pruned targets have spc(ĥ, u) = 0 — they
    # either lost their connection to h or are fully dominated by higher
    # hubs — so any (h, ·, ·) entry they still hold must go.  The paper runs
    # this phase only when h is a common hub of the deleted edge (the H_ab
    # flag); we run it unconditionally because stale labels retained by
    # earlier *incremental* updates (Lemma 3.1's optimization) can resurface
    # when a deletion raises a distance back to the stale value, and those
    # labels are not covered by the common-hub argument.  See DESIGN.md §5.
    # The reverse hub map narrows the pass from all targets to the targets
    # that actually hold h (DESIGN.md §9); the intersection is a fresh set,
    # safe to iterate while removals shrink holders(h).
    del h_in_lab
    for u in index.holders(h) & targets:
        if u not in updated:
            label_of(u).remove(h)
            stats.removed += 1
