"""DSPC dynamic facade: a graph + SPC-Index pair kept in sync under updates.

``DynamicSPC`` is the user-facing entry point for the paper's problem
statement ("maintain L in accordance with the topological modifications
applied to G").  It owns a graph and its index and exposes

* ``insert_edge`` / ``delete_edge``   — IncSPC / DecSPC (§3.1, §3.2);
* ``insert_vertex``                   — empty label set + lowest rank (§3),
  optionally with initial edges replayed through IncSPC;
* ``delete_vertex``                   — a sequence of DecSPC deletions (§3)
  followed by dropping the label set;
* ``query`` / ``distance`` / ``count`` — SpcQUERY over the maintained index;
* ``apply`` / ``apply_stream``        — replay of workload update objects;
* an optional *lazy rebuild* policy (§6: "reconstructing the entire index
  after a certain number of updates") via ``rebuild_every``.

Every mutation returns :class:`UpdateStats` with wall-clock ``elapsed``
filled in, and the facade accumulates a :class:`StreamStats` history — the
Figure 10 streaming experiment reads it directly.
"""

import time

from repro.core.builder import build_spc_index
from repro.core.decremental import dec_spc
from repro.core.incremental import inc_spc
from repro.core.stats import StreamStats, UpdateStats
from repro.exceptions import GraphError


class DynamicSPC:
    """A shortest-path-counting oracle over a fully dynamic graph.

    Example
    -------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    >>> dyn = DynamicSPC(g)
    >>> dyn.query(0, 2)
    (2, 2)
    >>> _ = dyn.insert_edge(0, 2)
    >>> dyn.query(0, 2)
    (1, 1)
    """

    def __init__(self, graph, index=None, strategy="degree", rebuild_every=None,
                 use_isolated_fast_path=True, rebuild_drift_threshold=None,
                 drift_check_every=50):
        self._graph = graph
        self._index = index if index is not None else build_spc_index(graph, strategy=strategy)
        self._strategy = strategy
        self._rebuild_every = rebuild_every
        self._use_isolated_fast_path = use_isolated_fast_path
        self._rebuild_drift_threshold = rebuild_drift_threshold
        self._drift_check_every = drift_check_every
        self._updates_since_rebuild = 0
        self.history = StreamStats()

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def graph(self):
        """The underlying graph (mutate only through this facade)."""
        return self._graph

    @property
    def index(self):
        """The maintained SPC-Index."""
        return self._index

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)) from the index."""
        return self._index.query(s, t)

    def distance(self, s, t):
        """Return sd(s, t)."""
        return self._index.distance(s, t)

    def count(self, s, t):
        """Return spc(s, t)."""
        return self._index.count(s, t)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert_edge(self, a, b):
        """Insert edge (a, b), creating missing endpoints, via IncSPC."""
        for v in (a, b):
            if not self._graph.has_vertex(v):
                self.insert_vertex(v)
        start = time.perf_counter()
        stats = inc_spc(self._graph, self._index, a, b)
        stats.elapsed = time.perf_counter() - start
        self._after_update(stats)
        return stats

    def delete_edge(self, a, b):
        """Delete edge (a, b) via DecSPC."""
        start = time.perf_counter()
        stats = dec_spc(self._graph, self._index, a, b,
                        use_isolated_fast_path=self._use_isolated_fast_path)
        stats.elapsed = time.perf_counter() - start
        self._after_update(stats)
        return stats

    def insert_vertex(self, v, edges=()):
        """Add vertex ``v`` (lowest rank) and optionally its initial edges.

        Each initial edge is an IncSPC insertion recorded as its own update;
        the *returned* stats aggregate the whole operation.  The history
        records the vertex registration separately so totals are not
        double-counted.
        """
        start = time.perf_counter()
        self._graph.add_vertex(v)
        self._index.add_vertex(v)
        marker = UpdateStats(kind="insert_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self._after_update(marker)
        result = UpdateStats(kind="insert_vertex", edge=(v,))
        result.merge(marker)
        for u in edges:
            result.merge(self.insert_edge(v, u))
        return result

    def delete_vertex(self, v):
        """Remove vertex ``v``: DecSPC per incident edge, then drop labels.

        Edge deletions are recorded individually; the returned stats
        aggregate the whole operation.
        """
        result = UpdateStats(kind="delete_vertex", edge=(v,))
        for u in list(self._graph.neighbors(v)):
            result.merge(self.delete_edge(v, u))
        start = time.perf_counter()
        self._graph.remove_vertex(v)
        self._index.drop_vertex_labels(v)
        marker = UpdateStats(kind="delete_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self._after_update(marker)
        result.elapsed += marker.elapsed
        return result

    def apply(self, update):
        """Apply one workload update object (see repro.workloads.updates)."""
        return update.apply(self)

    def apply_stream(self, updates):
        """Apply an iterable of updates; returns the list of stats."""
        return [self.apply(u) for u in updates]

    def apply_batch(self, updates):
        """Apply an edge-update batch with set semantics (net effect only).

        Insert/delete churn that cancels out within the batch is skipped
        entirely (see :mod:`repro.core.batch`).  Returns (stats list,
        cancelled-op count).
        """
        from repro.core.batch import coalesce_edge_updates

        effective, cancelled = coalesce_edge_updates(self._graph, updates)
        return self.apply_stream(effective), cancelled

    # ------------------------------------------------------------------
    # Rebuild policy
    # ------------------------------------------------------------------

    def rebuild(self):
        """Reconstruct the index from scratch (the HP-SPC baseline).

        Also the §6 lazy strategy's escape hatch once the original vertex
        ordering has drifted from the current degree distribution.
        """
        start = time.perf_counter()
        self._index = build_spc_index(self._graph, strategy=self._strategy)
        self._updates_since_rebuild = 0
        return time.perf_counter() - start

    def drift(self, samples=1000, seed=0):
        """Measure how stale the frozen vertex ordering has become (§6).

        Returns the :func:`repro.order.drift_report` dict; its
        ``rebuild_recommended`` flag feeds the drift-based rebuild policy.
        """
        from repro.order import drift_report

        return drift_report(self._graph, self._index.order, samples=samples,
                            seed=seed)

    def _after_update(self, stats):
        self.history.record(stats)
        if stats.kind in ("insert_vertex", "delete_vertex"):
            return
        self._updates_since_rebuild += 1
        if self._rebuild_every and self._updates_since_rebuild >= self._rebuild_every:
            self.rebuild()
            return
        if (
            self._rebuild_drift_threshold is not None
            and self._updates_since_rebuild % self._drift_check_every == 0
            and self.drift()["sampled_inversions"] > self._rebuild_drift_threshold
        ):
            self.rebuild()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def check(self, sample_pairs=None, seed=0):
        """Verify the index against BFS ground truth; raises on mismatch.

        Convenience wrapper over :func:`repro.verify.verify_espc`.
        """
        from repro.verify import verify_espc

        verify_espc(self._graph, self._index, sample_pairs=sample_pairs, seed=seed)
        return True

    def __repr__(self):
        return f"DynamicSPC(graph={self._graph!r}, index={self._index!r})"


def build_dynamic(graph, **kwargs):
    """Build a :class:`DynamicSPC` for ``graph`` (alias constructor)."""
    if not hasattr(graph, "neighbors"):
        raise GraphError("build_dynamic expects an undirected Graph")
    return DynamicSPC(graph, **kwargs)
