"""Deprecated facade: ``DynamicSPC`` is now a shim over :class:`SPCEngine`.

The engine (:mod:`repro.engine`) is the single public entry point for
dynamic shortest-path counting — create one with ``repro.open(graph)``.
``DynamicSPC`` remains importable for existing code: it is a subclass of
the engine pinned to the ``core`` (undirected) backend that translates the
legacy keyword arguments into an :class:`EngineConfig` and emits a
:class:`DeprecationWarning` on construction.  Behavior is unchanged —
including the query cache staying *off*, since legacy callers were never
required to route reads through the facade.
"""

import warnings

import repro.engine.adapters  # noqa: F401  (registers the built-in backends)
from repro.engine.config import EngineConfig
from repro.engine.engine import SPCEngine
from repro.exceptions import GraphError


class DynamicSPC(SPCEngine):
    """Deprecated alias for an :class:`SPCEngine` on the core backend.

    Prefer ``repro.open(graph)``.

    Example
    -------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    >>> dyn = DynamicSPC(g)
    >>> dyn.query(0, 2)
    (2, 2)
    >>> _ = dyn.insert_edge(0, 2)
    >>> dyn.query(0, 2)
    (1, 1)
    """

    _backend_name = "core"

    def __init__(self, graph, index=None, strategy="degree", rebuild_every=None,
                 use_isolated_fast_path=True, rebuild_drift_threshold=None,
                 drift_check_every=50):
        warnings.warn(
            f"{type(self).__name__} is deprecated; use repro.open(graph) "
            f"or repro.engine.SPCEngine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = EngineConfig(
            backend=self._backend_name,
            strategy=strategy,
            rebuild_every=rebuild_every,
            rebuild_drift_threshold=rebuild_drift_threshold,
            drift_check_every=drift_check_every,
            use_isolated_fast_path=use_isolated_fast_path,
            cache_size=0,  # legacy facades never cached queries
        )
        super().__init__(graph, config=config, index=index)

    def __repr__(self):
        return f"{type(self).__name__}(graph={self.graph!r}, index={self.index!r})"


def build_dynamic(graph, **kwargs):
    """Build a :class:`DynamicSPC` for ``graph`` (deprecated alias)."""
    if not hasattr(graph, "neighbors"):
        raise GraphError("build_dynamic expects an undirected Graph")
    return DynamicSPC(graph, **kwargs)
