"""Batch updates: coalesce an edge-update batch before touching the index.

The paper's related work ([9], BatchHL) observes that batches of updates
often contain churn — an edge inserted and deleted within the same batch
leaves no trace, so paying two index repairs for it is pure waste.  This
module gives DSPC set-semantics batches: only the *net* difference between
the graph's current edge state and the batch's final edge state is applied.

Coalescing is graph-family-aware (it serves every :class:`SPCEngine`
backend, not just the undirected core):

* undirected / weighted graphs net (u, v) and (v, u) together; digraphs
  keep arcs distinct;
* on weighted graphs the edge *weight* is part of the state — delete +
  reinsert at a new weight nets down to a single :class:`SetWeight`, and
  reinsertion at the old weight cancels entirely.

``coalesce_edge_updates`` is pure (no graph mutation) and returns the
effective update list plus how many operations were cancelled;
:meth:`SPCEngine.apply_batch` wires it into the facade.
"""

from repro.exceptions import WorkloadError
from repro.graph.base import normalize_edge
from repro.workloads.updates import DeleteEdge, InsertEdge, SetWeight

_ABSENT = object()


def coalesce_edge_updates(graph, updates):
    """Reduce an edge-update batch to its net effect on ``graph``.

    Parameters
    ----------
    graph:
        The graph the batch will be applied to (read-only here).  Directed
        and weighted graphs are detected by their API (``successors`` /
        ``weight``) and handled accordingly.
    updates:
        An ordered iterable of InsertEdge / DeleteEdge / SetWeight.  Other
        update types raise :class:`WorkloadError` — vertex operations don't
        commute with edge coalescing and must be applied individually.

    Returns
    -------
    (effective, cancelled):
        ``effective`` is the minimal update list producing the same final
        edge state, in first-touch order; ``cancelled`` counts the
        operations dropped.

    Example
    -------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1)])
    >>> ops = [DeleteEdge(0, 1), InsertEdge(0, 1), InsertEdge(0, 2)]
    >>> effective, cancelled = coalesce_edge_updates(g, ops)
    >>> effective, cancelled
    ([InsertEdge(u=0, v=2)], 2)
    """
    directed = hasattr(graph, "successors")
    weighted = hasattr(graph, "weight")

    def key_of(u, v):
        return (u, v) if directed else normalize_edge(u, v)

    def initial_state(u, v):
        if not graph.has_edge(u, v):
            return _ABSENT
        return graph.weight(u, v) if weighted else True

    # Net each touched edge down to its final state (absent, or present
    # [at a weight]), remembering first-touch order and per-edge op counts.
    final = {}
    touches = {}
    order = []
    for upd in updates:
        if isinstance(upd, (InsertEdge, DeleteEdge, SetWeight)):
            key = key_of(upd.u, upd.v)
        else:
            raise WorkloadError(
                f"coalesce_edge_updates only handles edge updates, got {upd!r}"
            )
        if key not in final:
            order.append(key)
            final[key] = initial_state(*key)
        if isinstance(upd, InsertEdge):
            if weighted and upd.weight is None:
                raise WorkloadError(
                    f"weighted batch insertion needs a weight: {upd!r}"
                )
            if not weighted and upd.weight is not None:
                raise WorkloadError(
                    f"unweighted graphs take no insertion weights: {upd!r}"
                )
            final[key] = upd.weight if weighted else True
        elif isinstance(upd, DeleteEdge):
            final[key] = _ABSENT
        else:  # SetWeight
            if not weighted:
                raise WorkloadError(
                    f"SetWeight in a batch for an unweighted graph: {upd!r}"
                )
            if final[key] is _ABSENT:
                raise WorkloadError(
                    f"SetWeight on an edge absent at that point: {upd!r}"
                )
            final[key] = upd.weight
        touches[key] = touches.get(key, 0) + 1

    effective = []
    cancelled = 0
    for key in order:
        before = initial_state(*key)
        after = final[key]
        if before == after:
            cancelled += touches[key]
            continue
        if after is _ABSENT:
            effective.append(DeleteEdge(*key))
        elif before is _ABSENT:
            effective.append(
                InsertEdge(*key, weight=after) if weighted else InsertEdge(*key)
            )
        else:
            # Present on both sides at different weights: one weight change.
            effective.append(SetWeight(*key, weight=after))
        cancelled += touches[key] - 1
    return effective, cancelled


def coalesce_if_edge_batch(graph, updates, enabled=True):
    """The serving layer's tolerant coalescing gate.

    Returns ``(effective, cancelled)``: net-effect coalescing when
    ``enabled`` and every update is an edge update, the batch verbatim
    (``cancelled == 0``) otherwise.  Unlike :meth:`SPCEngine.apply_batch`
    — which raises on vertex operations because a caller handing it a
    coalescible batch asked for set semantics — a serving queue legally
    mixes vertex and edge updates, so mixed batches fall back to verbatim
    replay rather than failing.  Keeping the gate here, next to the
    netting rules, means a future change to those rules (as PR 2 made for
    SetWeight) cannot silently diverge between the two entry points.
    """
    updates = list(updates)
    if enabled and all(
        isinstance(u, (InsertEdge, DeleteEdge, SetWeight)) for u in updates
    ):
        return coalesce_edge_updates(graph, updates)
    return updates, 0
