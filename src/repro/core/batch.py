"""Batch updates: coalesce an edge-update batch before touching the index.

The paper's related work ([9], BatchHL) observes that batches of updates
often contain churn — an edge inserted and deleted within the same batch
leaves no trace, so paying two index repairs for it is pure waste.  This
module gives DSPC set-semantics batches: only the *net* difference between
the graph's current edge set and the batch's final edge set is applied.

``coalesce_edge_updates`` is pure (no graph mutation) and returns the
effective update list plus how many operations were cancelled;
:meth:`DynamicSPC.apply_batch` wires it into the facade.
"""

from repro.exceptions import WorkloadError
from repro.graph.base import normalize_edge
from repro.workloads.updates import DeleteEdge, InsertEdge


def coalesce_edge_updates(graph, updates):
    """Reduce an edge-update batch to its net effect on ``graph``.

    Parameters
    ----------
    graph:
        The graph the batch will be applied to (read-only here).
    updates:
        An ordered iterable of InsertEdge / DeleteEdge.  Other update types
        raise :class:`WorkloadError` — vertex operations don't commute with
        edge coalescing and must be applied individually.

    Returns
    -------
    (effective, cancelled):
        ``effective`` is the minimal update list producing the same final
        edge set, in first-touch order; ``cancelled`` counts the operations
        dropped.

    Example
    -------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1)])
    >>> ops = [DeleteEdge(0, 1), InsertEdge(0, 1), InsertEdge(0, 2)]
    >>> effective, cancelled = coalesce_edge_updates(g, ops)
    >>> effective, cancelled
    ([InsertEdge(u=0, v=2)], 2)
    """
    final = {}
    order = []
    for upd in updates:
        if isinstance(upd, InsertEdge):
            present = True
        elif isinstance(upd, DeleteEdge):
            present = False
        else:
            raise WorkloadError(
                f"coalesce_edge_updates only handles edge updates, got {upd!r}"
            )
        key = normalize_edge(upd.u, upd.v)
        if key not in final:
            order.append(key)
        final[key] = present

    # Count per-edge touches to derive cancellations after netting.
    touches = {}
    for upd in updates:
        key = normalize_edge(upd.u, upd.v)
        touches[key] = touches.get(key, 0) + 1

    effective = []
    cancelled = 0
    for key in order:
        initially_present = graph.has_edge(*key)
        finally_present = final[key]
        if initially_present == finally_present:
            cancelled += touches[key]
            continue
        if finally_present:
            effective.append(InsertEdge(*key))
        else:
            effective.append(DeleteEdge(*key))
        cancelled += touches[key] - 1
    return effective, cancelled
