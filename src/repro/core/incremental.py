"""IncSPC: incremental maintenance of the SPC-Index (§3.1, Algorithms 2-3).

When an edge (a, b) is inserted, only labels whose hub lies in

    AFF = { h | h ∈ L(a) ∪ L(b) }

can be outdated or missing (any other hub either pruned before reaching a/b
or cannot reach them, so no new ĥ-shortest path crosses the new edge).  For
every affected hub h, a pruned BFS is started *on the far side of the new
edge*: if h ∈ L(a) with entry (h, d, c), new ĥ-shortest paths through (a, b)
all look like h ⇝ a → b ⇝ w, so the BFS starts at b with D[b] = d + 1 and
C[b] = c, exactly as if it had stepped across the edge.

The BFS prunes at v when the current index certifies a strictly shorter
distance (Lemma 3.4 requires the relaxed, *strict* test so equal-length new
paths — count-only changes — are still discovered).  Non-pruned vertices get
their (h, ·, ·) label renewed (count accumulated when the distance is
unchanged, replaced when it shrank) or freshly inserted.

Per Lemma 3.1, stale labels whose distances became overestimates are left in
place: SpcQUERY takes a minimum over hubs, so they can never surface, and
skipping their removal is part of what makes IncSPC fast.
"""

from collections import deque

from repro.core.stats import UpdateStats

INF = float("inf")


def inc_spc(graph, index, a, b, stats=None):
    """Insert edge (a, b) into ``graph`` and repair ``index`` (Algorithm 2).

    The graph mutation is performed here (line 1 of the algorithm); both
    endpoints must already exist — the dynamic facade handles new-vertex
    bookkeeping.  Returns an :class:`UpdateStats`.
    """
    if stats is None:
        stats = UpdateStats(kind="insert", edge=(a, b))
    order = index.order
    la = index.label_set(a)
    lb = index.label_set(b)
    rank_a = order.rank(a)
    rank_b = order.rank(b)

    # Snapshot AFF before any label changes; updates only ever touch hubs
    # already in AFF, so the snapshot is complete.
    aff_a = list(la.hubs)
    aff_b = list(lb.hubs)
    aff = sorted(set(aff_a) | set(aff_b))
    stats.affected_hubs = len(aff)

    graph.add_edge(a, b)

    in_a = set(aff_a)
    in_b = set(aff_b)
    for h in aff:  # ascending rank number == descending order of rank
        if h in in_a and h <= rank_b:
            _inc_update(graph, index, h, a, b, stats)
        if h in in_b and h <= rank_a:
            _inc_update(graph, index, h, b, a, stats)
    return stats


def _inc_update(graph, index, h, va, vb, stats):
    """Pruned BFS rooted at hub ``h`` entering through va -> vb (Algorithm 3)."""
    order = index.order
    rank = order.rank_map()  # read-only hot-loop access
    label_of = index.label_set

    entry = label_of(va).get(h)
    if entry is None:
        # The (h, ·, ·) entry vanished since the AFF snapshot — cannot happen
        # for insertions (labels are never removed), but guard for safety.
        return
    d0, c0 = entry

    hub_vertex = order.vertex(h)
    hub_labels = label_of(hub_vertex)
    root_dist = dict(zip(hub_labels.hubs, hub_labels.dists))

    dist = {vb: d0 + 1}
    count = {vb: c0}
    queue = deque([vb])

    while queue:
        v = queue.popleft()
        dv = dist[v]
        stats.bfs_visits += 1

        # d_L = SpcQUERY(h, v) distance, via the root-label array.  The
        # probe must see the up-to-date index, including labels renewed
        # earlier in this same update.
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        dl = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < dl:
                    dl = cand
        if dl < dv:
            continue

        existing = ls.get(h)
        if existing is not None:
            d_i, c_i = existing
            if dv == d_i:
                ls.set(h, dv, count[v] + c_i)
                stats.renew_count += 1
            else:
                ls.set(h, dv, count[v])
                stats.renew_dist += 1
        else:
            ls.set(h, dv, count[v])
            stats.inserted += 1

        cv = count[v]
        dnext = dv + 1
        for w in graph.neighbors(v):
            dw = dist.get(w)
            if dw is None:
                if h <= rank[w]:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv
