"""AuditSampler: a bounded-overhead tap on live serving traffic.

The sampler *is* the answer-tap callable — install it directly::

    sampler = AuditSampler(rate=0.1, capacity=256, seed=0)
    service.set_answer_tap(sampler)        # or router.set_answer_tap

Every served ``((s, t), answer)`` passes a cheap probability gate first
(a geometric skip counter: the gap to the next admitted answer is drawn
once per *admitted* sample, so the fast path the read threads pay for is
one integer compare-and-subtract — no RNG draw, no lock), then enters a
classic reservoir: the first ``capacity`` admitted samples fill the
buffer, after which each admitted sample replaces a uniformly random
slot with probability ``capacity / admitted`` — so the reservoir is
always a uniform sample of everything admitted since the last
:meth:`take`, and memory stays bounded no matter how hot the read path
runs.  The auditor thread periodically :meth:`take`\\ s the buffer, which
swaps it for an empty one under the lock.
"""

import math
import random
import threading
from typing import NamedTuple


class AuditSample(NamedTuple):
    """One sampled (query, answer, consistency-point) triple.

    A NamedTuple rather than a dataclass: samples are constructed on the
    read threads' hot path, and tuple construction is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    s: object
    t: object
    answer: object
    seq: int
    target: str
    epoch: int


class AuditSampler:
    """Reservoir-sample served answers at a configurable rate.

    Parameters
    ----------
    rate:
        Probability that any one served answer enters the reservoir
        (``1.0`` admits everything; ``0.0`` disables sampling but keeps
        the seen-counter running).
    capacity:
        Reservoir size — the hard memory bound between two takes.
    seed:
        Seeds the gate/eviction RNG, so a seeded run samples the same
        traffic positions every time.
    """

    __slots__ = (
        "rate", "capacity", "_rng", "_lock", "_buffer", "_admitted",
        "seen", "sampled", "evicted", "taken", "_log_q", "_skip",
    )

    def __init__(self, rate=0.1, capacity=256, seed=0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.rate = rate
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._buffer = []
        self._admitted = 0   # since the last take
        self.seen = 0        # answers observed, lifetime
        self.sampled = 0     # answers admitted past the gate, lifetime
        self.evicted = 0     # reservoir replacements + overflow drops
        self.taken = 0       # samples handed to the auditor
        # ln(1 - rate): the geometric-gap base (None at the boundary
        # rates, which never draw).
        self._log_q = math.log1p(-rate) if 0.0 < rate < 1.0 else None
        # Answers still to pass over before the next admitted one; -1
        # permanently disables the gate (rate 0).
        self._skip = self._draw_gap() if rate else -1

    def _draw_gap(self):
        """How many answers to skip before the next admitted one.

        Bernoulli(rate) per answer is equivalent to skipping a
        Geometric(rate)-distributed gap between admitted answers — one
        RNG draw per *sample* instead of per answer, which is what keeps
        the tap's fast path down to an integer compare-and-subtract.
        """
        if self._log_q is None:
            return 0  # rate 1.0: admit every answer
        return int(math.log(1.0 - self._rng.random()) / self._log_q)

    def __call__(self, answered, seq, target, epoch):
        """The answer-tap hook (see ``SPCService.set_answer_tap``).

        The skip-counter gate runs *before* the lock, so the read
        threads almost never contend and almost never draw RNG; the
        counters (and the skip counter itself) are GIL-approximate under
        concurrent readers, like every monitoring counter in the serving
        layer — a lost update shifts *which* answers are sampled, never
        correctness.
        """
        n = len(answered)
        self.seen += n
        skip = self._skip
        if skip >= n:
            self._skip = skip - n
            return
        if skip < 0:
            return  # sampling disabled (rate 0)
        # Raw (item, seq, target, epoch) tuples, not AuditSamples: the
        # NamedTuple is built lazily in take(), on the auditor's thread.
        admitted = []
        while skip < n:
            admitted.append((answered[skip], seq, target, epoch))
            skip += 1 + self._draw_gap()
        self._skip = skip - n
        rng = self._rng
        with self._lock:
            for sample in admitted:
                self.sampled += 1
                self._admitted += 1
                if len(self._buffer) < self.capacity:
                    self._buffer.append(sample)
                else:
                    slot = rng.randrange(self._admitted)
                    self.evicted += 1
                    if slot < self.capacity:
                        self._buffer[slot] = sample

    def set_rate(self, rate):
        """Retune the admission rate in place (the auto-tuning seam).

        Takes effect from the next tap call: the geometric skip gap is
        redrawn under the new rate, so a long gap drawn at a low rate
        does not keep muting a sampler that was just turned up.  Safe to
        call from any thread; the reservoir and counters are untouched.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate!r}")
        with self._lock:
            self.rate = rate
            self._log_q = math.log1p(-rate) if 0.0 < rate < 1.0 else None
            self._skip = self._draw_gap() if rate else -1

    def take(self):
        """Swap the reservoir out; returns the accumulated samples."""
        with self._lock:
            batch = self._buffer
            self._buffer = []
            self._admitted = 0
        self.taken += len(batch)
        return [
            AuditSample(pair[0], pair[1], answer, seq, target, epoch)
            for (pair, answer), seq, target, epoch in batch
        ]

    def pending(self):
        """How many samples currently sit in the reservoir."""
        with self._lock:
            return len(self._buffer)

    def stats(self):
        """JSON-safe counters (monitoring only)."""
        with self._lock:
            buffered = len(self._buffer)
        return {
            "rate": self.rate,
            "capacity": self.capacity,
            "seen": self.seen,
            "sampled": self.sampled,
            "evicted": self.evicted,
            "taken": self.taken,
            "buffered": buffered,
        }

    def set_metrics(self, registry):
        """Promote the sampler's counters into a shared registry as
        callback gauges (``repro_audit_sampler_*`` — sample rate, seen /
        sampled / evicted / buffered); clearing is a no-op since
        callback gauges read the live sampler only at exposition time."""
        if registry is None:
            return
        from repro.obs.bind import bind_sampler

        bind_sampler(registry, self)

    def __repr__(self):
        return (
            f"AuditSampler(rate={self.rate}, capacity={self.capacity}, "
            f"seen={self.seen}, sampled={self.sampled})"
        )


class AuditRateController:
    """Hold the shadow audit's lag at a target by retuning the sampler.

    *Lag* is the number of admitted-but-not-yet-audited samples (the
    sampler's reservoir plus the auditor's pending heap) — the bounded
    queue depth between serving and verification.  The control law is
    deliberately crude: **halve** the rate when lag overshoots
    ``target_lag``, **double** it when lag falls below half the target.
    The rate is a probability, so multiplicative steps recover from any
    mis-tuning in O(log) adjustments, and the hysteresis band
    ``[target/2, target]`` keeps the rate still under steady load
    instead of oscillating.  ``cooldown`` observations must pass between
    adjustments so one burst cannot slam the rate to the floor before
    the auditor has had a chance to drain.

    Wire it up either by passing it as ``controller=`` to
    :class:`~repro.audit.ShadowAuditor` (the audit loop then feeds it
    every tick) or by calling :meth:`poll`/:meth:`observe` from your own
    monitoring loop.
    """

    def __init__(self, sampler, target_lag=256, min_rate=0.001,
                 max_rate=1.0, cooldown=16):
        if target_lag < 1:
            raise ValueError(f"target_lag must be >= 1, got {target_lag!r}")
        if not 0.0 < min_rate <= max_rate <= 1.0:
            raise ValueError(
                f"need 0 < min_rate <= max_rate <= 1, got "
                f"min_rate={min_rate!r}, max_rate={max_rate!r}"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown!r}")
        self.sampler = sampler
        self.target_lag = target_lag
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.cooldown = cooldown
        self._since_adjust = cooldown  # first observation may adjust
        self.observations = 0
        self.raised = 0
        self.lowered = 0

    def observe(self, lag):
        """Feed one lag observation; returns the (possibly new) rate."""
        self.observations += 1
        self._since_adjust += 1
        rate = self.sampler.rate
        if self._since_adjust < self.cooldown:
            return rate
        if lag > self.target_lag:
            new = max(self.min_rate, rate / 2.0)
        elif lag < self.target_lag / 2:
            new = min(self.max_rate, max(self.min_rate, rate * 2.0))
        else:
            return rate
        if new == rate:
            return rate
        self.sampler.set_rate(new)
        self._since_adjust = 0
        if new > rate:
            self.raised += 1
        else:
            self.lowered += 1
        return new

    def poll(self, auditor):
        """Observe the live lag of a :class:`ShadowAuditor` + sampler."""
        lag = auditor.stats()["pending"] + self.sampler.pending()
        return self.observe(lag)

    def stats(self):
        """JSON-safe counters (monitoring only)."""
        return {
            "target_lag": self.target_lag,
            "rate": self.sampler.rate,
            "min_rate": self.min_rate,
            "max_rate": self.max_rate,
            "cooldown": self.cooldown,
            "observations": self.observations,
            "raised": self.raised,
            "lowered": self.lowered,
        }

    def __repr__(self):
        return (
            f"AuditRateController(target_lag={self.target_lag}, "
            f"rate={self.sampler.rate}, raised={self.raised}, "
            f"lowered={self.lowered})"
        )
