"""AuditSampler: a bounded-overhead tap on live serving traffic.

The sampler *is* the answer-tap callable — install it directly::

    sampler = AuditSampler(rate=0.1, capacity=256, seed=0)
    service.set_answer_tap(sampler)        # or router.set_answer_tap

Every served ``((s, t), answer)`` passes a cheap probability gate first
(a geometric skip counter: the gap to the next admitted answer is drawn
once per *admitted* sample, so the fast path the read threads pay for is
one integer compare-and-subtract — no RNG draw, no lock), then enters a
classic reservoir: the first ``capacity`` admitted samples fill the
buffer, after which each admitted sample replaces a uniformly random
slot with probability ``capacity / admitted`` — so the reservoir is
always a uniform sample of everything admitted since the last
:meth:`take`, and memory stays bounded no matter how hot the read path
runs.  The auditor thread periodically :meth:`take`\\ s the buffer, which
swaps it for an empty one under the lock.
"""

import math
import random
import threading
from typing import NamedTuple


class AuditSample(NamedTuple):
    """One sampled (query, answer, consistency-point) triple.

    A NamedTuple rather than a dataclass: samples are constructed on the
    read threads' hot path, and tuple construction is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    s: object
    t: object
    answer: object
    seq: int
    target: str
    epoch: int


class AuditSampler:
    """Reservoir-sample served answers at a configurable rate.

    Parameters
    ----------
    rate:
        Probability that any one served answer enters the reservoir
        (``1.0`` admits everything; ``0.0`` disables sampling but keeps
        the seen-counter running).
    capacity:
        Reservoir size — the hard memory bound between two takes.
    seed:
        Seeds the gate/eviction RNG, so a seeded run samples the same
        traffic positions every time.
    """

    __slots__ = (
        "rate", "capacity", "_rng", "_lock", "_buffer", "_admitted",
        "seen", "sampled", "evicted", "taken", "_log_q", "_skip",
    )

    def __init__(self, rate=0.1, capacity=256, seed=0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.rate = rate
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._buffer = []
        self._admitted = 0   # since the last take
        self.seen = 0        # answers observed, lifetime
        self.sampled = 0     # answers admitted past the gate, lifetime
        self.evicted = 0     # reservoir replacements + overflow drops
        self.taken = 0       # samples handed to the auditor
        # ln(1 - rate): the geometric-gap base (None at the boundary
        # rates, which never draw).
        self._log_q = math.log1p(-rate) if 0.0 < rate < 1.0 else None
        # Answers still to pass over before the next admitted one; -1
        # permanently disables the gate (rate 0).
        self._skip = self._draw_gap() if rate else -1

    def _draw_gap(self):
        """How many answers to skip before the next admitted one.

        Bernoulli(rate) per answer is equivalent to skipping a
        Geometric(rate)-distributed gap between admitted answers — one
        RNG draw per *sample* instead of per answer, which is what keeps
        the tap's fast path down to an integer compare-and-subtract.
        """
        if self._log_q is None:
            return 0  # rate 1.0: admit every answer
        return int(math.log(1.0 - self._rng.random()) / self._log_q)

    def __call__(self, answered, seq, target, epoch):
        """The answer-tap hook (see ``SPCService.set_answer_tap``).

        The skip-counter gate runs *before* the lock, so the read
        threads almost never contend and almost never draw RNG; the
        counters (and the skip counter itself) are GIL-approximate under
        concurrent readers, like every monitoring counter in the serving
        layer — a lost update shifts *which* answers are sampled, never
        correctness.
        """
        n = len(answered)
        self.seen += n
        skip = self._skip
        if skip >= n:
            self._skip = skip - n
            return
        if skip < 0:
            return  # sampling disabled (rate 0)
        # Raw (item, seq, target, epoch) tuples, not AuditSamples: the
        # NamedTuple is built lazily in take(), on the auditor's thread.
        admitted = []
        while skip < n:
            admitted.append((answered[skip], seq, target, epoch))
            skip += 1 + self._draw_gap()
        self._skip = skip - n
        rng = self._rng
        with self._lock:
            for sample in admitted:
                self.sampled += 1
                self._admitted += 1
                if len(self._buffer) < self.capacity:
                    self._buffer.append(sample)
                else:
                    slot = rng.randrange(self._admitted)
                    self.evicted += 1
                    if slot < self.capacity:
                        self._buffer[slot] = sample

    def take(self):
        """Swap the reservoir out; returns the accumulated samples."""
        with self._lock:
            batch = self._buffer
            self._buffer = []
            self._admitted = 0
        self.taken += len(batch)
        return [
            AuditSample(pair[0], pair[1], answer, seq, target, epoch)
            for (pair, answer), seq, target, epoch in batch
        ]

    def pending(self):
        """How many samples currently sit in the reservoir."""
        with self._lock:
            return len(self._buffer)

    def stats(self):
        """JSON-safe counters (monitoring only)."""
        with self._lock:
            buffered = len(self._buffer)
        return {
            "rate": self.rate,
            "capacity": self.capacity,
            "seen": self.seen,
            "sampled": self.sampled,
            "evicted": self.evicted,
            "taken": self.taken,
            "buffered": buffered,
        }

    def __repr__(self):
        return (
            f"AuditSampler(rate={self.rate}, capacity={self.capacity}, "
            f"seen={self.seen}, sampled={self.sampled})"
        )
