"""GraphReplayer: a bare-graph WAL follower with a bounded rollback window.

The shadow auditor's state machine.  Unlike a :class:`~repro.cluster.Replica`
it maintains **no index at all** — just the graph — because the trusted
baseline recomputes every audited answer by direct traversal
(:func:`repro.engine.baseline_answer`).  What it adds over a plain replay
is *time travel*: every applied WAL batch records the inverse operations
needed to undo it, kept in a bounded window, so a sampled answer claiming
sequence number ``k`` can be re-derived at exactly the graph state after
batch ``k`` even though the replayer has already advanced past it —
rewind, recompute, roll forward.

WAL sequence numbers are contiguous (one record per applied batch, the
tailer enforces ``seq == last + 1``), which is what makes position
arithmetic safe here.
"""

from repro.workloads.updates import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
)


def _is_weighted(graph):
    return hasattr(graph, "set_weight")


def _is_directed(graph):
    return hasattr(graph, "successors")


def apply_graph_update(graph, update):
    """Apply one WAL update to a bare graph; returns LIFO undo thunks.

    Handles every WAL-loggable update type.  Inverses are captured at
    apply time — a deleted edge records its weight, a deleted vertex its
    incident edges (with directions/weights), an inserted edge the
    endpoints it auto-created — so running the thunks in reverse order
    restores the exact prior graph.
    """
    undos = []
    if isinstance(update, InsertEdge):
        for v in (update.u, update.v):
            if not graph.has_vertex(v):
                graph.add_vertex(v)
                undos.append((graph.remove_vertex, (v,)))
        if _is_weighted(graph):
            graph.add_edge(update.u, update.v, update.weight)
        else:
            graph.add_edge(update.u, update.v)
        undos.append((graph.remove_edge, (update.u, update.v)))
    elif isinstance(update, DeleteEdge):
        if _is_weighted(graph):
            weight = graph.weight(update.u, update.v)
            graph.remove_edge(update.u, update.v)
            undos.append((graph.add_edge, (update.u, update.v, weight)))
        else:
            graph.remove_edge(update.u, update.v)
            undos.append((graph.add_edge, (update.u, update.v)))
    elif isinstance(update, SetWeight):
        old = graph.weight(update.u, update.v)
        graph.set_weight(update.u, update.v, update.weight)
        undos.append((graph.set_weight, (update.u, update.v, old)))
    elif isinstance(update, InsertVertex):
        graph.add_vertex(update.v)
        undos.append((graph.remove_vertex, (update.v,)))
        weighted = _is_weighted(graph)
        for spec in update.edges:
            if weighted:
                u, w = spec
                graph.add_edge(update.v, u, w)
            else:
                graph.add_edge(update.v, spec)
            # remove_vertex (the undo above) drops the edges too, so the
            # edge needs no thunk of its own — but only because the vertex
            # is guaranteed gone again by the time its thunk runs (LIFO).
    elif isinstance(update, DeleteVertex):
        removed = graph.remove_vertex(update.v)
        # Thunks run in LIFO order, so the vertex re-creation is appended
        # *after* the edges: on rewind it executes first, and the edges
        # then have both endpoints back.
        if _is_weighted(graph):
            for u, w, weight in removed:
                undos.append((graph.add_edge, (u, w, weight)))
        else:
            for u, w in removed:
                undos.append((graph.add_edge, (u, w)))
        undos.append((graph.add_vertex, (update.v,)))
    else:
        raise TypeError(f"unsupported WAL update {update!r}")
    return undos


class GraphReplayer:
    """Follow a WAL over a bare graph, keeping a bounded rewind window.

    Parameters
    ----------
    graph:
        The graph at ``seq`` (typically rehydrated from a checkpoint's
        payload).  Owned by the replayer from here on.
    seq:
        The WAL sequence number the graph currently reflects.
    history:
        How many applied batches stay rewindable.  Samples older than
        ``seq - history`` can no longer be audited (the shadow auditor
        counts them as skipped, never as divergences).
    """

    def __init__(self, graph, seq, history=128):
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history!r}")
        self.graph = graph
        self._seq = seq
        self._history = history
        self._window = []  # [(seq, [updates], [undo thunks])], oldest first

    @property
    def seq(self):
        """The WAL sequence number the graph currently reflects."""
        return self._seq

    @property
    def oldest_rewindable(self):
        """The lowest seq :meth:`answer_at` can still reach."""
        if not self._window:
            return self._seq
        return self._window[0][0] - 1

    def apply_batch(self, seq, updates):
        """Apply one WAL record; ``seq`` must be contiguous."""
        if seq != self._seq + 1:
            raise ValueError(
                f"non-contiguous replay: got seq {seq} after {self._seq}"
            )
        undos = []
        for update in updates:
            undos.extend(apply_graph_update(self.graph, update))
        self._window.append((seq, list(updates), undos))
        if len(self._window) > self._history:
            self._window.pop(0)
        self._seq = seq

    def answer_at(self, seq, answer_fn):
        """Evaluate ``answer_fn(graph)`` at the state after batch ``seq``.

        Rewinds by running the recorded undo thunks (newest batch first,
        thunks in LIFO order within a batch), calls ``answer_fn``, then
        rolls forward by re-applying the forward updates — the replayer
        ends exactly where it started.  Raises :class:`LookupError` when
        ``seq`` is outside the window (ahead of the stream, or older than
        the retained history).
        """
        if seq > self._seq or seq < self.oldest_rewindable:
            raise LookupError(
                f"seq {seq} is outside the rewind window "
                f"[{self.oldest_rewindable}, {self._seq}]"
            )
        to_redo = [entry for entry in self._window if entry[0] > seq]
        for _, _, undos in reversed(to_redo):
            for fn, args in reversed(undos):
                fn(*args)
        try:
            return answer_fn(self.graph)
        finally:
            for entry_seq, updates, _ in to_redo:
                undos = []
                for update in updates:
                    undos.extend(apply_graph_update(self.graph, update))
                # Re-captured thunks replace the spent ones, so the next
                # rewind through this batch undoes the fresh application.
                for i, entry in enumerate(self._window):
                    if entry[0] == entry_seq:
                        self._window[i] = (entry_seq, updates, undos)
                        break

    def __repr__(self):
        return (
            f"GraphReplayer(seq={self._seq}, "
            f"window=[{self.oldest_rewindable}, {self._seq}])"
        )
