"""Serve-and-audit load harness: a replicated fleet under live shadow audit.

Drives routed read traffic and a cyclic update stream against an
:class:`~repro.cluster.SPCCluster` — like :mod:`repro.cluster.loadgen` —
but with the audit stack attached end to end: an
:class:`~repro.audit.AuditSampler` tapped into the router, a
:class:`~repro.audit.ShadowAuditor` tailing the primary's WAL, and an
optional *kill-and-corrupt* fault script:

* a third of the way in, replica-0 is killed mid-stream (the router
  routes around it);
* just before the midpoint, another replica's published snapshots are
  wrapped in a corrupting proxy (:func:`repro.audit.faults
  .corrupt_snapshot_wrapper`) — a byzantine replica that stays healthy
  and current while serving wrong answers.

With ``strict`` (the default) the run's contract is exact: a clean run
must end with **zero** divergences, and a corrupted run must end with at
least one divergence of **exactly** the severity class its corruption
mode maps to — anything else raises
:class:`~repro.exceptions.AuditDivergenceError`.  Timing numbers are
recorded, never judged (the CI audit-smoke job trips on contract
violations only).

Wired into the benchmark CLI as ``repro-bench audit`` (results land in
``bench_results/audit.json``); importable via :func:`run_audit_loadgen`.
"""

import random
import shutil
import tempfile
import threading
import time

from repro.audit.comparator import (
    COUNT_MISMATCH,
    DIST_MISMATCH,
    REFUSAL,
    DivergenceReport,
)
from repro.audit.faults import corrupt_snapshot_wrapper
from repro.audit.sampler import AuditSampler
from repro.audit.shadow import ShadowAuditor
from repro.cluster.cluster import ClusterConfig, SPCCluster
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import AuditDivergenceError, ClusterError, ServeError
from repro.serve.loadgen import (
    _next_pair,
    _percentile,
    make_pair_picker,
    make_workload,
)
from repro.serve.service import ServeConfig

#: corruption mode -> the one severity class a strict run must report.
EXPECTED_SEVERITY = {
    "count": COUNT_MISMATCH,
    "dist": DIST_MISMATCH,
    "refusal": REFUSAL,
}


def _reader_loop(cluster, pairs, deadline, seed, record, picker=None):
    """Routed point + batch reads until the deadline (the sampler sees
    every answer through the router's tap — no per-read bookkeeping)."""
    rng = random.Random(seed)
    latencies = []
    problems = []
    reads = 0
    try:
        while time.time() < deadline:
            s, t = _next_pair(pairs, rng, picker)
            start = time.perf_counter()
            cluster.query_tagged(s, t)
            latencies.append(time.perf_counter() - start)
            reads += 1
            if reads % 64 == 0:
                batch = [_next_pair(pairs, rng, picker) for _ in range(8)]
                cluster.router.query_many_tagged(batch)
                reads += len(batch)
    except Exception as exc:  # noqa: BLE001 — a dead reader fails the run
        problems.append(f"reader thread crashed: {exc!r}")
    record["reads"] = reads
    record["latencies"] = latencies
    record["problems"] = problems


def _submitter_loop(cluster, cycle, deadline, batch_size, pause, record):
    submitted = 0
    i = 0
    record["problems"] = problems = []
    try:
        while cycle and time.time() < deadline:
            chunk = cycle[i:i + batch_size]
            if not chunk:
                i = 0
                continue
            cluster.submit_many(chunk)
            submitted += len(chunk)
            i = (i + len(chunk)) % len(cycle)
            if pause:
                time.sleep(pause)
    except Exception as exc:  # noqa: BLE001 — surfaced as a run failure
        problems.append(f"submitter thread crashed: {exc!r}")
    record["submitted"] = submitted


def _fault_controller(cluster, deadline, duration, kill, corrupt, record):
    """Kill replica-0 at 0.3·T; tamper the last replica at 0.45·T.

    Scheduling is absolute (against the run's start), not cumulative:
    killing a replica joins its applier thread, which under full reader
    load can take a sizable slice of a short run — relative sleeps would
    silently push the corruption past the deadline and a strict corrupt
    run would then fail with a misleading "undetected".  A corruption
    that still misses its window is recorded as a run problem, never
    skipped silently.
    """
    problems = []
    events = {}
    start = deadline - duration
    try:
        if kill:
            time.sleep(max(0.0, start + duration * 0.3 - time.time()))
            if time.time() < deadline:
                cluster.kill_replica("replica-0")
                events["killed"] = "replica-0"
                events["killed_at_seq"] = cluster.primary.applied_seq
        if corrupt:
            time.sleep(max(0.0, start + duration * 0.45 - time.time()))
            if time.time() < deadline:
                names = cluster.router.replica_names()
                victim = events.get("killed")
                candidates = [nm for nm in names if nm != victim]
                if not candidates:
                    raise ClusterError(
                        "corruption needs a live replica; run with "
                        "replicas >= 2 when also killing one"
                    )
                target = candidates[-1]
                cluster.replicas[target].set_snapshot_wrapper(
                    corrupt_snapshot_wrapper(corrupt)
                )
                events["corrupted"] = target
                events["corrupted_at_seq"] = cluster.primary.applied_seq
            else:
                problems.append(
                    f"corruption ({corrupt}) missed its injection window: "
                    f"the run ended before 0.45·T came around (raise "
                    f"duration above {duration} s)"
                )
    except Exception as exc:  # noqa: BLE001 — a failed injection is a failure
        problems.append(f"fault controller crashed: {exc!r}")
    record["events"] = events
    record["problems"] = problems


def run_audit_loadgen(backend="core", replicas=2, readers=3, duration=1.2,
                      n=240, m=720, churn=30, batch_size=6, pause=0.001,
                      seed=0, policy="bounded_staleness", staleness_delta=16,
                      publish_every=8, max_staleness=0.01,
                      sample_rate=0.2, reservoir=512, history=1024,
                      corrupt=None, kill=True, drain_timeout=30.0,
                      source_picker=None, picker_kwargs=None,
                      state_dir=None, telemetry=None, strict=True):
    """Run one audited, fault-injected cluster load; returns a report dict.

    ``corrupt`` is ``None`` (clean run) or a :data:`~repro.audit.faults
    .MODES` name; ``kill`` adds the mid-run replica kill.  See the module
    docstring for the strict-mode contract.  With ``telemetry`` set to a
    directory, the fleet + audit stack are instrumented end to end and
    the registry is written there as an
    ``audit-<backend>[-<corrupt>].prom``/``.json`` pair.
    """
    if corrupt is not None and corrupt not in EXPECTED_SEVERITY:
        raise AuditDivergenceError(
            f"unknown corruption mode {corrupt!r}; "
            f"choose from {sorted(EXPECTED_SEVERITY)}"
        )
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=churn)
    vertices = sorted(graph.vertices())
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    own_dir = state_dir is None
    state_dir = state_dir or tempfile.mkdtemp(prefix="repro-audit-")
    serve_config = ServeConfig(
        publish_every=publish_every,
        max_staleness=max_staleness,
        queue_capacity=4096,
        durability_dir=state_dir,
    )
    cluster_config = ClusterConfig(
        replicas=replicas,
        policy=policy,
        staleness_delta=staleness_delta,
    )
    cluster = None
    auditor = None
    detection = {}
    try:
        cluster = SPCCluster(
            engine, state_dir, config=cluster_config,
            serve_config=serve_config, overwrite=True,
        )
        sampler = AuditSampler(
            rate=sample_rate, capacity=reservoir, seed=seed + 5
        )
        cluster.router.set_answer_tap(sampler)

        def on_divergence(divergence):
            # Record *when* the tripwire fired, relative to the run —
            # the detection-latency number the report exposes.
            detection.setdefault("first_divergence_at", time.time())
            detection.setdefault("first_divergence_seq", divergence.seq)
            detection.setdefault("first_divergence_severity",
                                 divergence.severity)

        auditor = ShadowAuditor(
            sampler, state_dir,
            report=DivergenceReport(sink=on_divergence),
            history=history,
        )
        registry = tracer = None
        if telemetry is not None:
            from repro.obs import MetricsRegistry, Tracer

            registry = MetricsRegistry()
            tracer = Tracer()
            cluster.set_metrics(registry, tracer=tracer)
            engine.set_metrics(registry)
            sampler.set_metrics(registry)
            auditor.set_metrics(registry)
    except BaseException:
        if auditor is not None:
            try:
                auditor.close()
            except ServeError:
                pass
        if cluster is not None:
            try:
                cluster.close()
            except ClusterError:
                pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise

    run_started = time.time()
    deadline = run_started + duration
    reader_records = [{} for _ in range(readers)]
    threads = [
        threading.Thread(
            target=_reader_loop,
            args=(cluster, pairs, deadline, seed + 30 + i, reader_records[i],
                  make_pair_picker(source_picker, vertices, seed + 30 + i,
                                   picker_kwargs)),
            name=f"audit-reader-{i}",
        )
        for i in range(readers)
    ]
    submit_record = {}
    threads.append(threading.Thread(
        target=_submitter_loop,
        args=(cluster, cycle, deadline, batch_size, pause, submit_record),
        name="audit-submitter",
    ))
    fault_record = {"events": {}, "problems": []}
    if kill or corrupt:
        threads.append(threading.Thread(
            target=_fault_controller,
            args=(cluster, deadline, duration, kill, corrupt, fault_record),
            name="audit-fault-controller",
        ))

    problems = []
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        run_ended = time.time()
        cluster.sync(timeout=30.0)
        if not auditor.drain(timeout=drain_timeout):
            problems.append(
                f"auditor failed to drain within {drain_timeout} s "
                f"(pending {auditor.stats()['pending']})"
            )
        elapsed = run_ended - run_started
        sampler_stats = sampler.stats()
        auditor_stats = auditor.stats()
        if registry is not None:
            from repro.obs.export import write_files

            stem = f"audit-{backend}" + (f"-{corrupt}" if corrupt else "")
            telemetry_paths = write_files(
                registry, telemetry, tracer=tracer, stem=stem,
            )
        try:
            auditor.close()
        except ServeError as exc:
            problems.append(f"auditor died: {exc}")
    except BaseException:
        try:
            auditor.close()
        except ServeError:
            pass
        try:
            cluster.close()
        except ClusterError:
            pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise
    try:
        cluster.close()
    except ClusterError as exc:
        problems.append(f"shutdown failure: {exc}")
    if own_dir:
        shutil.rmtree(state_dir, ignore_errors=True)

    for rec in reader_records:
        problems.extend(rec.get("problems", []))
    problems.extend(submit_record.get("problems", []))
    problems.extend(fault_record.get("problems", []))

    report = auditor.report
    severities = report.severities_seen()
    expected = EXPECTED_SEVERITY.get(corrupt)
    if "first_divergence_at" in detection:
        detection["detected_during_run"] = (
            detection["first_divergence_at"] <= run_ended
        )
        detection["detection_after_s"] = round(
            detection.pop("first_divergence_at") - run_started, 3
        )
    if strict:
        if auditor_stats["audited"] == 0:
            problems.append(
                "auditor audited zero samples — the run proves nothing "
                "(raise duration, sample_rate or reservoir)"
            )
        if corrupt is None and report.total:
            problems.append(
                f"clean run reported {report.total} divergence(s): "
                f"{report.divergences[0].describe()}"
            )
        if corrupt is not None:
            if not report.total:
                problems.append(
                    f"corrupted run ({corrupt}) went undetected across "
                    f"{auditor_stats['audited']} audited answers"
                )
            elif severities != [expected]:
                problems.append(
                    f"corrupted run ({corrupt}) expected exactly the "
                    f"{expected!r} class, got {severities}"
                )

    latencies = sorted(
        lat for rec in reader_records for lat in rec.get("latencies", [])
    )
    reads = sum(rec.get("reads", 0) for rec in reader_records)
    result = {
        "backend": backend,
        "replicas": replicas,
        "readers": readers,
        "policy": policy,
        "duration_s": round(elapsed, 3),
        "graph": {"n": n, "m": m},
        "reads": reads,
        "read_qps": round(reads / elapsed) if elapsed else 0,
        "read_latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 4),
            "p99": round(_percentile(latencies, 99) * 1e3, 4),
        },
        "updates_submitted": submit_record.get("submitted", 0),
        "sample_rate": sample_rate,
        "sampler": sampler_stats,
        "auditor": auditor_stats,
        "corrupt_mode": corrupt,
        "expected_severity": expected,
        "severities_seen": severities,
        "detection": detection,
        "telemetry": list(telemetry_paths) if registry is not None else None,
        "fault_injection": fault_record["events"],
        "audit_problems": problems,
    }
    if strict and problems:
        preview = "; ".join(str(p) for p in problems[:5])
        first = report.divergences[0] if report.divergences else None
        raise AuditDivergenceError(
            f"audit loadgen observed {len(problems)} problem(s) "
            f"({backend} backend): {preview}",
            seq=first.seq if first else None,
            divergences=report.divergences,
        )
    return result
