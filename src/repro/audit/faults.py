"""Corrupting wrappers — test-only fault injection for the audit stack.

The serving layer's own fault harness kills processes and truncates logs;
what it cannot produce is a *plausible wrong answer* — a replica that
stays healthy, keeps its seq current, and quietly serves bad counts.
That is exactly the failure differential verification exists to catch, so
these wrappers simulate it at the two seams the serving layer exposes:

* :func:`corrupt_snapshot_wrapper` — for a live fleet: installed via
  :meth:`repro.cluster.Replica.set_snapshot_wrapper`, it proxies every
  snapshot the replica publishes so served answers are corrupted while
  the engine, WAL tail and checkpoints stay clean (the shadow baseline
  must bootstrap from *honest* state, or the audit would be comparing one
  lie to another).
* :func:`tamper_backend` — for a single service: rebinds the engine
  backend's ``snapshot_index`` hook so every *published* index copy is a
  corrupting proxy, while ``index_to_dict`` (the checkpoint path) keeps
  telling the truth.

Corruption modes map one-to-one onto the comparator's severity classes:

* ``"count"`` — finite-distance answers gain one phantom path
  (``count-mismatch``); distance-only and unreachable answers are served
  honestly, so a corrupted run reports *exactly one* divergence class.
* ``"dist"``  — finite distances grow by one (``dist-mismatch``); the
  mode that bites distance-only (sd) backends too.
* ``"refusal"`` — finite-distance answers report zero paths, a
  structurally impossible shape (``refusal``).
"""

from repro.exceptions import AuditDivergenceError

INF = float("inf")

#: corruption mode -> the comparator severity class it must trigger.
MODES = ("count", "dist", "refusal")


def corrupt_answer(answer, mode):
    """Corrupt one (distance, count) answer under ``mode``.

    Answers the mode cannot corrupt without changing its divergence class
    (unreachable pairs; counts that do not exist) pass through honestly.
    """
    d, c = answer
    if d == INF:
        return answer
    if mode == "count":
        if c is None:
            return answer
        return d, c + 1
    if mode == "dist":
        return d + 1, c
    if mode == "refusal":
        if c is None:
            return answer
        return d, 0
    raise AuditDivergenceError(
        f"unknown corruption mode {mode!r}; choose from {MODES}"
    )


class CorruptingSnapshot:
    """A snapshot proxy that lies on the read path only.

    Wraps a published :class:`~repro.serve.SnapshotView`: ``query`` and
    ``query_many`` corrupt their answers under the configured mode, while
    every coordinate a router or reader inspects (``seq``, ``epoch``,
    ``backend_name``, ``published_at``) passes through untouched — the
    tampered replica looks perfectly healthy from the outside.
    """

    __slots__ = ("_inner", "_mode")

    def __init__(self, inner, mode="count"):
        if mode not in MODES:
            raise AuditDivergenceError(
                f"unknown corruption mode {mode!r}; choose from {MODES}"
            )
        self._inner = inner
        self._mode = mode

    def query(self, s, t):
        return corrupt_answer(self._inner.query(s, t), self._mode)

    def query_many(self, pairs):
        return [
            corrupt_answer(a, self._mode)
            for a in self._inner.query_many(pairs)
        ]

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self):
        return f"CorruptingSnapshot(mode={self._mode!r}, inner={self._inner!r})"


def corrupt_snapshot_wrapper(mode="count"):
    """A :meth:`~repro.cluster.Replica.set_snapshot_wrapper` argument that
    proxies every published snapshot through :class:`CorruptingSnapshot`."""
    if mode not in MODES:
        raise AuditDivergenceError(
            f"unknown corruption mode {mode!r}; choose from {MODES}"
        )
    return lambda snapshot: CorruptingSnapshot(snapshot, mode)


class CorruptingIndex:
    """An index proxy that corrupts ``query`` answers.

    ``source_probe`` is pinned to ``None`` so the batch path
    (:func:`repro.engine.batch_answers`) falls back to per-pair ``query``
    — every answer then flows through the corruption, not just singleton
    sources.  Everything else delegates, so serialization stays honest.
    """

    #: hide the shared-scan fast path; see the class docstring.
    source_probe = None

    def __init__(self, inner, mode="count"):
        if mode not in MODES:
            raise AuditDivergenceError(
                f"unknown corruption mode {mode!r}; choose from {MODES}"
            )
        self._inner = inner
        self._mode = mode

    def query(self, s, t):
        return corrupt_answer(self._inner.query(s, t), self._mode)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self):
        return f"CorruptingIndex(mode={self._mode!r}, inner={self._inner!r})"


def tamper_backend(backend, mode="count"):
    """Make ``backend`` publish corrupting index copies from now on.

    Rebinding ``snapshot_index`` on the *instance* poisons every snapshot
    the serving layer publishes next, while the checkpoint path
    (``index_to_dict``) and the live index stay honest — the audited
    service keeps passing its own invariant checks while serving wrong
    answers, which is precisely the scenario the shadow auditor exists
    for.  Returns the undo callable that restores the honest hook.
    """
    original = backend.snapshot_index

    def corrupted_snapshot_index():
        return CorruptingIndex(original(), mode)

    backend.snapshot_index = corrupted_snapshot_index

    def restore():
        backend.snapshot_index = original

    return restore
