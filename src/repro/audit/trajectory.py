"""Perf-trajectory history: record every bench run, report drift.

The opt-in ``--compare`` gate compares one run against one committed
JSON file; this module promotes that into *history*:

* ``repro-bench <experiment> --record`` appends one JSONL entry per
  experiment to ``BENCH_history.jsonl`` — run metadata (experiment,
  timestamp, profile, seed) plus the tracked metrics extracted by the
  same :mod:`repro.bench.compare` extractors the gate uses, so the two
  mechanisms can never track different numbers;
* ``repro-bench drift`` reads the history and reports, per experiment,
  how the most recent run moved against a rolling baseline window (the
  mean of the previous ``window`` runs), direction-aware — a regression
  beyond the tolerance exits nonzero.

The history file is append-only JSONL so merges stay trivial and a
corrupt line loses one run, not the trajectory.
"""

import json
import os
import time

#: the canonical history file name, committed at the repo root.
HISTORY_FILENAME = "BENCH_history.jsonl"

_LOWER = "lower"


def record_run(path, result, profile=None, seed=None, recorded_at=None):
    """Append one history entry for ``result`` (an ExperimentResult).

    Returns the entry dict, or ``None`` when the experiment has no
    tracked metrics (nothing is written — an empty entry would pollute
    every later drift window).
    """
    from repro.bench.compare import extract_metrics

    metrics = extract_metrics(result.name, result.extra)
    if not metrics:
        return None
    entry = {
        "experiment": result.name,
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ",
            time.gmtime(recorded_at if recorded_at is not None else time.time()),
        ),
        "profile": profile,
        "seed": seed,
        "metrics": {
            name: {"value": value, "direction": direction}
            for name, (value, direction) in sorted(metrics.items())
        },
    }
    with open(path, "a") as f:
        f.write(json.dumps(entry, default=str) + "\n")
    return entry


def load_history(path):
    """Read every well-formed entry of a history file, in file order.

    A missing file is an empty history; a malformed line is skipped (one
    bad merge must not brick the drift report) but counted — returns
    ``(entries, skipped_lines)``.
    """
    entries = []
    skipped = 0
    if not os.path.exists(path):
        return entries, skipped
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(entry, dict) or "experiment" not in entry:
                skipped += 1
                continue
            entries.append(entry)
    return entries, skipped


def _metric_values(entry):
    """{metric: (value, direction)} out of one history entry."""
    out = {}
    for name, payload in entry.get("metrics", {}).items():
        try:
            value = float(payload["value"])
        except (KeyError, TypeError, ValueError):
            continue
        out[name] = (value, payload.get("direction", _LOWER))
    return out


def drift_report(entries, window=5, tolerance=0.5, experiments=None):
    """Compare each experiment's latest run against its rolling baseline.

    For every experiment in ``entries`` (optionally filtered), the most
    recent entry is measured against the per-metric *mean* of the up-to-
    ``window`` runs before it, direction-aware (a higher-is-better metric
    regresses by falling).  Returns ``(regressions, lines, skipped)``:
    ``regressions`` lists one dict per metric whose change exceeds
    ``tolerance``, shaped like
    :func:`repro.bench.compare.compare_result`; ``lines`` is the full
    human-readable account; ``skipped`` lists one
    ``{"experiment", "metric", "reason"}`` dict per comparison the
    report could NOT make — an empty history, a single-entry experiment
    (its only run would be its own baseline), a metric with no prior
    recording, or a zero baseline mean.  Callers that treat "no
    regressions" as green must surface ``skipped`` so an un-checkable
    history doesn't silently pass.
    """
    by_experiment = {}
    for entry in entries:
        by_experiment.setdefault(entry["experiment"], []).append(entry)
    regressions = []
    lines = []
    skipped = []
    for name in sorted(by_experiment):
        if experiments and name not in experiments:
            continue
        runs = by_experiment[name]
        latest = runs[-1]
        baseline_runs = runs[max(0, len(runs) - 1 - window):-1]
        lines.append(
            f"[drift] {name}: latest {latest.get('recorded_at')} vs "
            f"{len(baseline_runs)} baseline run(s)"
        )
        if not baseline_runs:
            lines.append(
                f"[drift] {name}: SKIPPED — only one recorded run, no "
                f"baseline window yet, record more runs"
            )
            skipped.append({
                "experiment": name,
                "metric": None,
                "reason": "only one recorded run — no baseline window",
            })
            continue
        current = _metric_values(latest)
        history = [_metric_values(r) for r in baseline_runs]
        for metric in sorted(current):
            cur_value, direction = current[metric]
            past = [h[metric][0] for h in history if metric in h]
            if not past:
                lines.append(
                    f"[drift] {name}.{metric}: SKIPPED — new metric, "
                    f"no history"
                )
                skipped.append({
                    "experiment": name,
                    "metric": metric,
                    "reason": "new metric — no baseline history",
                })
                continue
            base_value = sum(past) / len(past)
            if not base_value:
                lines.append(
                    f"[drift] {name}.{metric}: SKIPPED — baseline mean "
                    f"is 0"
                )
                skipped.append({
                    "experiment": name,
                    "metric": metric,
                    "reason": "baseline mean is 0",
                })
                continue
            if direction == _LOWER:
                change = (cur_value - base_value) / base_value
            else:
                change = (base_value - cur_value) / base_value
            verdict = "ok"
            if change > tolerance:
                verdict = "REGRESSION"
                regressions.append({
                    "experiment": name,
                    "metric": metric,
                    "baseline": base_value,
                    "current": cur_value,
                    "change": change,
                    "direction": direction,
                })
            elif change < 0:
                verdict = "improved"
            if change >= 0:
                trend = "slower" if direction == _LOWER else "worse"
            else:
                trend = "faster" if direction == _LOWER else "better"
            lines.append(
                f"[drift] {name}.{metric}: {base_value:.6g} -> "
                f"{cur_value:.6g} ({change:+.1%} {trend}, "
                f"bound {tolerance:.0%}) {verdict}"
            )
    if not by_experiment:
        lines.append(
            "[drift] SKIPPED — history is empty, run with --record first"
        )
        skipped.append({
            "experiment": None,
            "metric": None,
            "reason": "history is empty — nothing to compare",
        })
    return regressions, lines, skipped
