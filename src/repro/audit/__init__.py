"""repro.audit — shadow-replica differential verification + perf trajectory.

Serving answers from a dynamically maintained 2-hop counting index is a
bet that IncSPC/DecSPC preserved the index invariants through every batch;
this package checks the bet continuously in production style rather than
only in tests:

* :class:`AuditSampler` taps live answers (service or cluster router) and
  reservoir-samples ``(query, answer, seq)`` triples at bounded overhead;
* :class:`ShadowAuditor` replays each sample at its claimed seq on a
  WAL-tailing shadow graph and recomputes the answer by direct pruned
  traversal — a baseline that cannot share a maintenance bug with the
  index — filing classified :class:`Divergence` records in a
  :class:`DivergenceReport`;
* :mod:`repro.audit.faults` injects plausible-wrong-answer corruption for
  tests and the CI audit-smoke job;
* :mod:`repro.audit.loadgen` drives the full kill-and-corrupt scenario;
* :mod:`repro.audit.trajectory` records every bench run into
  ``BENCH_history.jsonl`` and reports drift against a rolling baseline.
"""

from repro.audit.comparator import (
    COUNT_MISMATCH,
    DIST_MISMATCH,
    IDENTITY_PARTIAL,
    REFUSAL,
    SEVERITIES,
    Divergence,
    DivergenceReport,
    check_answer_shape,
    classify_divergence,
    merge_partial_answers,
)
from repro.audit.faults import (
    MODES,
    CorruptingIndex,
    CorruptingSnapshot,
    corrupt_answer,
    corrupt_snapshot_wrapper,
    tamper_backend,
)
from repro.audit.loadgen import EXPECTED_SEVERITY, run_audit_loadgen
from repro.audit.replay import GraphReplayer, apply_graph_update
from repro.audit.sampler import AuditRateController, AuditSample, AuditSampler
from repro.audit.shadow import ShadowAuditor
from repro.audit.trajectory import (
    HISTORY_FILENAME,
    drift_report,
    load_history,
    record_run,
)

__all__ = [
    "COUNT_MISMATCH",
    "DIST_MISMATCH",
    "IDENTITY_PARTIAL",
    "REFUSAL",
    "SEVERITIES",
    "Divergence",
    "DivergenceReport",
    "check_answer_shape",
    "classify_divergence",
    "merge_partial_answers",
    "MODES",
    "CorruptingIndex",
    "CorruptingSnapshot",
    "corrupt_answer",
    "corrupt_snapshot_wrapper",
    "tamper_backend",
    "EXPECTED_SEVERITY",
    "run_audit_loadgen",
    "GraphReplayer",
    "apply_graph_update",
    "AuditRateController",
    "AuditSample",
    "AuditSampler",
    "ShadowAuditor",
    "HISTORY_FILENAME",
    "drift_report",
    "load_history",
    "record_run",
]
