"""ShadowAuditor: the trusted-baseline thread behind differential audits.

The auditor owns a :class:`~repro.audit.replay.GraphReplayer` bootstrapped
from the audited service's checkpoint and kept current by tailing its WAL
— exactly like a :class:`~repro.cluster.Replica`, except it maintains no
label index at all: every audited answer is recomputed by direct traversal
(:func:`repro.engine.baseline_answer`), so the baseline cannot share a
maintenance bug with the index under test.

The loop: poll the WAL tail and advance the replayer; :meth:`~repro.audit.
AuditSampler.take` the reservoir; replay each sampled ``(query, answer,
seq)`` triple at exactly its claimed sequence number (the rewind window
makes recent seqs reachable even after the stream moved on); classify any
disagreement through the shared comparator and file it in the
:class:`~repro.audit.DivergenceReport`.  Samples ahead of the stream wait
in a heap until the WAL catches up; samples older than the rewind window
are counted ``skipped_stale`` — an audit coverage gap, never a divergence.

A replication-stream gap (the primary compacted its WAL) re-bootstraps
from the fresh checkpoint, like a replica; pending samples that fell
below the new base are skipped.
"""

import heapq
import os
import threading
import time

from repro.audit.comparator import Divergence, DivergenceReport, classify_divergence
from repro.audit.replay import GraphReplayer
from repro.engine import baseline_answer, get_backend
from repro.exceptions import ServeError
from repro.serve.persist import graph_from_payload, load_checkpoint
from repro.serve.service import SNAPSHOT_FILENAME, WAL_FILENAME
from repro.serve.wal import WalTailer


class ShadowAuditor:
    """Differentially verify sampled answers against a traversal baseline.

    Parameters
    ----------
    sampler:
        The :class:`~repro.audit.AuditSampler` installed as the audited
        service/router's answer tap; the auditor drains it.
    state_dir:
        The audited primary's ``durability_dir`` (checkpoint + WAL).
    report:
        A :class:`~repro.audit.DivergenceReport`; defaults to a silent
        collecting one.  A ``"raise"`` sink makes the auditor fail fast:
        the first divergence kills the thread and :meth:`close` re-raises.
    poll_interval:
        Seconds the loop sleeps when fully idle.
    history:
        Rewind-window depth of the underlying replayer.
    controller:
        Optional :class:`~repro.audit.AuditRateController`; the audit
        loop feeds it the live lag (pending heap + reservoir) every
        tick, letting it hold the audit queue depth at its target by
        retuning the sampler's rate.
    stall_budget:
        Consecutive no-progress re-bootstraps before the auditor gives
        up (``None`` uses :attr:`MAX_STALLED_BOOTSTRAPS`).  The chaos
        harness *raises* it so the auditor outlives a corrupted-stream
        window: it keeps re-bootstrapping until the supervisor's repair
        rewrites the log, then verifies the healed fleet's answers.
    """

    #: consecutive no-progress re-bootstraps before the auditor gives up
    #: (same contract as Replica.MAX_STALLED_BOOTSTRAPS).
    MAX_STALLED_BOOTSTRAPS = 3

    def __init__(self, sampler, state_dir, report=None, poll_interval=0.005,
                 history=256, controller=None, stall_budget=None):
        self.sampler = sampler
        self._stall_budget = (
            self.MAX_STALLED_BOOTSTRAPS if stall_budget is None else stall_budget
        )
        self.controller = controller
        self.report = report if report is not None else DivergenceReport()
        self._dir = state_dir
        self._poll_interval = poll_interval
        self._history = history
        self._pending = []   # heap of (seq, tiebreak, sample)
        self._tiebreak = 0
        self._fatal = None
        self._alive = True
        self._idle_ticks = 0
        self.audited = 0
        self.skipped_stale = 0
        self.batches_applied = 0
        self.bootstraps = 0
        self._stop = threading.Event()
        self._bootstrap()  # fails loudly on a bad checkpoint
        self._thread = threading.Thread(
            target=self._audit_loop, name="spc-shadow-auditor", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    @property
    def healthy(self):
        """True while the audit thread runs without a fatal error."""
        return self._alive and self._fatal is None

    @property
    def fatal(self):
        """The exception that killed the audit thread, or ``None``."""
        return self._fatal

    @property
    def seq(self):
        """The WAL sequence number the shadow graph currently reflects."""
        return self._replayer.seq

    def stats(self):
        """JSON-safe counters plus the divergence summary."""
        return {
            "backend": self._backend_name,
            "seq": self._replayer.seq,
            "audited": self.audited,
            "skipped_stale": self.skipped_stale,
            "pending": len(self._pending),
            "batches_applied": self.batches_applied,
            "bootstraps": self.bootstraps,
            "healthy": self.healthy,
            "divergences": self.report.summary(),
        }

    def set_metrics(self, registry):
        """Promote the auditor's counters into a shared registry as
        callback gauges (``repro_audit_*`` — audited, pending = audit
        lag, bootstraps, per-kind divergence counts, health)."""
        if registry is None:
            return
        from repro.obs.bind import bind_auditor

        bind_auditor(registry, self)

    def drain(self, timeout=15.0):
        """Block until every sample taken so far has been audited.

        Quiescence = the sampler's reservoir is empty, no sample waits in
        the pending heap, and the loop has observed two consecutive fully
        idle ticks (so the WAL tail is consumed too).  Call after the
        audited workload stopped submitting.  Returns True on quiescence,
        False on timeout; raises if the audit thread died.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.healthy:
                self._raise_fatal()
            if (
                self._idle_ticks >= 2
                and not self._pending
                and self.sampler.pending() == 0
            ):
                return True
            time.sleep(self._poll_interval)
        return False

    def close(self):
        """Stop the audit thread; re-raises a fatal error if it died."""
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._alive = False
        if self._fatal is not None:
            self._raise_fatal()

    def _raise_fatal(self):
        if isinstance(self._fatal, ServeError):
            raise self._fatal
        raise ServeError(
            f"shadow auditor died: {self._fatal!r}"
        ) from self._fatal

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            f"ShadowAuditor(backend={self._backend_name!r}, "
            f"seq={self._replayer.seq}, audited={self.audited}, "
            f"divergences={self.report.total}, healthy={self.healthy})"
        )

    # ------------------------------------------------------------------
    # Audit thread
    # ------------------------------------------------------------------

    def _bootstrap(self):
        """(Re)build the shadow graph from the primary's checkpoint."""
        payload = load_checkpoint(os.path.join(self._dir, SNAPSHOT_FILENAME))
        backend_cls = get_backend(payload["backend"])
        self._backend_name = backend_cls.name
        self._directed = backend_cls.directed
        self._weighted = backend_cls.weighted
        self._counts = backend_cls.counts
        graph = graph_from_payload(payload["graph"], backend_cls.graph_type)
        base_seq = payload.get("applied_seq", 0)
        self._replayer = GraphReplayer(graph, base_seq, history=self._history)
        self._tailer = WalTailer(
            os.path.join(self._dir, WAL_FILENAME),
            after_seq=base_seq,
            expect_backend=payload["backend"],
        )
        self.bootstraps += 1
        # Pending samples below the fresh base are no longer reachable.
        kept = [p for p in self._pending if p[0] >= base_seq]
        self.skipped_stale += len(self._pending) - len(kept)
        heapq.heapify(kept)
        self._pending = kept

    def _audit_loop(self):
        stalled = 0
        try:
            while not self._stop.is_set():
                progressed = False
                records, gap = self._tailer.poll()
                for seq, updates in records:
                    self._replayer.apply_batch(seq, updates)
                    self.batches_applied += 1
                    progressed = True
                if gap:
                    before = self._replayer.seq
                    self._bootstrap()
                    if records or self._replayer.seq > before:
                        stalled = 0
                    else:
                        stalled += 1
                        if stalled >= self._stall_budget:
                            raise ServeError(
                                f"shadow auditor cannot advance past a "
                                f"stream gap at seq {self._replayer.seq}: "
                                f"{stalled} consecutive re-bootstraps made "
                                f"no progress"
                            )
                        self._stop.wait(self._poll_interval)
                        continue
                else:
                    stalled = 0
                for sample in self.sampler.take():
                    self._enqueue(sample)
                    progressed = True
                progressed |= self._process_pending()
                if self.controller is not None:
                    self.controller.observe(
                        len(self._pending) + self.sampler.pending()
                    )
                if progressed:
                    self._idle_ticks = 0
                else:
                    self._idle_ticks += 1
                    self._stop.wait(self._poll_interval)
        except BaseException as exc:  # noqa: BLE001 — surfaced via healthy/fatal
            self._fatal = exc
        finally:
            self._alive = False

    def _enqueue(self, sample):
        self._tiebreak += 1
        heapq.heappush(self._pending, (sample.seq, self._tiebreak, sample))

    def _process_pending(self):
        """Audit every pending sample the stream has reached; True if any."""
        audited_any = False
        while self._pending and self._pending[0][0] <= self._replayer.seq:
            _, _, sample = heapq.heappop(self._pending)
            self._audit_one(sample)
            audited_any = True
        return audited_any

    def _audit_one(self, sample):
        try:
            expected = self._replayer.answer_at(
                sample.seq,
                lambda graph: baseline_answer(
                    graph, sample.s, sample.t,
                    directed=self._directed,
                    weighted=self._weighted,
                    counts=self._counts,
                ),
            )
        except LookupError:
            # Older than the rewind window: an audit coverage gap (tune
            # `history` or the sampling rate), never a divergence.
            self.skipped_stale += 1
            return
        self.audited += 1
        severity = classify_divergence(expected, sample.answer)
        if severity is not None:
            self.report.record(Divergence(
                query=(sample.s, sample.t),
                seq=sample.seq,
                expected=expected,
                got=sample.answer,
                backend=self._backend_name,
                epoch=sample.epoch,
                severity=severity,
                target=sample.target,
            ))
