"""Divergence records, severity classification and the report sink.

The comparator is the shared vocabulary of every differential check in
the repo: the serve/cluster load harnesses, the progressive WAL-replay
oracle and the :class:`~repro.audit.ShadowAuditor` all funnel their
expected-vs-served comparisons through :func:`classify_divergence`, so
"what counts as wrong" is defined exactly once.

Severity classes (most to least alarming):

* ``refusal`` — the served answer is structurally impossible (a finite
  distance with no paths, a negative distance, an unreachable pair with
  a path count, or not an answer pair at all).  No baseline is needed to
  condemn it.
* ``dist-mismatch`` — the served distance differs from the trusted
  baseline's.  Distances are the half every backend family serves, so a
  distance mismatch means the labels are wrong for *every* consumer.
* ``count-mismatch`` — the distance agrees but the path count differs;
  the classic failure mode of a mis-maintained counting index (the
  paper's whole contribution is keeping this half right under updates).

A ``None`` count on either side (the distance-only SD family) restricts
the comparison to distances — an ``(sd, None)`` answer can only ever be
a ``dist-mismatch`` or a ``refusal``.
"""

from dataclasses import dataclass

from repro.exceptions import AuditDivergenceError

INF = float("inf")

#: severity class names, most severe first.
REFUSAL = "refusal"
DIST_MISMATCH = "dist-mismatch"
COUNT_MISMATCH = "count-mismatch"
SEVERITIES = (REFUSAL, DIST_MISMATCH, COUNT_MISMATCH)


#: the neutral element of :func:`merge_partial_answers` — "no hubs in my
#: slice": unreachable, zero paths.
IDENTITY_PARTIAL = (INF, 0)


def merge_partial_answers(a, b):
    """Combine two partial ``(distance, count)`` answers into one.

    The single associative, commutative combiner behind every answer
    merge in the repo: the shard router folds per-shard partials with it
    (each shard probes only the hubs in its slice, and the slices
    partition the hub space, so equal-distance counts *add* and never
    double-count), and the audit comparator's callers use it to build
    expected merged answers.  A ``None`` count on either side (the
    distance-only SD family) is absorbing: the merged answer can only
    promise a distance.  :data:`IDENTITY_PARTIAL` is the identity.
    """
    da, ca = a
    db, cb = b
    if da < db:
        return a
    if db < da:
        return b
    if ca is None or cb is None:
        return (da, None)
    return (da, ca + cb)


def check_answer_shape(answer):
    """Why ``answer`` is structurally impossible, or ``None`` when sound.

    The single definition of "malformed" shared by the serve loadgen, the
    cluster harness and the shadow auditor: an answer must be a
    ``(distance, count)`` pair with a non-negative distance, a count of
    at least 1 when the distance is finite (``None`` for distance-only
    backends), and a count of 0 or ``None`` when it is infinite.
    """
    try:
        d, c = answer
    except (TypeError, ValueError):
        return f"not a (distance, count) pair: {answer!r}"
    if not isinstance(d, (int, float)):
        # Catches e.g. a 2-char string unpacking "successfully".
        return f"impossible distance {d!r}"
    if c is not None and not isinstance(c, (int, float)):
        return f"impossible path count {c!r}"
    if d == INF:
        if c not in (0, None):
            return f"unreachable pair with path count {c!r}"
        return None
    if d is None or d < 0:
        return f"impossible distance {d!r}"
    if c is not None and c < 1:
        return f"finite distance {d!r} with path count {c!r}"
    return None


def classify_divergence(expected, got):
    """Compare a baseline answer to a served one; returns a severity or
    ``None`` when they agree.

    ``expected`` is trusted (the auditor recomputed it by traversal), so
    a malformed *expected* is a programming error and raises; a malformed
    ``got`` classifies as :data:`REFUSAL`.  A ``None`` count on either
    side restricts the comparison to distances.
    """
    bad = check_answer_shape(expected)
    if bad is not None:
        raise AuditDivergenceError(
            f"trusted baseline produced a malformed answer ({bad})"
        )
    if check_answer_shape(got) is not None:
        return REFUSAL
    ed, ec = expected
    gd, gc = got
    if ed != gd:
        return DIST_MISMATCH
    if ec is None or gc is None:
        return None
    if ec != gc:
        return COUNT_MISMATCH
    return None


@dataclass(frozen=True)
class Divergence:
    """One audited answer that failed differential verification."""

    query: tuple          # the (s, t) pair
    seq: int              # the answer's claimed WAL sequence number
    expected: tuple       # the trusted baseline's (sd, spc)
    got: object           # what was actually served
    backend: str          # backend family of the audited stream
    epoch: int            # snapshot epoch the answer was served from
    severity: str         # one of SEVERITIES
    target: str = ""      # which serving target answered (replica name)

    def describe(self):
        """One-line human-readable account of the divergence."""
        return (
            f"{self.severity}: query {self.query} at seq {self.seq} "
            f"(backend {self.backend}, epoch {self.epoch}"
            f"{', target ' + self.target if self.target else ''}) "
            f"served {self.got!r}, baseline says {self.expected!r}"
        )


class DivergenceReport:
    """Collects classified divergences and routes them to a sink.

    Parameters
    ----------
    sink:
        ``None`` — collect silently; ``"log"`` — emit one warning per
        divergence via :mod:`logging`; ``"raise"`` — fail fast with
        :class:`~repro.exceptions.AuditDivergenceError` on the first
        divergence recorded; any callable — invoked with each
        :class:`Divergence`.
    keep:
        Retain at most this many full records (counters keep counting
        past the cap, so a divergence storm cannot eat unbounded memory).
    """

    def __init__(self, sink=None, keep=256):
        if sink not in (None, "log", "raise") and not callable(sink):
            raise AuditDivergenceError(
                f"unknown sink {sink!r}; use None, 'log', 'raise' "
                f"or a callable"
            )
        self._sink = sink
        self._keep = keep
        self.divergences = []
        self.by_severity = {s: 0 for s in SEVERITIES}
        self.total = 0

    def record(self, divergence):
        """File one :class:`Divergence` and feed the sink."""
        self.total += 1
        self.by_severity[divergence.severity] += 1
        if len(self.divergences) < self._keep:
            self.divergences.append(divergence)
        if self._sink == "log":
            import logging

            logging.getLogger("repro.audit").warning(divergence.describe())
        elif self._sink == "raise":
            raise AuditDivergenceError(
                f"differential verification failed: {divergence.describe()}",
                seq=divergence.seq,
                divergences=[divergence],
            )
        elif callable(self._sink):
            self._sink(divergence)

    def severities_seen(self):
        """The severity classes recorded so far, most severe first."""
        return [s for s in SEVERITIES if self.by_severity[s]]

    def summary(self):
        """A JSON-safe digest: totals, per-severity counts, first records."""
        return {
            "total": self.total,
            "by_severity": dict(self.by_severity),
            "divergences": [d.describe() for d in self.divergences[:16]],
        }

    def raise_if_any(self):
        """Raise :class:`AuditDivergenceError` when anything was recorded."""
        if self.total:
            first = self.divergences[0] if self.divergences else None
            raise AuditDivergenceError(
                f"differential verification recorded {self.total} "
                f"divergence(s) ({', '.join(self.severities_seen())}); "
                f"first: {first.describe() if first else 'not retained'}",
                seq=first.seq if first else None,
                divergences=self.divergences,
            )

    def __len__(self):
        return self.total

    def __repr__(self):
        return (
            f"DivergenceReport(total={self.total}, "
            f"by_severity={ {s: n for s, n in self.by_severity.items() if n} })"
        )
