"""Request-scoped tracing: where did this query's latency go?

A :class:`QueryTrace` is a span tree for one request: the root span
covers the whole operation (a routed query, a writer batch), child spans
name the stages it passed through (``queue_wait``, ``snapshot_pin``,
``scatter``, ``shard_probe``, ``merge``, ``tap`` on the read path;
``apply``, ``wal_append``, ``journal``, ``publish`` on the write path).
Spans carry **caller-supplied durations** — the instrumented site stamps
``time.perf_counter()`` around the work it already does and files the
difference with :meth:`QueryTrace.add`; the trace layer itself never
reads a clock, mirroring the registry's rule.

Trace ids are allocated from a per-:class:`Tracer` monotone counter
(``t-000001`` ...), so a seeded run issues the same ids in the same
order every time.  The id is threaded through the call path explicitly:
the component that begins the trace passes the ``QueryTrace`` down
(router -> per-shard partial -> merge -> answer tap), and every span it
grows belongs to that id — the propagation contract DESIGN.md §16
documents.

Retention is a bounded ring plus a *sampled always-keep-slow* policy:

* ``sample_every`` gates which requests get a trace at all (1 = every
  request; N = one in N, counter-based and therefore deterministic);
* every finished trace enters the ``recent`` ring (bounded deque — new
  traces evict the oldest);
* a trace whose root duration reaches ``slow_threshold`` seconds is
  *also* copied into the ``slow`` ring, which only slow traces can
  evict — so the request you need to debug is still there after a
  million fast ones have rolled the recent ring over.
"""

import itertools
import threading
from collections import deque


class Span:
    """One named, timed stage of a request (a node of the span tree)."""

    __slots__ = ("name", "duration", "meta", "children")

    def __init__(self, name, duration=0.0, meta=None):
        self.name = name
        self.duration = duration
        self.meta = meta
        self.children = []

    def add(self, name, duration, meta=None):
        """Attach a pre-timed child span; returns it."""
        child = Span(name, duration, meta)
        self.children.append(child)
        return child

    def child_total(self):
        """Sum of direct children's durations (attributed time)."""
        return sum(c.duration for c in self.children)

    def unattributed(self):
        """Root time no child claims (scheduling, bookkeeping, ...)."""
        return self.duration - self.child_total()

    def to_dict(self):
        """JSON-safe span tree."""
        out = {"name": self.name, "duration_s": self.duration}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self):
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class QueryTrace:
    """The span tree of one request, tagged with a propagated trace id.

    Built by the component that owns the request (service read path,
    router, writer loop) and passed down the call chain; stages are
    attached with :meth:`add` (pre-timed, no clock reads here).  The
    trace is handed back to its :class:`Tracer` via :meth:`finish` with
    the measured end-to-end duration.
    """

    __slots__ = ("trace_id", "root", "_tracer", "finished")

    def __init__(self, trace_id, name, tracer=None, meta=None):
        self.trace_id = trace_id
        self.root = Span(name, 0.0, meta)
        self._tracer = tracer
        self.finished = False

    def add(self, name, duration, meta=None):
        """Attach one pre-timed stage span under the root; returns it."""
        return self.root.add(name, duration, meta)

    def finish(self, duration):
        """Seal the trace with its end-to-end duration and file it."""
        self.root.duration = duration
        self.finished = True
        if self._tracer is not None:
            self._tracer.record(self)
        return self

    def stage_totals(self):
        """``{stage_name: total_seconds}`` over the root's children."""
        totals = {}
        for child in self.root.children:
            totals[child.name] = totals.get(child.name, 0.0) + child.duration
        return totals

    def to_dict(self):
        """JSON-safe trace (id + span tree)."""
        return {"trace_id": self.trace_id, "root": self.root.to_dict()}

    def __repr__(self):
        return (
            f"QueryTrace({self.trace_id!r}, {self.root.name!r}, "
            f"{self.root.duration * 1e3:.3f} ms)"
        )


class Tracer:
    """Allocate, sample and retain :class:`QueryTrace` objects.

    Parameters
    ----------
    capacity:
        Bound of the ``recent`` ring (every finished trace enters it;
        the oldest is evicted).
    slow_capacity:
        Bound of the ``slow`` ring (only slow traces enter — and only
        slow traces evict, so fast traffic can never flush a slow one).
    slow_threshold:
        Root duration (seconds) at which a trace counts as slow.
    sample_every:
        Trace one request in this many (1 = all).  The gate is a plain
        counter, so a seeded single-threaded run traces the same
        requests every time; under reader concurrency it is GIL-
        approximate like every other monitoring counter.
    """

    def __init__(self, capacity=256, slow_capacity=64, slow_threshold=0.010,
                 sample_every=1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if slow_capacity < 1:
            raise ValueError(
                f"slow_capacity must be >= 1, got {slow_capacity!r}"
            )
        if slow_threshold < 0:
            raise ValueError(
                f"slow_threshold must be >= 0, got {slow_threshold!r}"
            )
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every!r}"
            )
        self.capacity = capacity
        self.slow_capacity = slow_capacity
        self.slow_threshold = slow_threshold
        self.sample_every = sample_every
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._recent = deque(maxlen=capacity)
        self._slow = deque(maxlen=slow_capacity)
        self._seen = 0
        self.started = 0
        self.recorded = 0
        self.slow_recorded = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def begin(self, name, meta=None):
        """Start a trace unconditionally (ignores the sampling gate)."""
        self.started += 1
        trace_id = f"t-{next(self._ids):06d}"
        return QueryTrace(trace_id, name, tracer=self, meta=meta)

    def maybe_begin(self, name, meta=None):
        """Start a trace if the sampling gate admits this request.

        Returns ``None`` otherwise — instrumented sites skip all span
        bookkeeping on ``None``, so an unsampled request pays one
        increment and one modulo.
        """
        self._seen += 1
        if self._seen % self.sample_every:
            return None
        return self.begin(name, meta)

    def record(self, trace):
        """File a finished trace into the retention rings."""
        with self._lock:
            self._recent.append(trace)
            self.recorded += 1
            if trace.root.duration >= self.slow_threshold:
                self._slow.append(trace)
                self.slow_recorded += 1

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def recent(self, limit=None):
        """The newest retained traces, oldest first."""
        with self._lock:
            traces = list(self._recent)
        return traces if limit is None else traces[-limit:]

    def slow(self, limit=None):
        """The retained slow traces, oldest first."""
        with self._lock:
            traces = list(self._slow)
        return traces if limit is None else traces[-limit:]

    def stage_totals(self, name=None):
        """Aggregate ``{stage: total_seconds}`` over retained traces.

        ``name`` filters to traces whose root span has that name (e.g.
        only ``"shard_query"`` traces).  Aggregation reads the bounded
        ring, so this is a debugging view; durable per-stage totals live
        in the registry's stage histograms.
        """
        totals = {}
        for trace in self.recent():
            if name is not None and trace.root.name != name:
                continue
            for stage, duration in trace.stage_totals().items():
                totals[stage] = totals.get(stage, 0.0) + duration
        return totals

    def stats(self):
        """JSON-safe counters (monitoring only)."""
        with self._lock:
            return {
                "sample_every": self.sample_every,
                "slow_threshold_s": self.slow_threshold,
                "started": self.started,
                "recorded": self.recorded,
                "slow_recorded": self.slow_recorded,
                "recent_held": len(self._recent),
                "slow_held": len(self._slow),
            }

    def __repr__(self):
        return (
            f"Tracer(recorded={self.recorded}, slow={self.slow_recorded}, "
            f"sample_every={self.sample_every})"
        )
