"""Promote existing per-subsystem ``stats()`` dicts into the registry.

Every layer of the stack already exposes a health accessor
(``SPCService.stats``, ``ClusterRouter.stats``, ``Supervisor.stats``,
...).  Rather than duplicate that bookkeeping, the bind helpers walk
one sample of the dict, and register a **callback gauge** per numeric
leaf: exposition re-reads the live accessor, so the registry can never
disagree with the old surface — parity holds by construction (and is
pinned by ``tests/obs/test_bind.py``).

Naming: leaves flatten with ``_`` joins under a ``repro_<layer>``
prefix, e.g. ``SPCService.stats()["wal_bytes"]`` becomes
``repro_serve_wal_bytes`` and a nested
``Supervisor.stats()["monitor"]["checks"]`` becomes
``repro_resilience_monitor_checks``.  Booleans read as 0/1; strings and
other non-numeric leaves are skipped (their transitions are counted by
the event instrumentation instead — e.g. breaker state *changes*).
"""

import re

_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(part):
    part = _SANITIZE_RE.sub("_", str(part))
    return part if part else "_"


def _numeric(value):
    """The leaf as a float, or None when it is not a numeric leaf."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _leaf_paths(sample, path=()):
    """Yield the path of every numeric leaf in a nested stats dict."""
    if isinstance(sample, dict):
        for key, value in sample.items():
            yield from _leaf_paths(value, path + (key,))
    elif _numeric(sample) is not None:
        yield path


def _reader(stats_fn, path):
    """A callback navigating a fresh stats() sample down ``path``."""

    def read():
        value = stats_fn()
        for part in path:
            value = value[part]
        return _numeric(value)

    return read


def bind_stats(registry, prefix, stats_fn, **labels):
    """Register one callback gauge per numeric leaf of ``stats_fn()``.

    The leaf set is discovered from a single sample taken now; leaves
    that appear later are not picked up (re-bind if a component grows
    new stats at runtime).  Returns the list of gauge names registered.
    """
    sample = stats_fn()
    names = []
    for path in _leaf_paths(sample):
        name = "_".join([prefix] + [_sanitize(p) for p in path])
        registry.gauge(name, fn=_reader(stats_fn, path), **labels)
        names.append(name)
    return names


# ----------------------------------------------------------------------
# Per-layer promotions (the satellite: old accessors and new exposition
# must agree — each helper is a thin naming wrapper over bind_stats).
# ----------------------------------------------------------------------


def bind_service(registry, service, **labels):
    """``SPCService.stats()`` -> ``repro_serve_*`` gauges (queue depth,
    applied batches, publish lag, WAL bytes, compactions, ...)."""
    return bind_stats(registry, "repro_serve", service.stats, **labels)


def bind_engine(registry, engine, **labels):
    """``SPCEngine.cache_info()`` + stream history -> ``repro_engine_*``
    gauges (cache hits/misses/invalidations/size, applied updates)."""
    names = []
    if engine.cache_info() is not None:
        names += bind_stats(registry, "repro_engine_cache",
                            engine.cache_info, **labels)

    def stream():
        history = engine.history
        return {
            "epoch": engine.epoch,
            "updates": history.updates,
            "insertions": history.insertions,
            "deletions": history.deletions,
            "vertex_ops": history.vertex_ops,
        }

    names += bind_stats(registry, "repro_engine", stream, **labels)
    return names


def bind_cluster_router(registry, router, **labels):
    """``ClusterRouter.stats()`` -> ``repro_cluster_*`` gauges (routed,
    fallbacks, waits, breaker trip counts, degraded serves)."""
    return bind_stats(registry, "repro_cluster", router.stats, **labels)


def bind_shard_router(registry, router, **labels):
    """``ShardRouter.stats()`` -> ``repro_shard_*`` gauges (scattered
    queries, refusals, cut waits)."""
    return bind_stats(registry, "repro_shard", router.stats, **labels)


def bind_sampler(registry, sampler, **labels):
    """``AuditSampler.stats()`` -> ``repro_audit_sampler_*`` gauges
    (rate, seen, sampled, evicted, buffered)."""
    return bind_stats(registry, "repro_audit_sampler", sampler.stats,
                      **labels)


def bind_auditor(registry, auditor, **labels):
    """``ShadowAuditor.stats()`` -> ``repro_audit_*`` gauges (audited,
    pending = audit lag, divergences, healthy)."""
    return bind_stats(registry, "repro_audit", auditor.stats, **labels)


def bind_supervisor(registry, supervisor, **labels):
    """``Supervisor.stats()`` -> ``repro_resilience_*`` gauges (restarts,
    repairs, incidents, MTTR)."""
    return bind_stats(registry, "repro_resilience", supervisor.stats,
                      **labels)
