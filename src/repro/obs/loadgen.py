"""Deterministic instrumented workload for the telemetry stack itself.

Every other harness in the repo measures the *serving* stack and treats
telemetry as a passenger; this one inverts that: the workload is shaped
so that the **telemetry is the deliverable** — every counter and every
histogram *count* (never a timing) must come out identical across two
same-seed runs.  That is what lets ``repro-bench obs`` assert the
registry's determinism fingerprint (:meth:`~repro.obs.MetricsRegistry
.counter_values`) instead of eyeballing dashboards.

How determinism is engineered, not hoped for:

* **single-threaded reads** — one seeded reader issues every scatter-
  gather query in program order, so per-stage histogram counts equal the
  read count exactly;
* **one applied batch per churn phase** — each phase is one
  ``submit_many`` (kept whole by the writer's drain contract) followed
  by a full :meth:`~repro.shard.ShardedCluster.sync`, so writer-batch /
  WAL / journal / publish counters cannot depend on drain timing;
* **publish_every=1** — every applied batch publishes inside the writer
  (never from the idle-staleness path), pinning the publish count to the
  batch count.

The driver exercises every instrumented seam at once: the shard router's
six-stage breakdown, the primary's writer spans, the answer tap feeding a
seeded :class:`~repro.audit.AuditSampler`, and the callback gauges bound
over live ``stats()``.  Wired into the benchmark CLI as
``repro-bench obs``.
"""

import random
import shutil
import tempfile
import time

from repro.engine import EngineConfig, SPCEngine
from repro.audit.sampler import AuditSampler
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.loadgen import make_workload
from repro.serve.service import ServeConfig
from repro.shard.shardcluster import ShardConfig, ShardedCluster

#: the acceptance-mandated read-path stages, in pipeline order; the
#: explicit ``unattributed`` remainder is what makes the per-stage sums
#: reconcile *exactly* with the end-to-end latency histogram.
STAGES = (
    "queue_wait", "snapshot_pin", "scatter", "shard_probe",
    "merge", "tap", "unattributed",
)


def run_obs_loadgen(backend="core", n=400, m=1200, shards=3, churn=48,
                    phases=4, reads_per_phase=160, batch_every=16,
                    batch_size=24, tap_rate=0.25, tap_capacity=256,
                    seed=0, instrument=True, registry=None, tracer=None,
                    state_dir=None):
    """Drive one deterministic instrumented run; returns a report dict.

    With ``instrument`` (the default) a :class:`~repro.obs
    .MetricsRegistry` + :class:`~repro.obs.Tracer` are installed across
    the whole fleet before any traffic flows; with ``instrument=False``
    the identical workload runs bare (the overhead-measurement control).
    The returned report carries the live ``registry`` / ``tracer`` /
    ``sampler`` objects plus the JSON-safe ``counter_values``
    determinism fingerprint.
    """
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=churn)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    own_dir = state_dir is None
    state_dir = state_dir or tempfile.mkdtemp(prefix="repro-obs-")
    # publish_every=1: every applied batch publishes synchronously inside
    # the writer, so the publish count is pinned to the batch count (the
    # idle-staleness publish path never fires on a quiesced service).
    serve_config = ServeConfig(publish_every=1, queue_capacity=4096)
    shard_config = ShardConfig(shards=shards, seed=seed)
    sampler = AuditSampler(rate=tap_rate, capacity=tap_capacity,
                           seed=seed + 5)
    if instrument:
        if registry is None:
            registry = MetricsRegistry()
        if tracer is None:
            tracer = Tracer(capacity=512, slow_threshold=0.005)
    else:
        registry = tracer = None

    cluster = None
    started = time.perf_counter()
    try:
        cluster = ShardedCluster(
            engine, state_dir, config=shard_config,
            serve_config=serve_config, overwrite=True,
        )
        cluster.set_answer_tap(sampler)
        if instrument:
            cluster.set_metrics(registry, tracer=tracer)
            cluster.primary.engine.set_metrics(registry)
            sampler.set_metrics(registry)

        rng = random.Random(seed + 11)
        reads = batch_reads = submitted = 0
        cursor = 0
        for _ in range(phases):
            # --- churn phase: exactly one applied batch, fully synced.
            chunk = cycle[cursor:cursor + churn]
            if not chunk:
                cursor = 0
                chunk = cycle[:churn]
            cluster.submit_many(chunk)
            cluster.sync()
            submitted += len(chunk)
            cursor = (cursor + len(chunk)) % len(cycle)
            # --- read phase: single-threaded, seeded, program order.
            for i in range(reads_per_phase):
                s, t = pairs[rng.randrange(len(pairs))]
                cluster.query(s, t)
                reads += 1
                if batch_every and (i + 1) % batch_every == 0:
                    batch = [pairs[rng.randrange(len(pairs))]
                             for _ in range(batch_size)]
                    cluster.query_many(batch)
                    reads += 1  # one cut, one stage-histogram observation
                    batch_reads += len(batch)
        elapsed = time.perf_counter() - started
        report = {
            "backend": backend,
            "shards": shards,
            "phases": phases,
            "reads": reads,
            "batch_reads": batch_reads,
            "submitted": submitted,
            "elapsed_s": round(elapsed, 4),
            "stats": cluster.stats(),
            "sampler": sampler.stats(),
            "registry": registry,
            "tracer": tracer,
            "counter_values": (
                registry.counter_values() if registry is not None else None
            ),
        }
        return report
    finally:
        if cluster is not None:
            cluster.close()
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)


def run_overhead_probe(backend="core", n=400, m=1200, shards=3,
                       batch=256, loops=20, repeats=5, seed=0):
    """Measure instrumentation overhead on the scatter-gather read path.

    One fleet, one fixed seeded pair batch; the bare and instrumented
    arms run as many *alternating* short windows on the *same* fleet
    (``set_metrics`` toggled between them, mirroring the audit bench's
    tap-overhead methodology): each bare/instrumented window pair runs
    back-to-back within milliseconds, so machine-speed drift over the
    measurement cannot masquerade as instrumentation overhead, and the
    reported ``overhead_pct`` is the **median of per-pair ratios**,
    which drops the pairs a scheduler hiccup landed on.
    ``parallel_threshold`` is pushed above the batch size: a
    single-threaded gather is the fair arena, since worker scheduling
    noise would otherwise dwarf the few hundred nanoseconds of counter
    arithmetic being measured.  Returns a JSON-safe dict with
    ``overhead_pct``.
    """
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=16)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    state_dir = tempfile.mkdtemp(prefix="repro-obs-ovh-")
    rng = random.Random(seed + 3)
    batch_pairs = [pairs[rng.randrange(len(pairs))] for _ in range(batch)]
    cluster = None
    try:
        cluster = ShardedCluster(
            engine, state_dir, shards=shards, seed=seed,
            parallel_threshold=batch + 1,
            serve_config=ServeConfig(queue_capacity=4096),
            overwrite=True,
        )
        cluster.sync()

        def window_seconds():
            t0 = time.perf_counter()
            for _ in range(loops):
                cluster.query_many(batch_pairs)
            return time.perf_counter() - t0

        registry = MetricsRegistry()
        tracer = Tracer(capacity=64, sample_every=64)
        windows = max(2, repeats * 4)
        bare_s = instrumented_s = float("inf")
        ratios = []
        for _ in range(windows):
            # Warm each code path before its timed window so neither
            # side pays first-call costs.
            cluster.set_metrics(None)
            cluster.query_many(batch_pairs)
            bare_w = window_seconds()
            cluster.set_metrics(registry, tracer=tracer)
            cluster.query_many(batch_pairs)
            instrumented_w = window_seconds()
            bare_s = min(bare_s, bare_w)
            instrumented_s = min(instrumented_s, instrumented_w)
            ratios.append(instrumented_w / bare_w)
        cluster.set_metrics(None)
        ratios.sort()
        mid = len(ratios) // 2
        if len(ratios) % 2:
            median_ratio = ratios[mid]
        else:
            median_ratio = (ratios[mid - 1] + ratios[mid]) / 2.0
        overhead_pct = (median_ratio - 1.0) * 100.0
        return {
            "batch": batch,
            "loops": loops,
            "repeats": repeats,
            "queries": batch * loops,
            "bare_s": round(bare_s, 6),
            "instrumented_s": round(instrumented_s, 6),
            "bare_us_per_query": round(bare_s / (batch * loops) * 1e6, 3),
            "instrumented_us_per_query": round(
                instrumented_s / (batch * loops) * 1e6, 3
            ),
            "overhead_pct": round(overhead_pct, 2),
        }
    finally:
        if cluster is not None:
            cluster.close()
        shutil.rmtree(state_dir, ignore_errors=True)
