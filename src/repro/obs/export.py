"""Exposition: turn a :class:`~repro.obs.registry.MetricsRegistry` into
Prometheus text format or a JSON-safe snapshot.

Exposition walks every registered instrument (evaluating callback
gauges at that moment), so it is the *cold* path by design — the hot
path only bumps counters and files histogram observations.  Metric
names follow the ``repro_<layer>_<name>`` scheme documented in
DESIGN.md §16; the exporters render labels in sorted-key order so two
runs of a seeded workload emit byte-identical text (modulo timing
values).
"""

import json


def _fmt_value(value):
    """Render a float the way Prometheus expects (ints without .0)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels, extra=None):
    """``{k="v",...}`` in sorted-key order, '' when empty.

    ``labels`` is the registry's canonical sorted tuple of pairs.
    """
    items = list(labels)
    if extra:
        items = items + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def to_prometheus_text(registry):
    """Render the registry in Prometheus text exposition format.

    Counters become ``name_total``; gauges are bare samples (callback
    gauges that fail to produce a finite number are silently skipped);
    histograms expand to cumulative ``_bucket{le=...}`` samples plus
    ``_sum`` and ``_count``, with the bucket edges taken from the
    histogram's own log-bucket grid (only occupied buckets are
    emitted — the grid is deterministic, so merged shards agree).
    """
    lines = []
    seen_help = set()
    for metric in registry.collect():
        if metric.kind == "counter":
            name = metric.name + "_total"
            if name not in seen_help:
                lines.append(f"# TYPE {name} counter")
                seen_help.add(name)
            lines.append(
                f"{name}{_fmt_labels(metric.labels)} "
                f"{_fmt_value(metric.value)}"
            )
        elif metric.kind == "gauge":
            value = metric.snapshot()
            if value is None:
                continue
            if metric.name not in seen_help:
                lines.append(f"# TYPE {metric.name} gauge")
                seen_help.add(metric.name)
            lines.append(
                f"{metric.name}{_fmt_labels(metric.labels)} "
                f"{_fmt_value(value)}"
            )
        elif metric.kind == "histogram":
            if metric.name not in seen_help:
                lines.append(f"# TYPE {metric.name} histogram")
                seen_help.add(metric.name)
            for upper, cumulative in metric.bucket_table():
                le = _fmt_value(upper)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_fmt_labels(metric.labels, [('le', le)])} "
                    f"{cumulative}"
                )
            lines.append(
                f"{metric.name}_bucket"
                f"{_fmt_labels(metric.labels, [('le', '+Inf')])} "
                f"{metric.count}"
            )
            lines.append(
                f"{metric.name}_sum{_fmt_labels(metric.labels)} "
                f"{_fmt_value(metric.total)}"
            )
            lines.append(
                f"{metric.name}_count{_fmt_labels(metric.labels)} "
                f"{metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry, tracer=None, indent=None):
    """JSON document: full registry snapshot plus optional tracer stats
    and its retained slow traces (span trees included — this is the
    "why was it slow" artifact)."""
    doc = {"metrics": registry.snapshot()}
    if tracer is not None:
        doc["tracer"] = tracer.stats()
        doc["slow_traces"] = [t.to_dict() for t in tracer.slow()]
    return json.dumps(doc, indent=indent, sort_keys=True)


def write_files(registry, directory, tracer=None, stem="telemetry"):
    """Write ``<stem>.prom`` and ``<stem>.json`` under ``directory``.

    The convenience exit used by ``--telemetry DIR`` on the loadgens.
    Returns the two paths written.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    prom_path = os.path.join(directory, stem + ".prom")
    json_path = os.path.join(directory, stem + ".json")
    with open(prom_path, "w") as fh:
        fh.write(to_prometheus_text(registry))
    with open(json_path, "w") as fh:
        fh.write(to_json(registry, tracer=tracer, indent=2))
        fh.write("\n")
    return prom_path, json_path
