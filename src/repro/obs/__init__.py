"""repro.obs — the measurement substrate of the serving stack.

One :class:`MetricsRegistry` of counters / gauges / deterministic
log-bucketed histograms shared by every layer, request-scoped
:class:`QueryTrace` span trees retained by a :class:`Tracer`
(bounded recent ring + always-keep-slow ring), stats-dict promotion
via :mod:`repro.obs.bind`, and Prometheus-text / JSON exposition via
:mod:`repro.obs.export`.  See DESIGN.md §16.
"""

from repro.obs.bind import (
    bind_auditor,
    bind_cluster_router,
    bind_engine,
    bind_sampler,
    bind_service,
    bind_shard_router,
    bind_stats,
    bind_supervisor,
)
from repro.obs.export import to_json, to_prometheus_text, write_files
from repro.obs.registry import (
    SUBBUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
    render_key,
)
from repro.obs.trace import QueryTrace, Span, Tracer

__all__ = [
    "SUBBUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "Tracer",
    "bind_auditor",
    "bind_cluster_router",
    "bind_engine",
    "bind_sampler",
    "bind_service",
    "bind_shard_router",
    "bind_stats",
    "bind_supervisor",
    "bucket_index",
    "bucket_upper",
    "render_key",
    "to_json",
    "to_prometheus_text",
    "write_files",
]
