"""MetricsRegistry: the one measurement substrate of the serving stack.

Every layer of the stack (engine -> serve -> cluster/shard -> audit ->
resilience -> replay) reports health through the same three instrument
kinds, registered in one place:

* :class:`Counter` — a monotone float, ``inc()``-only;
* :class:`Gauge` — a settable level, or a zero-storage *callback* gauge
  that reads an existing stats accessor at exposition time (the
  promotion seam for the per-subsystem ``stats()`` dicts — see
  :mod:`repro.obs.bind`);
* :class:`Histogram` — a deterministic log-bucketed distribution with
  p50/p90/p99/max summaries, mergeable across shards and replicas.

Design rules, all load-bearing:

* **No wall-clock reads inside hot paths.**  ``Histogram.observe`` takes
  a caller-supplied value (usually a duration the instrumented site
  already measured); the registry itself never calls a clock, so the
  cost of an observation is one deterministic bucket computation and two
  adds.
* **Deterministic bucketing.**  The bucket of a value is a pure function
  of its binary representation (:func:`bucket_index` uses
  ``math.frexp``), so two seeded runs that observe the same values
  produce byte-identical bucket tables — the property the ``repro-bench
  obs`` determinism check pins.
* **Merge algebra.**  ``Histogram.merge`` adds bucket tables pointwise
  and folds count/sum/min/max, so merging per-shard histograms equals
  recording the union of their observations (associative and
  commutative — property-tested in ``tests/property``).
* **GIL-approximate counters.**  Like every monitoring counter in the
  serving layer, increments are plain ``+=`` under the GIL: a lost
  update under reader concurrency shifts a count by one, never breaks
  an invariant.  The registry locks only metric *creation*.

Metric names follow the ``repro_<layer>_<name>`` scheme (DESIGN.md §16),
with label sets for per-target / per-backend / per-stage splits.
"""

import math
import re
import threading

from repro.exceptions import ObsError

#: metric-name grammar (a Prometheus-compatible subset).
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: log-bucketing resolution: sub-buckets per power of two.  Four gives a
#: ~19% relative bucket width — plenty for p50/p90/p99 attribution while
#: keeping even microsecond..minute spans under ~130 live buckets.
SUBBUCKETS = 4

#: mantissa cut points for frexp-based sub-bucketing: frexp yields
#: m in [0.5, 1); sub-bucket k holds m in [2^(-1+k/S), 2^(-1+(k+1)/S)).
_SUB_BOUNDS = tuple(2.0 ** (-1.0 + (k + 1) / SUBBUCKETS)
                    for k in range(SUBBUCKETS))


def bucket_index(value):
    """The log-bucket index of a positive value (pure, deterministic).

    Buckets are geometric with ratio ``2**(1/SUBBUCKETS)``; the index is
    computed from ``math.frexp`` (exact binary mantissa/exponent), never
    from ``log`` — float log is correctly rounded per-platform but the
    comparison ladder below is exact, so the same value always lands in
    the same bucket on every machine.

    Non-positive values collapse into the reserved ``None`` bucket (a
    duration of exactly 0.0 happens on sub-resolution clocks).
    """
    if value <= 0.0:
        return None
    m, e = math.frexp(value)
    for k, bound in enumerate(_SUB_BOUNDS):
        if m < bound:
            return e * SUBBUCKETS + k
    return e * SUBBUCKETS + SUBBUCKETS - 1


def bucket_upper(index):
    """The exclusive upper edge of bucket ``index`` (its ``le`` label)."""
    e, k = divmod(index, SUBBUCKETS)
    return 2.0 ** (e - 1.0 + (k + 1) / SUBBUCKETS)


class Counter:
    """A monotone counter; increments only."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount=1.0):
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObsError(
                f"counter {self.name} cannot decrease (inc({amount!r}))"
            )
        self.value += amount

    def snapshot(self):
        return self.value

    def merge(self, other):
        """Fold another counter's total in (cross-shard aggregation)."""
        self.value += other.value

    def __repr__(self):
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A settable level, or a callback gauge reading live state lazily.

    A callback gauge stores nothing: exposition calls ``fn()`` at
    snapshot time, so the gauge can never disagree with the accessor it
    was promoted from — that equality is the parity contract the bind
    layer is tested on.  A callback that raises or returns a non-number
    reads as ``None`` and is dropped from exposition (a dead component's
    gauge must not kill a scrape).
    """

    __slots__ = ("name", "labels", "_value", "_fn")

    kind = "gauge"

    def __init__(self, name, labels=(), fn=None):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn

    def set(self, value):
        """Set the gauge level (plain gauges only)."""
        if self._fn is not None:
            raise ObsError(
                f"gauge {self.name} is bound to a callback; it cannot be set"
            )
        self._value = float(value)

    def inc(self, amount=1.0):
        """Adjust a plain gauge by ``amount`` (may be negative)."""
        if self._fn is not None:
            raise ObsError(
                f"gauge {self.name} is bound to a callback; it cannot be set"
            )
        self._value += amount

    def snapshot(self):
        if self._fn is None:
            return self._value
        try:
            value = self._fn()
        except Exception:  # noqa: BLE001 — a torn-down component's
            return None    # callback must not kill exposition
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        value = float(value)
        return value if math.isfinite(value) else None

    def merge(self, other):
        """Gauges are levels, not totals: merge keeps the other's value
        only when this gauge never reported (callback gauges never
        merge — their truth is the live component)."""
        if self._fn is None and other._fn is None:
            self._value = other._value

    def __repr__(self):
        return f"Gauge({self.name!r}, value={self.snapshot()!r})"


class Histogram:
    """A deterministic log-bucketed distribution with quantile summaries.

    ``observe`` files a caller-supplied value (no clock reads here) into
    a sparse ``{bucket_index: count}`` table and folds count/sum/min/max.
    Quantiles are read from the bucket table: the reported pXX is the
    upper edge of the bucket holding that rank, clamped into the exact
    observed ``[min, max]`` — a <=19% overestimate by construction,
    deterministic, and stable under merge.
    """

    __slots__ = ("name", "labels", "buckets", "zero_count", "count",
                 "total", "min", "max")

    kind = "histogram"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self.buckets = {}
        self.zero_count = 0   # observations <= 0 (sub-resolution clocks)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        """File one observation (a duration in seconds, a size, ...)."""
        value = float(value)
        index = bucket_index(value)
        if index is None:
            self.zero_count += 1
        else:
            self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other):
        """Fold another histogram in; the result is exactly what one
        histogram observing both value streams would hold."""
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def copy(self):
        """An independent deep copy (merge algebra tests build on this)."""
        clone = Histogram(self.name, self.labels)
        clone.buckets = dict(self.buckets)
        clone.zero_count = self.zero_count
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    def percentile(self, q):
        """The q-th percentile (0 < q <= 100) from the bucket table."""
        if self.count == 0:
            return None
        rank = math.ceil(self.count * q / 100.0)
        seen = self.zero_count
        if rank <= seen:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank <= seen:
                upper = bucket_upper(index)
                # Clamp into the exact observed range: the true value in
                # this bucket cannot exceed the histogram's max or fall
                # below its min.
                if self.max is not None:
                    upper = min(upper, self.max)
                if self.min is not None:
                    upper = max(upper, self.min)
                return upper
        return self.max  # unreachable unless counts raced; stay sane

    def mean(self):
        return self.total / self.count if self.count else None

    def snapshot(self):
        """JSON-safe summary: count/sum/min/max plus p50/p90/p99."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def bucket_table(self):
        """``[(upper_edge, cumulative_count), ...]`` for exposition."""
        rows = []
        cumulative = self.zero_count
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            rows.append((bucket_upper(index), cumulative))
        return rows

    def __repr__(self):
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"p99={self.percentile(99)})"
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels):
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of every metric the stack exposes.

    One registry serves a whole fleet: every component registers its
    instruments here (directly on hot paths, or via the
    :mod:`repro.obs.bind` promotion helpers), and the exposition layer
    (:mod:`repro.obs.export`) renders one consistent snapshot.  Metrics
    are keyed by ``(name, sorted labels)``; asking for an existing key
    with a different kind raises — one name, one meaning.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    # ------------------------------------------------------------------
    # Registration (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name, **labels):
        """Get or create the counter ``name{labels}``."""
        return self._get_or_create("counter", name, labels)

    def gauge(self, name, fn=None, **labels):
        """Get or create the gauge ``name{labels}``.

        Pass ``fn`` to register a callback gauge; re-binding an existing
        callback gauge replaces its callback (a restarted component
        re-binds over its predecessor's).
        """
        gauge = self._get_or_create("gauge", name, labels)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name, **labels):
        """Get or create the histogram ``name{labels}``."""
        return self._get_or_create("histogram", name, labels)

    def _get_or_create(self, kind, name, labels):
        if not _NAME_RE.match(name):
            raise ObsError(
                f"invalid metric name {name!r}; names match "
                f"[a-zA-Z_][a-zA-Z0-9_]* (scheme: repro_<layer>_<name>)"
            )
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name, key[1])
                self._metrics[key] = metric
            elif metric.kind != kind:
                raise ObsError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind}"
                )
            return metric

    # ------------------------------------------------------------------
    # Introspection / exposition
    # ------------------------------------------------------------------

    def __len__(self):
        with self._lock:
            return len(self._metrics)

    def collect(self):
        """Every registered metric, sorted by (name, labels)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return [m for _key, m in sorted(metrics, key=lambda kv: kv[0])]

    def get(self, name, **labels):
        """The registered metric at ``name{labels}``, or ``None``."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def snapshot(self):
        """One JSON-safe snapshot of every metric.

        Keys are rendered ``name{label="value",...}``; callback gauges
        evaluate *now*, so the snapshot agrees with the live accessors
        it was promoted from.  Gauges whose callback fails are dropped.
        """
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.collect():
            rendered = render_key(metric.name, metric.labels)
            value = metric.snapshot()
            if metric.kind == "gauge" and value is None:
                continue
            out[metric.kind + "s"][rendered] = value
        return out

    def counter_values(self):
        """``{rendered_name: value}`` of counters plus histogram counts.

        The deterministic fingerprint surface: timings vary run to run,
        but *counts* under a seeded workload must not — this is what the
        ``repro-bench obs`` double-run check compares.
        """
        out = {}
        for metric in self.collect():
            rendered = render_key(metric.name, metric.labels)
            if metric.kind == "counter":
                out[rendered] = metric.value
            elif metric.kind == "histogram":
                out[rendered + ":count"] = metric.count
        return out

    def merge(self, other):
        """Fold another registry in (cross-shard / cross-replica roll-up).

        Counters and histograms add; plain gauges keep the freshest
        non-default value; callback gauges never travel (their truth is
        the component they read).
        """
        for metric in other.collect():
            labels = dict(metric.labels)
            mine = self._get_or_create(metric.kind, metric.name, labels)
            mine.merge(metric)
        return self

    def __repr__(self):
        return f"MetricsRegistry({len(self)} metrics)"


def render_key(name, labels):
    """Render ``name{label="value",...}`` (no braces when unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"
