"""HealthMonitor: one shared, observable health state machine per fleet.

Every fleet member (replica, shard, shadow auditor) moves through a small
state machine::

    up ──> lagging ──> up            (tail lag crossed / recovered)
    up | lagging ──> down            (applier died or was killed)
    down ──> restarting ──> up       (supervisor replaced the member)
    restarting ──> down              (the restart itself failed)
    down | restarting ──> failed     (crash-loop budget exhausted)

``up``/``lagging``/``down`` are *derived* states — :meth:`observe` folds a
member's ``healthy`` flag and tail lag into them on every supervisor tick
— while ``restarting``/``failed`` are *imposed* by the supervisor via
:meth:`set_state`.  ``failed`` is terminal: observations no longer move
the member (the supervisor gave up; only an operator-style
:meth:`set_state` back to ``up`` revives it).

Every transition appends a structured :class:`HealthEvent` to the event
log — the audit trail the chaos harness judges recovery by — and fires
the optional ``on_transition`` callbacks (the wakeup seam routers use to
re-examine a fleet the moment a member comes back).
"""

import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import ReproError

#: the full state vocabulary, in rough lifecycle order.
MEMBER_STATES = ("up", "lagging", "down", "restarting", "failed")

#: states a member can serve reads from (the router's availability test).
SERVING_STATES = frozenset({"up", "lagging"})


@dataclass(frozen=True)
class HealthEvent:
    """One recorded state transition of one fleet member.

    ``at`` is a ``time.monotonic`` timestamp (durations between events
    are meaningful; wall-clock is not recorded).  ``detail`` carries the
    human-readable cause — the fatal error's repr, the lag value, the
    supervisor's restart attempt number.
    """

    member: str
    prev: str
    state: str
    at: float
    detail: str = ""

    def as_dict(self):
        """JSON-safe form for bench results and event-log dumps."""
        return {
            "member": self.member,
            "prev": self.prev,
            "state": self.state,
            "at": self.at,
            "detail": self.detail,
        }


@dataclass
class _Member:
    state: str = "up"
    lag: int = 0
    since: float = 0.0
    transitions: int = 0
    detail: str = ""
    corruptions: int = field(default=0)


class HealthMonitor:
    """Thread-safe health registry + transition event log for one fleet.

    Parameters
    ----------
    lag_threshold:
        Tail lag (primary seq minus member applied seq, in batches) at or
        above which a healthy member is classified ``lagging`` instead of
        ``up``.
    clock:
        Injectable monotonic clock (tests pin it for deterministic
        event timestamps).
    """

    def __init__(self, lag_threshold=64, clock=time.monotonic):
        if lag_threshold < 1:
            raise ReproError(
                f"lag_threshold must be >= 1, got {lag_threshold!r}"
            )
        self.lag_threshold = lag_threshold
        self._clock = clock
        self._lock = threading.Lock()
        self._members = {}
        self._events = []
        self._listeners = []

    # ------------------------------------------------------------------
    # Registration / observation
    # ------------------------------------------------------------------

    def register(self, member, state="up"):
        """Add ``member`` to the registry (idempotent; keeps known state)."""
        if state not in MEMBER_STATES:
            raise ReproError(f"unknown member state {state!r}")
        with self._lock:
            if member not in self._members:
                self._members[member] = _Member(
                    state=state, since=self._clock()
                )

    def forget(self, member):
        """Drop ``member`` from the registry (its events are kept)."""
        with self._lock:
            self._members.pop(member, None)

    def observe(self, member, healthy, lag=0, corruptions=0, detail=""):
        """Fold one health sample into the member's derived state.

        Returns the member's state after the observation.  ``failed`` and
        ``restarting`` are sticky — observations cannot move a member the
        supervisor has claimed (a freshly restarted member that has not
        died yet must not flap to ``up`` before the supervisor finishes
        its bookkeeping; the supervisor itself sets the post-restart
        state).
        """
        if healthy:
            target = "lagging" if lag >= self.lag_threshold else "up"
        else:
            target = "down"
        with self._lock:
            entry = self._members.get(member)
            if entry is None:
                entry = self._members[member] = _Member(since=self._clock())
            entry.lag = lag
            entry.corruptions = corruptions
            if entry.state in ("failed", "restarting"):
                return entry.state
            if entry.state != target:
                self._transition(member, entry, target, detail)
            return entry.state

    def set_state(self, member, state, detail=""):
        """Impose a state (supervisor transitions: restarting, failed, up)."""
        if state not in MEMBER_STATES:
            raise ReproError(f"unknown member state {state!r}")
        with self._lock:
            entry = self._members.get(member)
            if entry is None:
                entry = self._members[member] = _Member(since=self._clock())
            if entry.state != state:
                self._transition(member, entry, state, detail)

    def _transition(self, member, entry, state, detail):
        # _lock held.
        event = HealthEvent(
            member=member,
            prev=entry.state,
            state=state,
            at=self._clock(),
            detail=detail,
        )
        entry.state = state
        entry.since = event.at
        entry.detail = detail
        entry.transitions += 1
        self._events.append(event)
        listeners = list(self._listeners)
        # Fire outside the lock?  The listeners are condition-variable
        # notifies and counters — cheap and lock-ordered (router lock is
        # never held while calling into the monitor), so firing under the
        # lock keeps the event order and the callback order identical.
        for listener in listeners:
            listener(event)

    def add_listener(self, listener):
        """``listener(event)`` fires on every transition (must not raise)."""
        with self._lock:
            self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state(self, member):
        """Current state of ``member`` (``None`` if unregistered)."""
        with self._lock:
            entry = self._members.get(member)
            return entry.state if entry is not None else None

    def states(self):
        """``{member: state}`` snapshot of the whole fleet."""
        with self._lock:
            return {m: e.state for m, e in self._members.items()}

    def lag(self, member):
        """Last observed tail lag of ``member`` (0 if unknown)."""
        with self._lock:
            entry = self._members.get(member)
            return entry.lag if entry is not None else 0

    def serving(self, member):
        """True when ``member`` may serve reads (up or merely lagging)."""
        return self.state(member) in SERVING_STATES

    @property
    def events(self):
        """A copy of the full transition log, in order."""
        with self._lock:
            return list(self._events)

    def events_for(self, member):
        """The transition log restricted to one member."""
        with self._lock:
            return [e for e in self._events if e.member == member]

    def stats(self):
        """JSON-safe summary: per-member state + transition counts."""
        with self._lock:
            return {
                "lag_threshold": self.lag_threshold,
                "members": {
                    m: {
                        "state": e.state,
                        "lag": e.lag,
                        "transitions": e.transitions,
                        "detail": e.detail,
                    }
                    for m, e in self._members.items()
                },
                "events": len(self._events),
            }

    def __repr__(self):
        states = self.states()
        return f"HealthMonitor(members={len(states)}, states={states})"
