"""Supervisor: the watchdog that turns detection into recovery.

The serving fleets already *detect* every failure the ROADMAP's failure
model names — a dead applier surfaces as ``healthy == False`` with a
``fatal`` error, tail lag is ``primary.applied_seq - member.applied_seq``,
and checksum-failed stream records show up in ``stream_corruptions`` —
but until this module recovery was a manual ``restart_replica`` /
``restart_shard`` call.  The :class:`Supervisor` closes that loop:

* every ``poll_interval`` it folds each member's health, lag and
  corruption count into a shared :class:`~repro.resilience.HealthMonitor`
  (up → lagging → down transitions, with a structured event log);
* a ``down`` member is restarted automatically, with exponential backoff
  plus seeded jitter between attempts so a crash-looping member does not
  hammer the checkpoint path;
* when the death is *corruption-classified* — the fatal error is a
  :class:`~repro.exceptions.WalCorruptionError`, mentions a corrupt
  stream, or the member counted stream corruptions — the supervisor
  first **repairs** the stream (``fleet.checkpoint(truncate_wal=True)``:
  a fresh checkpoint from the in-memory engine, the damaged log region
  truncated away) so the replacement bootstraps from clean bytes;
* after ``restart_budget`` restarts inside ``budget_window`` seconds the
  member is marked ``failed`` (terminal) instead of looping forever —
  a crash loop is an incident for an operator, not a retry target.

Each detected outage becomes an :class:`Incident` with its detection
time, restart count, whether a repair ran, and — once the replacement
reports healthy — the measured MTTR.  The chaos harness
(:mod:`repro.resilience.loadgen`) judges recovery on exactly these
records.

The supervisor watches *followers* only.  The primary is the
single-writer authority both fleets are defined against; restarting it
is a different operation (restore-from-checkpoint) with different
guarantees, and pretending a watchdog can do it safely would be worse
than refusing.
"""

import dataclasses
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ReproError, WalCorruptionError
from repro.resilience.health import HealthMonitor


@dataclass(frozen=True)
class SupervisorConfig:
    """All tunables of a :class:`Supervisor`.

    Parameters
    ----------
    poll_interval:
        Seconds between watchdog ticks.
    lag_threshold:
        Tail lag (in batches) at which a healthy member is classified
        ``lagging`` (only used when the supervisor builds its own
        :class:`HealthMonitor`).
    backoff_initial / backoff_max / backoff_factor:
        Exponential backoff between restart attempts of one member:
        the first retry waits ``backoff_initial`` seconds, each further
        retry multiplies by ``backoff_factor``, capped at
        ``backoff_max``.  A member that recovers resets its backoff.
    jitter:
        Fractional jitter on every backoff delay (``0.2`` = up to +20 %),
        drawn from a seeded RNG so runs are reproducible.
    restart_budget / budget_window:
        Crash-loop guard: more than ``restart_budget`` restart attempts
        within ``budget_window`` seconds marks the member ``failed``.
    repair_corruption:
        Whether a corruption-classified death triggers a stream repair
        (primary checkpoint + log truncation) before the restart.
    seed:
        Seed of the jitter RNG.
    """

    poll_interval: float = 0.05
    lag_threshold: int = 64
    backoff_initial: float = 0.05
    backoff_max: float = 1.0
    backoff_factor: float = 2.0
    jitter: float = 0.2
    restart_budget: int = 5
    budget_window: float = 10.0
    repair_corruption: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.poll_interval <= 0:
            raise ReproError(
                f"poll_interval must be > 0, got {self.poll_interval!r}"
            )
        if self.backoff_initial < 0 or self.backoff_max < self.backoff_initial:
            raise ReproError(
                f"need 0 <= backoff_initial <= backoff_max, got "
                f"{self.backoff_initial!r} / {self.backoff_max!r}"
            )
        if self.backoff_factor < 1.0:
            raise ReproError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.jitter < 0:
            raise ReproError(f"jitter must be >= 0, got {self.jitter!r}")
        if self.restart_budget < 1:
            raise ReproError(
                f"restart_budget must be >= 1, got {self.restart_budget!r}"
            )
        if self.budget_window <= 0:
            raise ReproError(
                f"budget_window must be > 0, got {self.budget_window!r}"
            )

    def replace(self, **changes):
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass
class Incident:
    """One detected member outage and what the supervisor did about it.

    ``mttr_s`` is ``recovered_at - detected_at`` once the replacement
    member reports healthy; both stay ``None`` for a member that
    exhausted its crash-loop budget (``failed == True``) — an unrecovered
    incident must not average into anyone's MTTR.
    """

    member: str
    detected_at: float
    cause: str = ""
    restarts: int = 0
    repaired: bool = False
    failed: bool = False
    recovered_at: float = None
    mttr_s: float = None

    def as_dict(self):
        """JSON-safe form for bench results."""
        return dataclasses.asdict(self)


@dataclass
class _Control:
    """Per-member supervisor bookkeeping (watchdog thread only)."""

    backoff: float = 0.0
    next_attempt_at: float = 0.0
    attempts: deque = field(default_factory=deque)
    incident: Incident = None


class Supervisor:
    """Self-healing watchdog over an :class:`~repro.cluster.SPCCluster`
    or a :class:`~repro.shard.ShardedCluster`.

    The fleet is duck-typed: anything with ``primary``, a member mapping
    (``replicas`` or ``shards``), the matching ``restart_replica`` /
    ``restart_shard`` method and ``checkpoint(truncate_wal=...)`` works.
    Pass a shared :class:`HealthMonitor` to fold several fleets into one
    event log, or let the supervisor build its own.

    Example
    -------
    >>> from repro.resilience import Supervisor
    >>> with Supervisor(cluster) as sup:                # doctest: +SKIP
    ...     cluster.kill_replica("replica-0")  # dies...
    ...     sup.incidents                      # ...heals: [Incident(...)]
    """

    def __init__(self, fleet, config=None, monitor=None, **overrides):
        if config is None:
            config = SupervisorConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self._fleet = fleet
        if hasattr(fleet, "restart_replica"):
            self._kind = "cluster"
            self._member_map = lambda: fleet.replicas
            self._restart_member = fleet.restart_replica
        elif hasattr(fleet, "restart_shard"):
            self._kind = "shard"
            self._member_map = lambda: fleet.shards
            self._restart_member = fleet.restart_shard
        else:
            raise ReproError(
                f"cannot supervise {type(fleet).__name__}: it has neither "
                f"restart_replica nor restart_shard"
            )
        if monitor is None:
            monitor = HealthMonitor(lag_threshold=config.lag_threshold)
        self.monitor = monitor
        self._clock = monitor._clock
        self._rng = random.Random(config.seed)
        self._ctl = {}
        self._incidents = []
        self._lock = threading.Lock()
        self._ticks = 0
        self._restarts = 0
        self._repairs = 0
        self._repair_failures = 0
        # Health transitions double as router wakeups: the moment a
        # member is swapped back in, blocked acquires re-examine the
        # fleet instead of sleeping out their wait slice.
        router = getattr(fleet, "router", None)
        if router is not None and hasattr(router, "notify_event"):
            monitor.add_listener(router.notify_event)
        for key, member in self._member_map().items():
            monitor.register(member.name, "up" if member.healthy else "down")
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._watch_loop, name="repro-supervisor", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Watchdog loop
    # ------------------------------------------------------------------

    def _watch_loop(self):
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception:  # noqa: BLE001 — the watchdog must survive
                # A tick that dies (fleet mid-teardown, say) must not kill
                # supervision; the next tick re-reads the world.
                pass
            self._stop.wait(self.config.poll_interval)

    def _tick(self):
        self._ticks += 1
        now = self._clock()
        primary_seq = self._fleet.primary.applied_seq
        for key, member in list(self._member_map().items()):
            name = member.name
            self.monitor.register(name)
            ctl = self._ctl.get(name)
            if ctl is None:
                ctl = self._ctl[name] = _Control(
                    backoff=self.config.backoff_initial
                )
            state = self.monitor.state(name)
            if state == "failed":
                continue
            healthy = member.healthy
            lag = max(0, primary_seq - member.applied_seq)
            corruptions = member.stream_corruptions
            if healthy:
                if state == "restarting":
                    self.monitor.set_state(name, "up", detail="restarted")
                    self._close_incident(ctl, now)
                self.monitor.observe(
                    name, True, lag=lag, corruptions=corruptions
                )
                if ctl.incident is None:
                    ctl.backoff = self.config.backoff_initial
                continue
            # The member is dead.
            cause = member.fatal
            detail = repr(cause) if cause is not None else "killed"
            if state == "restarting":
                # Our replacement died too — back to down, the backoff
                # already scheduled decides when we try again.
                self.monitor.set_state(
                    name, "down", detail=f"restarted member died: {detail}"
                )
            else:
                self.monitor.observe(
                    name, False, lag=lag, corruptions=corruptions,
                    detail=detail,
                )
            if ctl.incident is None:
                ctl.incident = Incident(
                    member=name, detected_at=now, cause=detail
                )
                ctl.next_attempt_at = now  # first restart: immediately
            if now < ctl.next_attempt_at:
                continue
            self._maybe_restart(key, member, name, ctl, now)

    def _maybe_restart(self, key, member, name, ctl, now):
        window_start = now - self.config.budget_window
        while ctl.attempts and ctl.attempts[0] < window_start:
            ctl.attempts.popleft()
        if len(ctl.attempts) >= self.config.restart_budget:
            self.monitor.set_state(
                name, "failed",
                detail=(
                    f"crash-loop budget exhausted: {len(ctl.attempts)} "
                    f"restarts in the last {self.config.budget_window} s"
                ),
            )
            incident = ctl.incident
            incident.failed = True
            with self._lock:
                self._incidents.append(incident)
            ctl.incident = None
            return
        ctl.attempts.append(now)
        attempt = len(ctl.attempts)
        self.monitor.set_state(
            name, "restarting", detail=f"attempt {attempt}"
        )
        corrupt = (
            self._is_corruption(member.fatal)
            or member.stream_corruptions > 0
        )
        if corrupt and self.config.repair_corruption:
            self._repair(ctl)
        try:
            self._restart_member(key)
        except Exception as exc:  # noqa: BLE001 — classified below
            # A restart that dies bootstrapping from a corrupt checkpoint
            # is itself a corruption signal: repair, then retry on the
            # scheduled backoff.
            if self._is_corruption(exc) and self.config.repair_corruption:
                self._repair(ctl)
            self.monitor.set_state(
                name, "down", detail=f"restart failed: {exc!r}"
            )
        with self._lock:
            self._restarts += 1
        ctl.incident.restarts += 1
        delay = ctl.backoff * (1.0 + self.config.jitter * self._rng.random())
        ctl.next_attempt_at = now + delay
        ctl.backoff = min(
            ctl.backoff * self.config.backoff_factor, self.config.backoff_max
        )

    def _repair(self, ctl):
        """Fresh primary checkpoint + truncated log: the corrupt region
        is cut out of the stream so the next bootstrap reads clean bytes.
        """
        try:
            self._fleet.checkpoint(truncate_wal=True)
        except Exception:  # noqa: BLE001 — e.g. an armed ENOSPC fault
            with self._lock:
                self._repair_failures += 1
        else:
            with self._lock:
                self._repairs += 1
            if ctl.incident is not None:
                ctl.incident.repaired = True

    def _close_incident(self, ctl, now):
        incident = ctl.incident
        if incident is None:
            return
        incident.recovered_at = now
        incident.mttr_s = now - incident.detected_at
        with self._lock:
            self._incidents.append(incident)
        ctl.incident = None
        ctl.backoff = self.config.backoff_initial

    @staticmethod
    def _is_corruption(exc):
        """Is this death corruption-classified (vs a plain crash)?

        Typed :class:`WalCorruptionError` is the designed signal; the
        string fallback catches causes that arrive re-wrapped (a replica
        fatal quoting the corrupt record, a checkpoint whose JSON no
        longer parses).
        """
        if exc is None:
            return False
        if isinstance(exc, WalCorruptionError):
            return True
        cause = getattr(exc, "__cause__", None)
        if isinstance(cause, WalCorruptionError):
            return True
        return isinstance(exc, ReproError) and "corrupt" in str(exc).lower()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def kind(self):
        """``"cluster"`` or ``"shard"`` — which fleet shape is watched."""
        return self._kind

    @property
    def incidents(self):
        """Closed :class:`Incident` records, in detection order.

        An outage still being healed is not listed yet — its record is
        appended when the member recovers or is marked ``failed``.
        """
        with self._lock:
            return list(self._incidents)

    @property
    def events(self):
        """The shared monitor's full transition log."""
        return self.monitor.events

    def stats(self):
        """JSON-safe counters + the monitor's per-member summary."""
        with self._lock:
            incidents = list(self._incidents)
            restarts = self._restarts
            repairs = self._repairs
            repair_failures = self._repair_failures
        recovered = [i.mttr_s for i in incidents if i.mttr_s is not None]
        return {
            "kind": self._kind,
            "ticks": self._ticks,
            "restarts": restarts,
            "repairs": repairs,
            "repair_failures": repair_failures,
            "incidents": len(incidents),
            "failed_members": sum(1 for i in incidents if i.failed),
            "mttr_max_s": max(recovered) if recovered else None,
            "monitor": self.monitor.stats(),
        }

    def set_metrics(self, registry):
        """Promote the supervisor's counters into a shared registry as
        callback gauges (``repro_resilience_*`` — restarts, repairs,
        incidents, failed members, per-member monitor states).

        ``mttr_max_s`` is registered explicitly: it reads ``None`` until
        the first incident recovers, so leaf discovery on a fresh
        supervisor would otherwise miss it (the gauge is simply dropped
        from exposition while it has nothing to report).
        """
        if registry is None:
            return
        from repro.obs.bind import bind_supervisor

        bind_supervisor(registry, self)
        registry.gauge(
            "repro_resilience_mttr_max_s",
            fn=lambda: self.stats()["mttr_max_s"],
        )

    def close(self, timeout=10.0):
        """Stop the watchdog thread.  Idempotent."""
        self._stop.set()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise ReproError(
                "supervisor watchdog thread failed to stop within "
                f"{timeout} s"
            )

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            f"Supervisor(kind={self._kind!r}, "
            f"members={sorted(self.monitor.states())}, "
            f"restarts={self._restarts})"
        )
