"""repro.resilience: self-healing supervision for serving fleets.

The serving stack (``repro.serve`` → ``repro.cluster`` / ``repro.shard``
→ ``repro.audit``) detects failures — dead appliers, replication gaps,
checksum-failed records — but until this package every recovery was an
operator action.  ``repro.resilience`` closes the loop:

* :class:`HealthMonitor` — one shared state machine per fleet member
  (up → lagging → down → restarting → failed) with a structured
  transition event log;
* :class:`Supervisor` — a watchdog thread that folds member health and
  tail lag into the monitor, auto-restarts dead followers with
  exponential backoff + jitter, repairs a corrupted stream (fresh
  checkpoint + truncated log) when members die on typed
  :class:`~repro.exceptions.WalCorruptionError` signals, and gives up —
  marking the member ``failed`` — after a crash-loop budget;
* :class:`CircuitBreaker` — the per-target failure gate the routers use
  to convert repeated lease failures into fast failover;
* :mod:`~repro.resilience.chaos` — torn-write / bit-flip / ENOSPC disk
  fault injectors around the WAL, label journal and checkpoint files;
* :mod:`~repro.resilience.loadgen` — the kill + corrupt + crash-loop
  chaos harness behind ``repro-bench chaos``, judged strictly: every
  injected corruption detected as a typed error (never served), zero
  shadow-audit divergences, per-phase MTTR recorded.

Example
-------
>>> from repro.cluster import SPCCluster
>>> from repro.resilience import Supervisor
>>> cluster = SPCCluster(engine, state_dir)                # doctest: +SKIP
>>> with Supervisor(cluster) as sup:                       # doctest: +SKIP
...     cluster.kill_replica("replica-0")   # injected fault...
...     ...                                 # ...self-heals under load
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import (
    DiskFullFault,
    corrupt_checkpoint,
    flip_bit_in_record,
    torn_write,
)
from repro.resilience.health import (
    MEMBER_STATES,
    SERVING_STATES,
    HealthEvent,
    HealthMonitor,
)
from repro.resilience.supervisor import (
    Incident,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "MEMBER_STATES",
    "SERVING_STATES",
    "CircuitBreaker",
    "DiskFullFault",
    "HealthEvent",
    "HealthMonitor",
    "Incident",
    "Supervisor",
    "SupervisorConfig",
    "corrupt_checkpoint",
    "flip_bit_in_record",
    "torn_write",
    "run_chaos_loadgen",
]


def __getattr__(name):
    # Lazy (PEP 562): the chaos harness imports the cluster and shard
    # fleets, but those fleets' routers import this package for
    # CircuitBreaker — an eager import here would be circular.
    if name == "run_chaos_loadgen":
        from repro.resilience.loadgen import run_chaos_loadgen

        return run_chaos_loadgen
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
