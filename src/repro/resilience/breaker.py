"""CircuitBreaker: stop hammering a target that keeps failing leases.

The classic three-state breaker, sized for the routers' per-target
accounting:

* **closed** — requests flow; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker open (any success
  resets the count).
* **open** — requests are rejected instantly (:meth:`allow` is False),
  so a router stops burning its wait budget probing a member the
  supervisor is still healing.  After ``cooldown`` seconds the next
  :meth:`allow` admits exactly one probe and moves to half-open.
* **half-open** — one probe is in flight; its success closes the
  breaker, its failure re-opens it (and restarts the cooldown).  Other
  requests keep being rejected meanwhile.

The breaker is advisory: routers consult :meth:`allow` when *selecting*
targets, and refusal semantics stay theirs — an open breaker never
weakens correctness, it only converts slow repeated failure into fast
failover.  A supervisor restart can short-circuit the cooldown via
:meth:`reset`.
"""

import threading
import time

from repro.exceptions import ReproError


class CircuitBreaker:
    """Per-target failure gate with a half-open recovery probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip a closed breaker open.
    cooldown:
        Seconds an open breaker rejects before admitting one probe.
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(self, failure_threshold=3, cooldown=0.25,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if cooldown < 0:
            raise ReproError(f"cooldown must be >= 0, got {cooldown!r}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._trips = 0
        self._listener = None

    def set_listener(self, listener):
        """Install (or clear, with ``None``) a state-transition hook.

        ``listener(old_state, new_state)`` fires after every transition
        (closed → open, open → half_open, half_open → open/closed, a
        reset back to closed), outside the breaker's lock.  The
        observability layer counts transitions through this seam; like
        every monitoring hook it must be cheap and must never raise.
        """
        self._listener = listener

    def _notify(self, old, new):
        listener = self._listener
        if listener is not None and old != new:
            listener(old, new)

    @property
    def state(self):
        """``"closed"``, ``"open"``, or ``"half_open"`` (may advance
        open → half_open as a side effect of looking, so the reported
        state matches what :meth:`allow` would act on)."""
        with self._lock:
            return self._state

    @property
    def trips(self):
        """How many times the breaker transitioned closed/half-open → open."""
        with self._lock:
            return self._trips

    def allow(self):
        """May a request be sent to this target right now?

        Closed: always.  Open: only once the cooldown elapsed — that
        call is the half-open probe, and until it reports via
        :meth:`record_success` / :meth:`record_failure` every other call
        is rejected.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = "half_open"
                    probed = True
                else:
                    return False
            else:
                return False  # half_open: a probe is already in flight
        if probed:
            self._notify("open", "half_open")
        return True  # this caller carries the probe

    def record_success(self):
        """A request to this target succeeded — close (and reset) it."""
        with self._lock:
            old = self._state
            self._state = "closed"
            self._failures = 0
        self._notify(old, "closed")

    def record_failure(self):
        """A request to this target failed; may trip the breaker open."""
        with self._lock:
            old = self._state
            now = self._clock()
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = now
                self._trips += 1
            else:
                self._failures += 1
                if self._state == "closed" and (
                    self._failures >= self.failure_threshold
                ):
                    self._state = "open"
                    self._opened_at = now
                    self._trips += 1
            new = self._state
        self._notify(old, new)

    def reset(self):
        """Force-close (a supervisor just replaced the target)."""
        with self._lock:
            old = self._state
            self._state = "closed"
            self._failures = 0
        self._notify(old, "closed")

    def stats(self):
        """JSON-safe counters (monitoring only)."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self._trips,
            }

    def __repr__(self):
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, cooldown={self.cooldown})"
        )
