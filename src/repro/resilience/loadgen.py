"""Chaos harness: a serving fleet under disk faults, judged strictly.

Drives concurrent routed reads and a cyclic update stream against a
:class:`~repro.cluster.SPCCluster` or :class:`~repro.shard.ShardedCluster`
wrapped in a :class:`~repro.resilience.Supervisor`, then walks a
sequential fault schedule through the whole failure model (DESIGN.md
§14):

1. **kill** — hard-stop one follower mid-stream;
2. **flip** — flip a bit inside an interior WAL/journal record, then
   kill a member so its replacement must re-read the poisoned region;
3. **ckpt** — flip a bit inside the checkpoint document, then kill a
   member so its restart must bootstrap from it;
4. **torn** — append an unterminated fragment to the live log; the
   running writer's next ``O_APPEND`` record welds onto it, poisoning
   the stream for *every* tailing member at once;
5. **enospc** — arm an injected ``OSError(ENOSPC)`` at the checkpoint
   seam and demand a typed, fail-stop refusal (then a clean retry);
6. **crashloop** (cluster fleet only) — kill the same member every time
   the supervisor brings it back, until the crash-loop budget marks it
   ``failed`` (a permanently-refusing shard would take the whole sharded
   read path with it, so the sharded fleet skips this phase by design).

The judgment is strict and explicit, not statistical:

* **every injected corruption must be detected as a typed error** —
  the harness itself re-scans the damaged file and demands
  :class:`~repro.exceptions.WalCorruptionError` (or the checkpoint's
  typed refusal) *before* relying on the fleet to trip over it;
* **the fleet must self-heal with no manual restart ops** — every
  phase's recovery is the supervisor's work alone, and its wall-clock
  MTTR is recorded per phase;
* **zero shadow-audit divergences** — an :class:`~repro.audit.AuditSampler`
  taps the router's merged answers throughout, and the
  :class:`~repro.audit.ShadowAuditor` replay must agree with every one,
  faults and repairs included.

Wired into the benchmark CLI as ``repro-bench chaos``.
"""

import os
import random
import shutil
import tempfile
import threading
import time

from repro.audit.comparator import DivergenceReport
from repro.audit.sampler import AuditSampler
from repro.audit.shadow import ShadowAuditor
from repro.cluster.cluster import ClusterConfig, SPCCluster
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import (
    AuditDivergenceError,
    ClusterError,
    ReproError,
    ServeError,
    ShardError,
    WalCorruptionError,
)
from repro.resilience.chaos import (
    DiskFullFault,
    corrupt_checkpoint,
    flip_bit_in_record,
    torn_write,
)
from repro.resilience.supervisor import Supervisor
from repro.serve.loadgen import _percentile, make_workload
from repro.serve.persist import load_checkpoint
from repro.serve.service import (
    JOURNAL_FILENAME,
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    ServeConfig,
)
from repro.serve.wal import WalTailer
from repro.shard.shardcluster import ShardConfig, ShardedCluster

#: refusal types the read path may raise by design (counted, not failed).
_REFUSALS = (ClusterError, ShardError)


def _scan_stream(path):
    """Integrity-scan a WAL/journal file; returns the typed corruption
    (or ``None`` when the file is clean).

    Uses a throwaway :class:`WalTailer` with an impossibly high
    ``after_seq`` so every record is CRC-checked and parse-checked but
    none is decoded — a pure detection pass, codec-agnostic (it works on
    the label journal as well as the WAL).
    """
    tailer = WalTailer(path, after_seq=1 << 62, expect_backend=None)
    tailer.poll()
    return tailer.last_corruption


def _await(predicate, timeout, interval=0.01):
    """Poll ``predicate`` until true or ``timeout``; returns its last value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _reader_loop(fleet_obj, pairs, stop, deadline, seed, record):
    """Routed point + batch reads until the run ends.

    Refusals (:class:`ClusterError` / :class:`ShardError`) are the
    *designed* response to a degraded fleet — counted and retried, never
    a reader failure.  Anything else crashing the reader fails the run.
    """
    rng = random.Random(seed)
    latencies = []
    problems = []
    reads = 0
    refusals = 0
    degraded_reads = 0
    try:
        while not stop.is_set() and time.time() < deadline:
            s, t = pairs[rng.randrange(len(pairs))]
            start = time.perf_counter()
            try:
                # cluster routers tag (answer, seq, target); shard routers
                # tag (answer, seq) — the merged answer has no one target.
                tagged = fleet_obj.query_tagged(s, t)
                target = tagged[2] if len(tagged) > 2 else ""
            except _REFUSALS:
                refusals += 1
                time.sleep(0.002)  # don't hot-spin against a down fleet
                continue
            latencies.append(time.perf_counter() - start)
            reads += 1
            if isinstance(target, str) and target.endswith("+degraded"):
                degraded_reads += 1
            if reads % 64 == 0:
                batch = [pairs[rng.randrange(len(pairs))] for _ in range(8)]
                try:
                    fleet_obj.query_many(batch)
                    reads += len(batch)
                except _REFUSALS:
                    refusals += 1
    except Exception as exc:  # noqa: BLE001 — a dead reader fails the run
        problems.append(f"reader thread crashed: {exc!r}")
    record["reads"] = reads
    record["refusals"] = refusals
    record["degraded_reads"] = degraded_reads
    record["latencies"] = latencies
    record["problems"] = problems


def _submitter_loop(fleet_obj, cycle, stop, deadline, batch_size, pause,
                    record):
    """Cyclic update stream — also the torn-write phase's glue trigger:
    the weld only becomes a complete (and corrupt) line once the writer
    appends the *next* record after the fragment."""
    submitted = 0
    i = 0
    record["problems"] = problems = []
    try:
        while cycle and not stop.is_set() and time.time() < deadline:
            chunk = cycle[i:i + batch_size]
            if not chunk:
                i = 0
                continue
            fleet_obj.submit_many(chunk)
            submitted += len(chunk)
            i = (i + len(chunk)) % len(cycle)
            if pause:
                time.sleep(pause)
    except Exception as exc:  # noqa: BLE001 — surfaced as a run failure
        problems.append(f"submitter thread crashed: {exc!r}")
    record["submitted"] = submitted


class _Fleet:
    """Duck-typing shim the phase schedule drives (cluster or shard)."""

    def __init__(self, fleet_obj, kind, state_dir):
        self.obj = fleet_obj
        self.kind = kind
        self.stream_path = os.path.join(
            state_dir,
            WAL_FILENAME if kind == "cluster" else JOURNAL_FILENAME,
        )
        self.snapshot_path = os.path.join(state_dir, SNAPSHOT_FILENAME)

    def members(self):
        if self.kind == "cluster":
            return dict(self.obj.replicas)
        return dict(self.obj.shards)

    def kill(self, key):
        if self.kind == "cluster":
            self.obj.kill_replica(key)
        else:
            self.obj.kill_shard(key)

    def victims(self):
        """Member keys in kill order (rotated across phases)."""
        return sorted(self.members())

    def healthy(self, exclude=()):
        return all(
            m.healthy
            for m in self.members().values()
            if m.name not in exclude
        )

    def caught_up(self, target_seq, exclude=()):
        return all(
            m.healthy and m.applied_seq >= target_seq
            for m in self.members().values()
            if m.name not in exclude
        )

    def serves(self, pair):
        try:
            self.obj.query_tagged(*pair)
            return True
        except _REFUSALS:
            return False


def run_chaos_loadgen(backend="core", fleet="cluster", replicas=2, shards=4,
                      readers=2, duration=60.0, n=180, m=540, churn=30,
                      batch_size=4, pause=0.002, seed=0,
                      sample_rate=0.25, reservoir=512, history=2048,
                      stall_budget=2, supervisor_poll=0.02,
                      restart_budget=8, budget_window=6.0,
                      heal_timeout=12.0, mttr_bound=None,
                      degraded="refuse", degraded_max_lag=64,
                      ring_size=64, wait_timeout=0.5, drain_timeout=30.0,
                      state_dir=None, strict=True):
    """Run the disk-fault chaos schedule against one fleet; returns a
    report dict.

    ``duration`` is a hard cap, not a target — the schedule is
    event-driven (each phase waits for the previous heal), so the run
    ends when the last phase settles.  ``heal_timeout`` bounds each
    phase's recovery wait; ``mttr_bound``, when set, additionally fails
    (strict mode) any phase whose measured MTTR exceeds it.  ``degraded``
    forwards to the routers (``"stale"`` lets reads degrade to tagged
    bounded-staleness answers instead of refusing — still audited).
    ``ring_size`` deepens each shard's published-view ring (shard fleets
    only): a degraded cut can only reach back as far as every ring still
    holds a view, so a degraded-mode run wants ``ring_size`` and
    ``degraded_max_lag`` sized to cover a restart window's worth of
    batches.  See the module docstring for the full contract.
    """
    if fleet not in ("cluster", "shard"):
        raise ReproError(
            f"fleet must be 'cluster' or 'shard', got {fleet!r}"
        )
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=churn)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    own_dir = state_dir is None
    state_dir = state_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    serve_config = ServeConfig(queue_capacity=4096)
    fleet_obj = None
    auditor = None
    supervisor = None
    try:
        if fleet == "cluster":
            fleet_obj = SPCCluster(
                engine, state_dir,
                config=ClusterConfig(
                    replicas=replicas,
                    wait_timeout=wait_timeout,
                    degraded=degraded,
                    degraded_max_lag=degraded_max_lag,
                    stall_budget=stall_budget,
                ),
                serve_config=serve_config, overwrite=True,
            )
        else:
            fleet_obj = ShardedCluster(
                engine, state_dir,
                config=ShardConfig(
                    shards=shards,
                    wait_timeout=wait_timeout,
                    degraded=degraded,
                    degraded_max_lag=degraded_max_lag,
                    ring_size=ring_size,
                    stall_budget=stall_budget,
                ),
                serve_config=serve_config, overwrite=True,
            )
        sampler = AuditSampler(
            rate=sample_rate, capacity=reservoir, seed=seed + 5
        )
        fleet_obj.router.set_answer_tap(sampler)
        # The auditor outlives the poisoned-stream window on a raised
        # stall budget: it keeps re-bootstrapping until the supervisor's
        # repair rewrites the stream, then catches up and verifies the
        # backlog.
        auditor = ShadowAuditor(
            sampler, state_dir,
            report=DivergenceReport(),
            history=history,
            stall_budget=1 << 20,
        )
        supervisor = Supervisor(
            fleet_obj,
            poll_interval=supervisor_poll,
            backoff_initial=0.02,
            backoff_max=0.25,
            restart_budget=restart_budget,
            budget_window=budget_window,
            seed=seed + 11,
        )
    except BaseException:
        for closer in (supervisor, auditor, fleet_obj):
            if closer is not None:
                try:
                    closer.close()
                except (ReproError, OSError):
                    pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise

    shim = _Fleet(fleet_obj, fleet, state_dir)
    run_started = time.time()
    hard_deadline = run_started + duration
    stop = threading.Event()
    reader_records = [{} for _ in range(readers)]
    submit_record = {}
    threads = [
        threading.Thread(
            target=_reader_loop,
            args=(fleet_obj, pairs, stop, hard_deadline, seed + 30 + i,
                  reader_records[i]),
            name=f"chaos-reader-{i}",
        )
        for i in range(readers)
    ]
    threads.append(threading.Thread(
        target=_submitter_loop,
        args=(fleet_obj, cycle, stop, hard_deadline, batch_size, pause,
              submit_record),
        name="chaos-submitter",
    ))

    phases = []
    problems = []
    failed_members = set()
    probe = pairs[0]

    def run_phase(name, inject, healed, detect_note):
        """One schedule step: inject, verify detection, time the heal."""
        before = supervisor.stats()
        injected_at = time.monotonic()
        try:
            injection = inject()
            detected, detection = detect_note(injection)
        except Exception as exc:  # noqa: BLE001 — a failed injection fails the run
            phases.append({
                "phase": name, "injected": None, "detected": False,
                "detection": f"injection crashed: {exc!r}",
                "healed": False, "mttr_s": None,
                "restarts": 0, "repairs": 0,
            })
            problems.append(f"phase {name!r}: injection crashed: {exc!r}")
            return
        ok = _await(healed, heal_timeout)
        mttr = time.monotonic() - injected_at if ok else None
        after = supervisor.stats()
        phases.append({
            "phase": name,
            "injected": injection,
            "detected": detected,
            "detection": detection,
            "healed": ok,
            "mttr_s": round(mttr, 4) if mttr is not None else None,
            "restarts": after["restarts"] - before["restarts"],
            "repairs": after["repairs"] - before["repairs"],
        })
        if not detected:
            problems.append(
                f"phase {name!r}: injected fault was NOT detected as a "
                f"typed error ({detection})"
            )
        if not ok:
            problems.append(
                f"phase {name!r}: fleet did not self-heal within "
                f"{heal_timeout} s"
            )
        elif mttr_bound is not None and mttr > mttr_bound:
            problems.append(
                f"phase {name!r}: MTTR {mttr:.3f} s exceeds the bound "
                f"{mttr_bound} s"
            )
        time.sleep(0.05)  # settle before the next injection

    def catch_up_pred():
        target = fleet_obj.primary.applied_seq
        return lambda: (
            shim.caught_up(target, exclude=failed_members)
            and shim.serves(probe)
        )

    try:
        for t in threads:
            t.start()
        victims = shim.victims()
        members_by_key = shim.members()

        # Warm up: the stream needs interior records to corrupt.
        fleet_obj.sync(timeout=30.0)
        _await(lambda: os.path.getsize(shim.stream_path) > 0, 5.0)

        # -- phase 1: crash ------------------------------------------------
        def inject_kill():
            key = victims[0]
            shim.kill(key)
            return {"member": members_by_key[key].name}

        run_phase(
            "kill", inject_kill, catch_up_pred(),
            lambda _inj: (True, "hard stop; supervisor event log is the "
                                "detection record"),
        )

        # -- phase 2: acknowledged-then-corrupted record -------------------
        def inject_flip():
            info = flip_bit_in_record(shim.stream_path, seed=seed + 17)
            # Scan *before* killing anyone: once the supervisor's repair
            # rewrites the stream, the evidence is gone.
            info["corruption"] = _scan_stream(shim.stream_path)
            # The live members are already past the poisoned offset; kill
            # one so its replacement must re-read the damaged region.
            key = victims[1 % len(victims)]
            shim.kill(key)
            info["member"] = members_by_key[key].name
            return info

        def detect_flip(inj):
            corruption = inj.pop("corruption")
            if isinstance(corruption, WalCorruptionError):
                return True, f"typed on scan: {str(corruption)[:120]}"
            return False, f"scan returned {corruption!r}"

        run_phase("flip", inject_flip, catch_up_pred(), detect_flip)

        # -- phase 3: corrupted checkpoint ---------------------------------
        def inject_ckpt():
            info = corrupt_checkpoint(shim.snapshot_path, seed=seed + 23)
            try:
                load_checkpoint(shim.snapshot_path)
                info["refusal"] = None
            except (WalCorruptionError, ServeError) as exc:
                info["refusal"] = exc
            key = victims[0]
            shim.kill(key)
            info["member"] = members_by_key[key].name
            return info

        def detect_ckpt(inj):
            refusal = inj.pop("refusal")
            if isinstance(refusal, WalCorruptionError):
                return True, f"typed checksum refusal: {str(refusal)[:120]}"
            if isinstance(refusal, ServeError):
                return True, f"typed parse refusal: {str(refusal)[:120]}"
            return False, "corrupted checkpoint still loads cleanly"

        run_phase("ckpt", inject_ckpt, catch_up_pred(), detect_ckpt)

        # -- phase 4: torn write glued by a live writer --------------------
        def inject_torn():
            return torn_write(shim.stream_path)

        def detect_torn(_inj):
            # The fragment alone is a benign torn tail; the submitter's
            # next append welds it into a complete, corrupt line.  The
            # supervisor's repair (gated on typed-corruption
            # classification) may rewrite the stream before our scan
            # lands, so a repair counts as detection proof too.
            repairs_before = supervisor.stats()["repairs"]
            holder = {}

            def welded():
                holder["c"] = _scan_stream(shim.stream_path)
                if holder["c"] is not None:
                    return True
                return supervisor.stats()["repairs"] > repairs_before

            if not _await(welded, heal_timeout):
                return False, "weld never detected"
            if isinstance(holder["c"], WalCorruptionError):
                return True, f"typed on weld: {str(holder['c'])[:120]}"
            if holder["c"] is None:
                return True, ("supervisor classified the weld as typed "
                              "corruption and repaired the stream")
            return False, f"untyped corruption on weld: {holder['c']!r}"

        run_phase("torn", inject_torn, catch_up_pred(), detect_torn)

        # -- phase 5: disk full at the checkpoint seam ---------------------
        fault = DiskFullFault(ops=("checkpoint",))

        def inject_enospc():
            fleet_obj.primary.set_disk_fault(fault)
            fault.arm()
            try:
                fleet_obj.checkpoint(timeout=30.0)
            except ServeError as exc:
                return {"raised": fault.raised, "error": str(exc)[:160]}
            finally:
                fault.disarm()
            return {"raised": fault.raised, "error": None}

        def detect_enospc(inj):
            if inj["error"] is None or inj["raised"] < 1:
                return False, "checkpoint succeeded despite the armed fault"
            if "No space left" in inj["error"] or "ENOSPC" in inj["error"] \
                    or "disk-full" in inj["error"]:
                return True, f"typed fail-stop: {inj['error'][:120]}"
            return False, f"wrong error shape: {inj['error'][:120]}"

        def enospc_healed():
            # The disk "has space again": a clean retry must land, and
            # the writer must have survived the fail-stop.
            try:
                fleet_obj.checkpoint(timeout=30.0)
            except ServeError:
                return False
            fleet_obj.primary.set_disk_fault(None)
            return shim.serves(probe)

        run_phase("enospc", inject_enospc, enospc_healed, detect_enospc)

        # -- phase 6: crash loop → budget → failed (cluster only) ----------
        if fleet == "cluster":
            victim_key = victims[-1]
            victim_name = members_by_key[victim_key].name

            def inject_crashloop():
                # Phase staging, not a repair: compact the stream so a
                # restart bootstraps in milliseconds — the budget counts
                # restarts per *window*, so the crash loop must spin
                # faster than ever-longer WAL replays would allow.
                fleet_obj.checkpoint(truncate_wal=True, timeout=30.0)
                return {"member": victim_name, "budget": restart_budget}

            kills = {"n": 0}

            def crashloop_contained():
                state = supervisor.monitor.state(victim_name)
                if state == "failed":
                    failed_members.add(victim_name)
                    return (
                        shim.healthy(exclude=failed_members)
                        and shim.serves(probe)
                    )
                member = shim.members().get(victim_key)
                if member is not None and member.healthy:
                    shim.kill(victim_key)
                    kills["n"] += 1
                return False

            run_phase(
                "crashloop", inject_crashloop, crashloop_contained,
                lambda _inj: (True, "budget enforcement is the detection"),
            )
            if phases[-1]["healed"]:
                phases[-1]["injected"]["kills"] = kills["n"]
                crash_incidents = [
                    i for i in supervisor.incidents
                    if i.member == victim_name and i.failed
                ]
                if not crash_incidents:
                    problems.append(
                        "crashloop: no failed incident was recorded for "
                        "the budget-exhausted member"
                    )

        stop.set()
        for t in threads:
            t.join()
        run_ended = time.time()

        # Final settlement: whatever the last phase left lagging must
        # converge, and the auditor must verify its whole backlog.
        fleet_obj.primary.flush(timeout=30.0)
        settle_target = fleet_obj.primary.applied_seq
        if not _await(
            lambda: shim.caught_up(settle_target, exclude=failed_members),
            heal_timeout,
        ):
            problems.append(
                "fleet did not converge to the primary's seq after the "
                "last phase"
            )
        if not auditor.drain(timeout=drain_timeout):
            problems.append(
                f"auditor failed to drain within {drain_timeout} s "
                f"(pending {auditor.stats()['pending']})"
            )
        elapsed = run_ended - run_started
        sampler_stats = sampler.stats()
        auditor_stats = auditor.stats()
        router_stats = fleet_obj.router.stats()
        supervisor_stats = supervisor.stats()
        incidents = [i.as_dict() for i in supervisor.incidents]
        events = [e.as_dict() for e in supervisor.events]
        try:
            auditor.close()
        except ServeError as exc:
            problems.append(f"auditor died: {exc}")
        supervisor.close()
    except BaseException:
        stop.set()
        for closer in (supervisor, auditor):
            try:
                closer.close()
            except (ReproError, OSError):
                pass
        try:
            fleet_obj.close()
        except (ReproError, OSError):
            pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise
    try:
        fleet_obj.close()
    except _REFUSALS as exc:
        # The crash-loop victim died by design; its shutdown complaint is
        # expected.  Anything else is a real shutdown failure.
        if not failed_members:
            problems.append(f"shutdown failure: {exc}")
    if own_dir:
        shutil.rmtree(state_dir, ignore_errors=True)

    for rec in reader_records:
        problems.extend(rec.get("problems", []))
    problems.extend(submit_record.get("problems", []))

    report = auditor.report
    healed_mttrs = [p["mttr_s"] for p in phases if p["mttr_s"] is not None]
    if strict:
        if auditor_stats["audited"] == 0:
            problems.append(
                "auditor audited zero routed answers — the run proves "
                "nothing (raise duration, sample_rate or reservoir)"
            )
        if report.total:
            problems.append(
                f"shadow audit diverged {report.total} time(s) under "
                f"chaos: {report.divergences[0].describe()}"
            )

    latencies = sorted(
        lat for rec in reader_records for lat in rec.get("latencies", [])
    )
    reads = sum(rec.get("reads", 0) for rec in reader_records)
    refusals = sum(rec.get("refusals", 0) for rec in reader_records)
    result = {
        "backend": backend,
        "fleet": fleet,
        "members": replicas if fleet == "cluster" else shards,
        "readers": readers,
        "duration_s": round(elapsed, 3),
        "graph": {"n": n, "m": m},
        "reads": reads,
        "read_qps": round(reads / elapsed) if elapsed else 0,
        "read_latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 4),
            "p99": round(_percentile(latencies, 99) * 1e3, 4),
        },
        "updates_submitted": submit_record.get("submitted", 0),
        "refusals": refusals,
        "degraded_reads": sum(
            rec.get("degraded_reads", 0) for rec in reader_records
        ),
        "degraded_mode": degraded,
        "phases": phases,
        "phases_detected": sum(1 for p in phases if p["detected"]),
        "phases_healed": sum(1 for p in phases if p["healed"]),
        "mttr_s": {
            "per_phase": {p["phase"]: p["mttr_s"] for p in phases},
            "max": max(healed_mttrs) if healed_mttrs else None,
        },
        "failed_members": sorted(failed_members),
        "supervisor": supervisor_stats,
        "incidents": incidents,
        "health_events": len(events),
        "sampler": sampler_stats,
        "auditor": auditor_stats,
        "router": {
            k: router_stats.get(k)
            for k in ("routed", "refusals", "fast_refusals", "waits",
                      "cut_waits", "breaker_skips", "degraded_serves")
            if k in router_stats
        },
        "chaos_problems": problems,
    }
    if strict and problems:
        preview = "; ".join(str(p) for p in problems[:5])
        first = report.divergences[0] if report.divergences else None
        raise AuditDivergenceError(
            f"chaos loadgen observed {len(problems)} problem(s) "
            f"({backend} backend, {fleet} fleet): {preview}",
            seq=first.seq if first else None,
            divergences=report.divergences,
        )
    return result
