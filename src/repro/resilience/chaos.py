"""Disk-fault injectors for the WAL / label-journal / checkpoint layer.

Three fault families, matching the failure model (DESIGN.md §14):

* :func:`flip_bit_in_record` — in-place bit flip inside an *interior*,
  newline-terminated record of a WAL or journal file: the acknowledged-
  then-corrupted case.  Whatever byte the flip lands on, the record
  either stops parsing or fails its CRC32 stamp — both surface as the
  typed :class:`~repro.exceptions.WalCorruptionError`.
* :func:`torn_write` — an unterminated fragment appended at the tail:
  the crash-mid-append case.  On its own it is *benign* (readers ignore
  a torn tail; an appender trims it) — the dangerous variant this
  injector exists for is a fragment glued onto by a later ``O_APPEND``
  write from a still-running writer, which welds fragment + record into
  one checksummed-invalid line.
* :func:`corrupt_checkpoint` / :class:`DiskFullFault` — checkpoint-file
  bit flips (caught by the checkpoint's ``"crc"`` stamp or its JSON
  parse) and injected ``ENOSPC`` at the service's disk-fault seam
  (:meth:`repro.serve.SPCService.set_disk_fault`).

All injectors are deterministic (seeded byte selection), return a small
JSON-safe dict describing exactly what they damaged — the chaos
harness's ledger for its "every injected corruption detected" verdict —
and refuse to touch files too small to corrupt meaningfully rather than
silently doing nothing.
"""

import errno
import os
import random

from repro.exceptions import ReproError


def _complete_lines(data):
    """Byte offsets of the newline-terminated lines in ``data``:
    a list of (start, end) with ``data[end - 1] == \\n``."""
    spans = []
    start = 0
    while True:
        end = data.find(b"\n", start)
        if end < 0:
            break
        spans.append((start, end + 1))
        start = end + 1
    return spans


def flip_bit_in_record(path, record=None, seed=0):
    """Flip one bit inside an interior record line of a log file.

    ``record`` picks the target line (negative indexes from the end;
    default: the middle complete line).  The flipped byte is chosen
    pseudo-randomly (seeded) *inside* the line, never its newline — the
    framing survives, the content lies, which is precisely the case only
    a checksum can catch.  Returns ``{"path", "record", "offset",
    "before", "after"}``.
    """
    with open(path, "rb") as f:
        data = f.read()
    spans = _complete_lines(data)
    if not spans:
        raise ReproError(
            f"cannot flip a bit in {path}: no complete record lines"
        )
    index = len(spans) // 2 if record is None else record
    try:
        start, end = spans[index]
    except IndexError:
        raise ReproError(
            f"cannot flip record {index} of {path}: only "
            f"{len(spans)} complete lines"
        ) from None
    body = range(start, end - 1)  # exclude the newline
    if not body:
        raise ReproError(f"record {index} of {path} is empty")
    offset = random.Random(seed).choice(body)
    before = data[offset]
    after = before ^ 0x01
    with open(path, "rb+") as f:
        f.seek(offset)
        f.write(bytes([after]))
        f.flush()
        os.fsync(f.fileno())
    return {
        "path": path,
        "record": index if index >= 0 else len(spans) + index,
        "offset": offset,
        "before": before,
        "after": after,
    }


def torn_write(path, fragment=b'{"seq": 999999999, "updates": [["ie", 1'):
    """Append an unterminated record fragment (a crash mid-append).

    Returns ``{"path", "offset", "bytes"}``.  Against a *stopped* writer
    this is the benign torn tail every reader already tolerates; against
    a *running* writer the next ``O_APPEND`` record glues onto the
    fragment and the welded line fails parse/CRC as a typed corruption.
    """
    if isinstance(fragment, str):
        fragment = fragment.encode("utf-8")
    if fragment.endswith(b"\n"):
        raise ReproError(
            "a torn fragment must not end in a newline (that would be a "
            "complete record, not a torn write)"
        )
    offset = os.path.getsize(path) if os.path.exists(path) else 0
    with open(path, "ab") as f:
        f.write(fragment)
        f.flush()
        os.fsync(f.fileno())
    return {"path": path, "offset": offset, "bytes": len(fragment)}


def corrupt_checkpoint(path, seed=0):
    """Flip one bit inside a checkpoint document's interior.

    The landing byte decides the detection path — JSON no longer parses
    (``ServeError``) or parses with a failed ``"crc"`` stamp
    (:class:`~repro.exceptions.WalCorruptionError`) — and both refuse the
    restore.  Returns ``{"path", "offset", "before", "after"}``.
    """
    size = os.path.getsize(path)
    if size < 8:
        raise ReproError(f"checkpoint {path} too small to corrupt ({size} B)")
    # Keep away from the braces at both ends: an interior flip exercises
    # the content integrity check, not trivial document truncation.
    offset = random.Random(seed).randrange(2, size - 2)
    with open(path, "rb+") as f:
        f.seek(offset)
        before = f.read(1)[0]
        after = before ^ 0x01
        f.seek(offset)
        f.write(bytes([after]))
        f.flush()
        os.fsync(f.fileno())
    return {"path": path, "offset": offset, "before": before, "after": after}


class DiskFullFault:
    """An armable ``ENOSPC`` injector for the service's disk-fault seam.

    Install with :meth:`repro.serve.SPCService.set_disk_fault`; while
    :meth:`arm`\\ ed, every matching operation raises
    ``OSError(ENOSPC)`` *before* any bytes land (the storage layer is
    fail-stop by construction).  ``ops`` restricts which operations
    fault — ``("checkpoint",)`` models a disk with room for small
    appends but not a full snapshot, the classic compaction-time ENOSPC.
    """

    def __init__(self, ops=("append", "checkpoint")):
        self.ops = frozenset(ops)
        self.armed = False
        self.raised = 0

    def arm(self):
        """Start failing matching operations."""
        self.armed = True

    def disarm(self):
        """The disk has space again."""
        self.armed = False

    def __call__(self, op, path):
        if self.armed and op in self.ops:
            self.raised += 1
            raise OSError(
                errno.ENOSPC,
                f"injected disk-full: no space for {op} of {path}",
            )

    def __repr__(self):
        return (
            f"DiskFullFault(ops={sorted(self.ops)}, armed={self.armed}, "
            f"raised={self.raised})"
        )
