"""The canonical temporal-event model: timestamped edge updates.

Everything the replay subsystem consumes — parsed real-world dumps
(:mod:`repro.replay.ingest`), bundled synthetic corpora
(:mod:`repro.replay.generators`) — normalizes into one shape: a
:class:`TemporalEventLog`, an immutable, time-sorted sequence of
:class:`TemporalEvent` records (``insert`` / ``delete`` / ``set_weight``)
over integer vertex ids.

Normalization (:meth:`TemporalEventLog.from_raw`) makes the log
*applicable*: replayed in order against an initially empty graph, every
insert adds a fresh edge, every delete removes a live one, and every
set_weight touches a live one.  Raw streams violating that — duplicate
inserts, deletes or weight changes of edges that are not live (including
delete-before-insert), self-loops — are tolerated by dropping the
offending event and counting it in :attr:`TemporalEventLog.dropped`;
*malformed* input (unknown kinds, non-numeric fields) is the parser's
problem and raises :class:`~repro.exceptions.DatasetError` there.

The cut operation (:meth:`TemporalEventLog.cut`) materializes the
graph-at-time-``t``: all vertices the log ever names, plus exactly the
edges live after applying every event with ``ts <= t``.  By construction
``cut(t)`` equals replaying the prefix of events through ``t`` — the
property test in ``tests/property/test_property_replay.py`` pins this.
"""

import hashlib
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.undirected import Graph
from repro.graph.weighted import WeightedGraph

#: the three loggable event kinds, matching the WAL-serializable updates.
INSERT = "insert"
DELETE = "delete"
SET_WEIGHT = "set_weight"
KINDS = (INSERT, DELETE, SET_WEIGHT)


@dataclass(frozen=True)
class TemporalEvent:
    """One timestamped edge update: ``kind`` at virtual time ``ts``.

    Endpoints are stored normalized (``u <= v``) so duplicate detection
    and replay agree on edge identity regardless of input orientation.
    """

    ts: float
    kind: str
    u: int
    v: int
    weight: float = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise DatasetError(
                f"unknown temporal event kind {self.kind!r}; "
                f"known: {', '.join(KINDS)}"
            )
        if self.u == self.v:
            raise DatasetError(
                f"self-loop event ({self.u}, {self.v}) at ts {self.ts}"
            )
        if self.u > self.v:
            u, v = self.u, self.v
            object.__setattr__(self, "u", v)
            object.__setattr__(self, "v", u)

    @property
    def edge(self):
        """The normalized (u, v) endpoint pair (``u < v`` always holds)."""
        return (self.u, self.v)

    def line(self):
        """Canonical one-line serialization: ``u v [w] ts`` with a signed
        weight column encoding the kind (Konect convention: ``-1`` is a
        delete).  Byte-stable, so logs can be fingerprinted and diffed."""
        u, v = self.edge
        if self.kind == DELETE:
            return f"{u} {v} -1 {self.ts:.6f}"
        w = 1.0 if self.weight is None else float(self.weight)
        return f"{u} {v} {w:g} {self.ts:.6f}"


def make_event(ts, kind, u, v, weight=None):
    """Build a :class:`TemporalEvent` with normalized endpoints."""
    if u > v:
        u, v = v, u
    return TemporalEvent(float(ts), kind, u, v, weight)


class TemporalEventLog:
    """An immutable, time-sorted, applicable temporal update stream.

    Build via :meth:`from_raw` (normalizing) or pass pre-normalized
    events (trusted, e.g. a slice of an existing log).
    """

    def __init__(self, events, name=None, weighted=False, dropped=None):
        self._events = tuple(events)
        self.name = name
        self.weighted = bool(weighted)
        #: counts of raw events normalization refused to keep.
        self.dropped = dict(dropped or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_raw(cls, raw_events, name=None, weighted=False):
        """Normalize a raw event iterable into an applicable log.

        Events are stably sorted by timestamp (equal timestamps keep
        their input order — real dumps batch many events on one second),
        then swept once tracking edge liveness:

        * an ``insert`` of a live edge is dropped (``duplicate_insert``)
          — unless the log is weighted and the weight differs, in which
          case it becomes a ``set_weight`` (``rewritten_set_weight``);
        * a ``delete`` of a dead edge — including delete-before-insert —
          is dropped (``dangling_delete``);
        * a ``set_weight`` of a dead edge is dropped
          (``dangling_set_weight``); on unweighted logs every
          ``set_weight`` is dropped (``unweighted_set_weight``).

        Kept timestamps are quantized to the canonical serialization's
        microsecond precision, so ``to_lines`` round-trips losslessly
        (sorting happens on the raw stamps first — quantization can
        merge ties but never reorder).
        """
        ordered = sorted(raw_events, key=lambda e: e.ts)
        live = {}
        kept = []
        dropped = {}

        def drop(reason):
            dropped[reason] = dropped.get(reason, 0) + 1

        for event in ordered:
            edge = event.edge
            ts = round(event.ts, 6)
            if event.kind == INSERT:
                if edge in live:
                    if weighted and event.weight is not None \
                            and live[edge] != event.weight:
                        kept.append(make_event(
                            ts, SET_WEIGHT, *edge, weight=event.weight
                        ))
                        live[edge] = event.weight
                        drop("rewritten_set_weight")
                    else:
                        drop("duplicate_insert")
                    continue
                # Weighted logs default missing weights to 1.0 so the
                # canonical serialization round-trips event-identically.
                if weighted:
                    weight = 1.0 if event.weight is None else event.weight
                else:
                    weight = None
                live[edge] = weight
                kept.append(make_event(ts, INSERT, *edge, weight=weight))
            elif event.kind == DELETE:
                if edge not in live:
                    drop("dangling_delete")
                    continue
                del live[edge]
                kept.append(make_event(ts, DELETE, *edge))
            else:  # SET_WEIGHT
                if not weighted:
                    drop("unweighted_set_weight")
                    continue
                if edge not in live:
                    drop("dangling_set_weight")
                    continue
                live[edge] = event.weight
                kept.append(make_event(
                    ts, SET_WEIGHT, *edge, weight=event.weight
                ))
        return cls(kept, name=name, weighted=weighted, dropped=dropped)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    @property
    def events(self):
        """The normalized events, time-sorted (a tuple — immutable)."""
        return self._events

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, i):
        return self._events[i]

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TemporalEventLog({len(self._events)} events{label}, "
            f"span={self.span():g})"
        )

    # ------------------------------------------------------------------
    # Time axis
    # ------------------------------------------------------------------

    @property
    def t0(self):
        """Timestamp of the first event (0.0 for an empty log)."""
        return self._events[0].ts if self._events else 0.0

    @property
    def t1(self):
        """Timestamp of the last event (0.0 for an empty log)."""
        return self._events[-1].ts if self._events else 0.0

    def span(self):
        """``t1 - t0``: the log's virtual duration."""
        return self.t1 - self.t0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def vertices(self):
        """Every vertex id any event names, sorted."""
        seen = set()
        for e in self._events:
            seen.add(e.u)
            seen.add(e.v)
        return sorted(seen)

    def prefix(self, t):
        """The events with ``ts <= t``, as a list."""
        return [e for e in self._events if e.ts <= t]

    def suffix(self, t):
        """The events with ``ts > t``, as a list."""
        return [e for e in self._events if e.ts > t]

    def cut(self, t):
        """The graph at virtual time ``t``.

        Contains *every* vertex the log ever names (so a graph cut early
        can absorb the whole remaining stream as pure edge updates) and
        exactly the edges live after applying the prefix through ``t``.
        Returns a :class:`~repro.graph.WeightedGraph` for weighted logs.
        """
        g = WeightedGraph() if self.weighted else Graph()
        for v in self.vertices():
            g.add_vertex(v)
        for e in self.prefix(t):
            if e.kind == INSERT:
                if self.weighted:
                    g.add_edge(e.u, e.v, 1.0 if e.weight is None else e.weight)
                else:
                    g.add_edge(e.u, e.v)
            elif e.kind == DELETE:
                g.remove_edge(e.u, e.v)
            else:
                g.set_weight(e.u, e.v, e.weight)
        return g

    def split(self, t):
        """``(cut(t), suffix(t))``: a bootstrap graph plus the live tail."""
        return self.cut(t), self.suffix(t)

    # ------------------------------------------------------------------
    # Serialization / identity
    # ------------------------------------------------------------------

    def to_lines(self):
        """Canonical ``u v [w] ts`` serialization, one line per event."""
        return [e.line() for e in self._events]

    def fingerprint(self):
        """SHA-256 over the canonical serialization.

        Two logs with byte-identical event sequences — the reproducibility
        contract of a seeded scenario — have equal fingerprints.
        """
        h = hashlib.sha256()
        for line in self.to_lines():
            h.update(line.encode("ascii"))
            h.update(b"\n")
        return h.hexdigest()

    def stats(self):
        """Temporal summary: counts, span, churn rate, event rate."""
        inserts = sum(1 for e in self._events if e.kind == INSERT)
        deletes = sum(1 for e in self._events if e.kind == DELETE)
        reweights = len(self._events) - inserts - deletes
        span = self.span()
        return {
            "events": len(self._events),
            "inserts": inserts,
            "deletes": deletes,
            "set_weights": reweights,
            "vertices": len(self.vertices()),
            "span": round(span, 6),
            "weighted": self.weighted,
            # churn: how delete-heavy the stream is (0 = insert-only).
            "churn_rate": round(
                deletes / len(self._events), 6
            ) if self._events else 0.0,
            "events_per_unit_time": round(
                len(self._events) / span, 6
            ) if span > 0 else float(len(self._events)),
            "dropped": dict(self.dropped),
        }


def events_to_updates(events):
    """Map temporal events onto the WAL-loggable workload updates.

    Weights ride along only when present, so the same stream applies to
    weighted and unweighted backends alike.
    """
    from repro.workloads.updates import DeleteEdge, InsertEdge, SetWeight

    updates = []
    for e in events:
        if e.kind == INSERT:
            updates.append(InsertEdge(e.u, e.v, weight=e.weight))
        elif e.kind == DELETE:
            updates.append(DeleteEdge(e.u, e.v))
        else:
            updates.append(SetWeight(e.u, e.v, e.weight))
    return updates
