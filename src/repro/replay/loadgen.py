"""The replay engine: pace a precomputed plan against a live fleet.

:func:`run_replay_scenario` interprets one declarative
:class:`~repro.replay.scenario.ReplayScenario`: it loads the scenario's
temporal corpus, builds a deterministic :class:`~repro.replay.plan
.ReplayPlan` (bootstrap cut + batched write tail + full read schedule —
all randomness spent before the clock starts), stands up the scenario's
fleet (:class:`~repro.serve.SPCService`, :class:`~repro.cluster
.SPCCluster` or :class:`~repro.shard.ShardedCluster`) with the audit
stack tapped on the read path, and replays:

* a **writer** submits the tail batches at their virtual deadlines
  (virtual time → wall time via the plan's ``time_scale``), running
  open-loop: a batch whose deadline has passed is submitted immediately
  and its lag *accounted* (``late_batches`` / ``max_lag``), never
  dropped — backpressure shows up in the report, not in the replayed
  sequence;
* **readers** walk round-robin slices of the read schedule the same
  way: every planned query is issued exactly once (a refusal — the
  fleet's designed degraded mode — is counted and *not* retried, so the
  issued sequence stays deterministic);
* a **fault controller** fires the scenario's :class:`~repro.replay
  .scenario.FaultSpec` schedule at its run fractions (absolute
  scheduling, like the shard harness).

The strict contract follows the house rule — consistency is judged,
timing never: zero shadow-audit divergences, a non-trivial audit count,
refusals only where a fault schedule explains them, and recovery after
a restart.  Wired into the benchmark CLI as ``repro-bench replay``.
"""

import shutil
import tempfile
import threading
import time

from repro.audit.comparator import DivergenceReport
from repro.audit.sampler import AuditSampler
from repro.audit.shadow import ShadowAuditor
from repro.cluster.cluster import ClusterConfig, SPCCluster
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import (
    AuditDivergenceError,
    ClusterError,
    ServeError,
    ShardError,
)
from repro.replay.plan import ReplayPlan
from repro.replay.scenario import ReplayScenario, get_scenario
from repro.serve.loadgen import _check_answer, _percentile
from repro.serve.service import ServeConfig, SPCService
from repro.shard.shardcluster import ShardConfig, ShardedCluster


class _Fleet:
    """Uniform facade over the three serving topologies.

    Normalizes the seams the replay threads need — submit, read, tap,
    fault actions, quiesce, close — so the engine is topology-blind.
    """

    def __init__(self, scenario, engine, state_dir):
        self.kind = scenario.fleet
        if self.kind == "service":
            self.impl = SPCService(
                engine,
                config=ServeConfig(
                    durability_dir=state_dir, queue_capacity=4096
                ),
                overwrite=True,
            )
            self.primary = self.impl
        elif self.kind == "cluster":
            self.impl = SPCCluster(
                engine, state_dir,
                config=ClusterConfig(replicas=scenario.replicas),
                serve_config=ServeConfig(queue_capacity=4096),
                overwrite=True,
            )
            self.primary = self.impl.primary
        else:  # shard
            self.impl = ShardedCluster(
                engine, state_dir,
                config=ShardConfig(shards=scenario.shards),
                serve_config=ServeConfig(queue_capacity=4096),
                overwrite=True,
            )
            self.primary = self.impl.primary

    def set_answer_tap(self, tap):
        if self.kind == "cluster":
            self.impl.router.set_answer_tap(tap)
        else:
            self.impl.set_answer_tap(tap)

    def set_metrics(self, registry, tracer=None):
        """Install (or clear) telemetry on whichever topology runs."""
        self.impl.set_metrics(registry, tracer=tracer)

    def submit_many(self, updates):
        self.impl.submit_many(updates)

    def query(self, s, t):
        return self.impl.query(s, t)

    def apply_fault(self, fault):
        if fault.action == "kill_shard":
            self.impl.kill_shard(fault.target)
        elif fault.action == "restart_shard":
            self.impl.restart_shard(fault.target)
        else:
            raise ServeError(
                f"fleet {self.kind!r} cannot apply fault {fault.action!r}"
            )

    def quiesce(self, timeout=30.0):
        """Apply everything submitted (and converge followers)."""
        if self.kind == "service":
            self.impl.flush(timeout=timeout)
        elif self.kind == "cluster":
            self.impl.sync(timeout=timeout)
        else:
            self.impl.sync(timeout=timeout)

    def close(self):
        try:
            self.impl.close()
        except (ServeError, ClusterError):
            pass


def _writer_loop(fleet, plan, start, record, pacing_hist=None):
    """Submit every batch at its virtual deadline; account lateness.

    ``pacing_hist`` is the telemetry seam: a :class:`~repro.obs
    .Histogram` that receives every batch's pacing lag (0 for a batch
    submitted on time — the histogram's zero bucket keeps the count per
    batch, so lag coverage is visible, not just lag magnitude).
    """
    problems = []
    submitted = 0
    late = 0
    max_lag = 0.0
    try:
        for virtual_ts, updates in plan.batches:
            due = start + plan.wall_offset(virtual_ts)
            now = time.time()
            lag = 0.0
            if now < due:
                time.sleep(due - now)
            else:
                lag = now - due
                if lag > 0.001:
                    late += 1
                    max_lag = max(max_lag, lag)
            if pacing_hist is not None:
                pacing_hist.observe(lag)
            fleet.submit_many(updates)
            submitted += len(updates)
    except Exception as exc:  # noqa: BLE001 — a dead writer fails the run
        problems.append(f"writer thread crashed: {exc!r}")
    record["submitted"] = submitted
    record["late_batches"] = late
    record["max_lag_s"] = round(max_lag, 4)
    record["problems"] = problems


def _reader_loop(fleet, schedule, plan, start, record):
    """Issue one slice of the read schedule, exactly once per query.

    Refusals (:class:`ClusterError` — :class:`ShardError` included) are
    the fleet's designed degraded mode: counted, never retried, so the
    issued sequence is the planned sequence regardless of faults.
    """
    latencies = []
    problems = []
    answered = 0
    refusals = 0
    try:
        for virtual_ts, s, t in schedule:
            due = start + plan.wall_offset(virtual_ts)
            now = time.time()
            if now < due:
                time.sleep(due - now)
            began = time.perf_counter()
            try:
                answer = fleet.query(s, t)
            except ClusterError:
                refusals += 1
                continue
            latencies.append(time.perf_counter() - began)
            answered += 1
            _check_answer(answered, s, t, answer, problems)
    except Exception as exc:  # noqa: BLE001 — a dead reader fails the run
        problems.append(f"reader thread crashed: {exc!r}")
    record["issued"] = len(schedule)
    record["answered"] = answered
    record["refusals"] = refusals
    record["latencies"] = latencies
    record["problems"] = problems


def _fault_controller(fleet, faults, start, duration, record):
    """Fire each fault at ``start + at·duration`` (absolute schedule)."""
    problems = []
    events = []
    try:
        for fault in sorted(faults, key=lambda f: f.at):
            time.sleep(max(0.0, start + duration * fault.at - time.time()))
            fleet.apply_fault(fault)
            events.append({
                "action": fault.action,
                "target": fault.target,
                "at": fault.at,
                "applied_seq": fleet.primary.applied_seq,
            })
    except Exception as exc:  # noqa: BLE001 — a failed injection fails the run
        problems.append(f"fault controller crashed: {exc!r}")
    record["events"] = events
    record["problems"] = problems


def run_replay_scenario(scenario, seed=0, duration=None, corpus_kwargs=None,
                        state_dir=None, telemetry=None, strict=True,
                        drain_timeout=30.0):
    """Replay one scenario end to end; returns a report dict.

    ``scenario`` is a name from the library or a
    :class:`~repro.replay.scenario.ReplayScenario`; ``duration``
    overrides the wall seconds the virtual tail is scaled into;
    ``corpus_kwargs`` override the corpus generator (e.g. a smaller
    ``events`` for smoke runs).  Strict mode raises
    :class:`~repro.exceptions.AuditDivergenceError` on any contract
    violation (see the module docstring); the report's ``deterministic``
    block is identical across same-seed runs by construction.  With
    ``telemetry`` set to a directory, the scenario's fleet + audit stack
    are instrumented end to end (including the writer's pacing-lag
    histogram ``repro_replay_pacing_lag_seconds``) and the registry is
    written there as a ``replay-<scenario>.prom``/``.json`` pair.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    elif not isinstance(scenario, ReplayScenario):
        raise ServeError(
            f"expected a scenario name or ReplayScenario, got {scenario!r}"
        )
    if duration is not None:
        scenario = scenario.replace(duration=duration)

    # Lazy import: repro.datasets pulls in this package for the temporal
    # corpora, so the top-level import would be circular.
    from repro.datasets.registry import load_temporal_dataset

    log = load_temporal_dataset(scenario.corpus, **(corpus_kwargs or {}))
    plan = ReplayPlan(scenario, log, seed=seed)

    engine = SPCEngine(
        plan.bootstrap.copy(), config=EngineConfig(backend=scenario.backend)
    )
    own_dir = state_dir is None
    state_dir = state_dir or tempfile.mkdtemp(prefix="repro-replay-")
    fleet = None
    auditor = None
    try:
        fleet = _Fleet(scenario, engine, state_dir)
        sampler = AuditSampler(
            rate=scenario.sample_rate, capacity=scenario.reservoir,
            seed=seed + 5,
        )
        fleet.set_answer_tap(sampler)
        auditor = ShadowAuditor(
            sampler, state_dir, report=DivergenceReport(), history=1024
        )
        registry = tracer = pacing_hist = None
        if telemetry is not None:
            from repro.obs import MetricsRegistry, Tracer

            registry = MetricsRegistry()
            tracer = Tracer()
            fleet.set_metrics(registry, tracer=tracer)
            sampler.set_metrics(registry)
            auditor.set_metrics(registry)
            pacing_hist = registry.histogram(
                "repro_replay_pacing_lag_seconds"
            )
    except BaseException:
        if auditor is not None:
            try:
                auditor.close()
            except ServeError:
                pass
        if fleet is not None:
            fleet.close()
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise

    start = time.time()
    writer_record = {}
    reader_records = [{} for _ in range(scenario.readers)]
    fault_record = {"events": [], "problems": []}
    threads = [threading.Thread(
        target=_writer_loop,
        args=(fleet, plan, start, writer_record, pacing_hist),
        name="replay-writer",
    )]
    for i, schedule in enumerate(plan.reader_slices(scenario.readers)):
        threads.append(threading.Thread(
            target=_reader_loop,
            args=(fleet, schedule, plan, start, reader_records[i]),
            name=f"replay-reader-{i}",
        ))
    if scenario.faults:
        threads.append(threading.Thread(
            target=_fault_controller,
            args=(fleet, scenario.faults, start, scenario.duration,
                  fault_record),
            name="replay-fault-controller",
        ))

    problems = []
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.time() - start
        recovered = None
        restarted = any(
            e["action"].startswith("restart") for e in fault_record["events"]
        )
        if restarted:
            # Prove recovery explicitly: a synced fleet must answer again.
            recovered = True
            try:
                fleet.quiesce(timeout=30.0)
                _, s, t = plan.queries[0]
                fleet.query(s, t)
            except ClusterError as exc:
                recovered = False
                problems.append(f"post-restart read failed: {exc}")
        else:
            fleet.quiesce(timeout=30.0)
        if not auditor.drain(timeout=drain_timeout):
            problems.append(
                f"auditor failed to drain within {drain_timeout} s "
                f"(pending {auditor.stats()['pending']})"
            )
        sampler_stats = sampler.stats()
        auditor_stats = auditor.stats()
        report = auditor.report
        if registry is not None:
            from repro.obs.export import write_files

            telemetry_paths = write_files(
                registry, telemetry, tracer=tracer,
                stem=f"replay-{scenario.name}",
            )
        try:
            auditor.close()
        except ServeError as exc:
            problems.append(f"auditor died: {exc}")
    except BaseException:
        try:
            auditor.close()
        except ServeError:
            pass
        fleet.close()
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise
    fleet.close()
    if own_dir:
        shutil.rmtree(state_dir, ignore_errors=True)

    problems.extend(writer_record.get("problems", []))
    for rec in reader_records:
        problems.extend(rec.get("problems", []))
    problems.extend(fault_record.get("problems", []))

    refusals = sum(rec.get("refusals", 0) for rec in reader_records)
    answered = sum(rec.get("answered", 0) for rec in reader_records)
    issued = sum(rec.get("issued", 0) for rec in reader_records)
    killed = any(
        e["action"].startswith("kill") for e in fault_record["events"]
    )
    if strict:
        if writer_record.get("submitted", 0) != plan.events_to_replay:
            problems.append(
                f"writer submitted {writer_record.get('submitted', 0)} of "
                f"{plan.events_to_replay} planned events"
            )
        if issued != len(plan.queries):
            problems.append(
                f"readers issued {issued} of {len(plan.queries)} planned "
                f"queries"
            )
        if report.total:
            problems.append(
                f"shadow audit diverged {report.total} time(s): "
                f"{report.divergences[0].describe()}"
            )
        if auditor_stats["audited"] == 0:
            problems.append(
                "auditor audited zero answers — the run proves nothing "
                "(raise duration, query_rate or sample_rate)"
            )
        if killed and not refusals:
            problems.append(
                "a shard was killed but no reader observed a refusal — "
                "the fleet kept serving without a hub slice"
            )
        if refusals and not scenario.faults:
            problems.append(
                f"{refusals} refusal(s) with no fault schedule to "
                f"explain them"
            )

    latencies = sorted(
        lat for rec in reader_records for lat in rec.get("latencies", [])
    )
    result = {
        "scenario": scenario.describe(),
        # Same seed ⇒ this block is identical across runs, by construction.
        "deterministic": dict(plan.describe(), seed=seed),
        "duration_s": round(elapsed, 3),
        "events_submitted": writer_record.get("submitted", 0),
        "late_batches": writer_record.get("late_batches", 0),
        "max_write_lag_s": writer_record.get("max_lag_s", 0.0),
        "queries_issued": issued,
        "queries_answered": answered,
        "refusals": refusals,
        "read_qps": round(answered / elapsed) if elapsed else 0,
        "read_latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 4),
            "p99": round(_percentile(latencies, 99) * 1e3, 4),
        },
        "sampler": sampler_stats,
        "auditor": auditor_stats,
        "divergences": report.total,
        "fault_injection": fault_record["events"],
        "recovered": recovered,
        "telemetry": list(telemetry_paths) if registry is not None else None,
        "replay_problems": problems,
    }
    if strict and problems:
        preview = "; ".join(str(p) for p in problems[:5])
        first = report.divergences[0] if report.divergences else None
        raise AuditDivergenceError(
            f"replay scenario {scenario.name!r} observed {len(problems)} "
            f"problem(s): {preview}",
            seq=first.seq if first else None,
            divergences=report.divergences,
        )
    return result
