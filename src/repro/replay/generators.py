"""Deterministic offline temporal-graph generators.

The paper's temporal candidates (Enron, Digg, Weibo-style interaction
graphs — the dataset survey in SNIPPETS.md) are not available offline,
so — exactly like :mod:`repro.datasets.registry` substitutes synthetic
static analogues — this module generates *temporal* analogues with the
shapes that matter for serving evaluation:

* :func:`temporal_contact` — an Enron-style contact network: edges are
  conversations that open (insert) and later close (delete) after an
  exponentially-distributed lifetime, over a preferential-attachment
  population, so the live graph stays roughly stationary while churning.
* :func:`temporal_cascade` — a Digg-style cascade graph: interaction
  edges arrive in self-exciting bursts (each event may spawn offspring
  shortly after) attaching preferentially to recently-active vertices;
  insert-dominated, temporally clustered.
* :func:`churn_storm` — a Weibo-style storm pattern: a steady
  insert/delete equilibrium punctuated by delete storms (a window where
  a big slice of the live edges vanishes) followed by gradual
  reinsertion — the shape that stresses decremental maintenance.

All three build a connected bootstrap component during the first
``warm_fraction`` of the span (so a replay can cut there and start from
a meaningful graph), are fully deterministic given ``seed``, and return
normalized :class:`~repro.replay.events.TemporalEventLog` objects.
"""

import random

from repro.exceptions import DatasetError
from repro.replay.events import (
    DELETE,
    INSERT,
    TemporalEventLog,
    make_event,
)


def _check(n, events, span):
    if n < 4:
        raise DatasetError(f"temporal generators need n >= 4, got {n}")
    if events < n:
        raise DatasetError(
            f"need at least n={n} events to build the bootstrap component, "
            f"got {events}"
        )
    if span <= 0:
        raise DatasetError(f"span must be positive, got {span}")


def _bootstrap(rng, n, t0, t1, raw, urn):
    """Emit a connected preferential-attachment backbone on [t0, t1).

    Every vertex 0..n-1 joins by attaching to an already-joined vertex
    (degree-proportional via the urn), at evenly-jittered timestamps, so
    the cut at ``t1`` is one connected component containing all ids.
    """
    step = (t1 - t0) / max(n, 1)
    urn.extend([0, 1])
    raw.append(make_event(t0, INSERT, 0, 1))
    for v in range(2, n):
        ts = t0 + step * v * (0.9 + 0.2 * rng.random())
        t = rng.choice(urn)
        while t == v:
            t = rng.choice(urn)
        raw.append(make_event(min(ts, t1), INSERT, v, t))
        urn.append(v)
        urn.append(t)


def temporal_contact(n=120, events=900, span=100.0, mean_lifetime=None,
                     warm_fraction=0.25, seed=0):
    """Contact-network analogue: edges open and close over a stable core.

    After the bootstrap phase, contact events arrive uniformly over the
    remaining span; each opens a fresh edge between an urn-weighted pair
    and schedules its close after an ``Exp(mean_lifetime)`` holding time
    (defaulting to a quarter of the active span).  Roughly half the
    events end up deletes, so the live graph orbits a stationary size.
    """
    _check(n, events, span)
    rng = random.Random(seed)
    raw = []
    urn = []
    warm_end = span * warm_fraction
    _bootstrap(rng, n, 0.0, warm_end, raw, urn)
    active_span = span - warm_end
    if mean_lifetime is None:
        mean_lifetime = active_span / 4.0
    budget = events - len(raw)
    opens = max(1, budget // 2)
    live = {(e.u, e.v) for e in raw}
    for _ in range(opens):
        ts = warm_end + rng.random() * active_span
        u = rng.choice(urn)
        v = rng.choice(urn) if rng.random() < 0.7 else rng.randrange(n)
        if u == v:
            v = (u + 1 + rng.randrange(n - 1)) % n
        edge = (min(u, v), max(u, v))
        raw.append(make_event(ts, INSERT, *edge))
        close_ts = ts + rng.expovariate(1.0 / mean_lifetime)
        if close_ts <= span and edge not in live:
            raw.append(make_event(close_ts, DELETE, *edge))
        urn.append(u)
        urn.append(v)
    return TemporalEventLog.from_raw(raw, name="temporal_contact")


def temporal_cascade(n=150, events=900, span=100.0, branching=0.7,
                     burst_scale=0.004, warm_fraction=0.25, seed=0):
    """Cascade analogue: self-exciting bursts of interaction edges.

    A Hawkes-lite arrival process: immigrant events arrive uniformly;
    each event spawns a Poisson(``branching``) brood of offspring a
    short (exponential, ``burst_scale``·span) lag later, attaching to
    the triggering event's endpoints — so bursts are temporally *and*
    topologically clustered, like reply/vote cascades.  Insert-dominated
    (old interactions decay only rarely).
    """
    _check(n, events, span)
    if not 0 <= branching < 1:
        raise DatasetError(
            f"branching must be in [0, 1) for the cascade to stay finite, "
            f"got {branching}"
        )
    rng = random.Random(seed)
    raw = []
    urn = []
    warm_end = span * warm_fraction
    _bootstrap(rng, n, 0.0, warm_end, raw, urn)
    active_span = span - warm_end
    budget = events - len(raw)
    # Expected cascade size per immigrant is 1/(1-branching).
    immigrants = max(1, int(budget * (1.0 - branching)))
    frontier = []
    for _ in range(immigrants):
        frontier.append((warm_end + rng.random() * active_span, None))
    emitted = 0
    while frontier and emitted < budget:
        frontier.sort(key=lambda item: item[0])
        ts, parent = frontier.pop(0)
        if ts > span:
            continue
        if parent is None:
            u = rng.choice(urn)
        else:
            u = parent
        v = rng.choice(urn) if rng.random() < 0.6 else rng.randrange(n)
        if u == v:
            v = (u + 1 + rng.randrange(n - 1)) % n
        raw.append(make_event(ts, INSERT, min(u, v), max(u, v)))
        urn.append(u)
        urn.append(v)
        emitted += 1
        # Rare decay keeps a trickle of deletes in the stream.
        if rng.random() < 0.08:
            victim = raw[rng.randrange(len(raw))]
            raw.append(make_event(
                min(ts + 0.001, span), DELETE, victim.u, victim.v
            ))
        # Single-child Bernoulli(branching) offspring keeps the process
        # subcritical (mean cascade size 1/(1-branching)); a >1 mean lets
        # the earliest cascades eat the whole budget and collapses the
        # log's span onto the first burst.
        if rng.random() < branching:
            lag = rng.expovariate(1.0 / (burst_scale * span))
            frontier.append((ts + lag, v))
    return TemporalEventLog.from_raw(raw, name="temporal_cascade")


def churn_storm(n=120, events=1000, span=100.0, storms=2,
                storm_fraction=0.35, warm_fraction=0.3, seed=0):
    """Churn-storm analogue: equilibrium churn with delete-storm windows.

    After bootstrap, background events alternate inserts and deletes at
    a steady rate.  ``storms`` windows are carved out of the active span;
    inside each, ``storm_fraction`` of the then-live edges are deleted in
    a tight burst, then reinserted over the window's tail — the
    delete-heavy shape that makes batched/deferred decremental repair
    earn its keep.
    """
    _check(n, events, span)
    rng = random.Random(seed)
    raw = []
    urn = []
    warm_end = span * warm_fraction
    _bootstrap(rng, n, 0.0, warm_end, raw, urn)
    live = {(e.u, e.v) for e in raw}
    active_span = span - warm_end
    budget = events - len(raw)
    storm_budget = int(budget * 0.5)
    background = budget - storm_budget

    # Background equilibrium churn.  Timestamps are drawn up front and
    # visited in order so the liveness tracking here matches the sorted
    # order normalization will replay in.
    stamps = sorted(warm_end + rng.random() * active_span
                    for _ in range(background))
    for ts in stamps:
        if live and rng.random() < 0.45:
            edge = rng.choice(sorted(live))
            raw.append(make_event(ts, DELETE, *edge))
            live.discard(edge)
        else:
            u = rng.choice(urn)
            v = rng.randrange(n)
            if u == v:
                v = (u + 1 + rng.randrange(n - 1)) % n
            edge = (min(u, v), max(u, v))
            if edge in live:
                continue
            raw.append(make_event(ts, INSERT, *edge))
            live.add(edge)

    # Storm windows: a delete burst, then reinsertion over the tail.
    per_storm = storm_budget // max(storms, 1)
    for s in range(storms):
        window_start = warm_end + active_span * (s + 0.5) / (storms + 0.5)
        window = active_span / (2.0 * (storms + 1))
        victims = sorted(live)
        rng.shuffle(victims)
        victims = victims[: max(1, min(
            per_storm // 2, int(len(victims) * storm_fraction)
        ))]
        for i, edge in enumerate(victims):
            ts = window_start + window * 0.3 * (i / max(len(victims), 1))
            raw.append(make_event(ts, DELETE, *edge))
            live.discard(edge)
        for i, edge in enumerate(victims):
            ts = window_start + window * (0.4 + 0.6 * (i + 1)
                                          / (len(victims) + 1))
            if ts <= span and edge not in live:
                raw.append(make_event(ts, INSERT, *edge))
                live.add(edge)
    return TemporalEventLog.from_raw(raw, name="churn_storm")


#: generator-family registry, mirrored by the dataset registry's
#: temporal corpora (same substitution policy as the static analogues).
TEMPORAL_FAMILIES = {
    "temporal_contact": temporal_contact,
    "temporal_cascade": temporal_cascade,
    "churn_storm": churn_storm,
}
