"""repro.replay: temporal-graph ingestion and scenario replay.

The temporal-workload subsystem (DESIGN.md §15): real-world-shaped
timestamped update streams and query traffic, driven end to end against
any serving topology with the shadow audit attached.

Five parts:

* :mod:`repro.replay.events` — the canonical :class:`TemporalEventLog`
  (sorted, normalized Insert/Delete/SetWeight events; ``cut(t)`` yields
  the graph-at-time-t);
* :mod:`repro.replay.ingest` — SNAP/Konect-style ``u v [w] ts`` parsers
  (gzip-aware, comment/duplicate-tolerant, typed errors on malformed
  lines) and the canonical writer;
* :mod:`repro.replay.generators` — deterministic offline temporal
  corpora (``temporal_contact`` / ``temporal_cascade`` / ``churn_storm``),
  registered in :mod:`repro.datasets.registry` as ENR / DIG / WBO;
* :mod:`repro.replay.traffic` — seeded :class:`ArrivalProcess` (Poisson,
  bursty MMPP, diurnal) and :class:`SourcePicker` (uniform, Zipf,
  hot-set) traffic models;
* :mod:`repro.replay.scenario` + :mod:`repro.replay.loadgen` — the
  declarative :class:`ReplayScenario` library and the replay engine
  pacing a precomputed :class:`~repro.replay.plan.ReplayPlan` against a
  live fleet (``repro-bench replay``).
"""

from repro.replay.events import (
    DELETE,
    INSERT,
    KINDS,
    SET_WEIGHT,
    TemporalEvent,
    TemporalEventLog,
    events_to_updates,
    make_event,
)
from repro.replay.generators import (
    TEMPORAL_FAMILIES,
    churn_storm,
    temporal_cascade,
    temporal_contact,
)
from repro.replay.ingest import (
    parse_temporal_edge_list,
    write_temporal_edge_list,
)
from repro.replay.loadgen import run_replay_scenario
from repro.replay.plan import ReplayPlan
from repro.replay.scenario import (
    QUICK_SCENARIOS,
    SCENARIOS,
    FaultSpec,
    ReplayScenario,
    get_scenario,
    scenario_names,
)
from repro.replay.traffic import (
    ARRIVAL_PROCESSES,
    SOURCE_PICKERS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    HotSetPicker,
    PoissonArrivals,
    SourcePicker,
    UniformPicker,
    ZipfPicker,
    make_arrival_process,
    make_source_picker,
)

__all__ = [
    "INSERT",
    "DELETE",
    "SET_WEIGHT",
    "KINDS",
    "TemporalEvent",
    "TemporalEventLog",
    "make_event",
    "events_to_updates",
    "parse_temporal_edge_list",
    "write_temporal_edge_list",
    "temporal_contact",
    "temporal_cascade",
    "churn_storm",
    "TEMPORAL_FAMILIES",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "SourcePicker",
    "UniformPicker",
    "ZipfPicker",
    "HotSetPicker",
    "ARRIVAL_PROCESSES",
    "SOURCE_PICKERS",
    "make_arrival_process",
    "make_source_picker",
    "ReplayPlan",
    "ReplayScenario",
    "FaultSpec",
    "SCENARIOS",
    "QUICK_SCENARIOS",
    "scenario_names",
    "get_scenario",
    "run_replay_scenario",
]
