"""Seeded traffic models: who asks (SourcePicker) and when (ArrivalProcess).

Realistic serving workloads differ from the uniform loadgen traffic the
existing harnesses emit in two orthogonal ways:

* **source skew** — a few vertices account for most queries (Zipf), or
  a rotating "hot set" dominates for a while before interest moves on;
* **arrival shape** — queries cluster in bursts (MMPP) or follow a
  daily rate curve (diurnal) instead of arriving at a constant rate.

Both axes are modeled as small seeded objects so a scenario can be
replayed byte-identically: a :class:`SourcePicker` maps an RNG onto a
vertex population, and an :class:`ArrivalProcess` lays out a full
deterministic schedule of arrival times over a virtual-time window.

Factories (:func:`make_source_picker`, :func:`make_arrival_process`)
resolve the declarative names used by :class:`repro.replay.scenario.ReplayScenario`.
"""

import math
import random

from repro.exceptions import DatasetError

# ----------------------------------------------------------------------
# Source pickers: which (s, t) pair does the next query ask about?
# ----------------------------------------------------------------------


class SourcePicker:
    """Picks query endpoints from a vertex population, deterministically.

    Subclasses implement :meth:`pick`; :meth:`pick_pair` draws two
    distinct endpoints (source via the picker's skew, target uniform —
    the asymmetry real query logs show: hot *sources*, spread targets).
    """

    name = "base"

    def __init__(self, vertices, seed=0):
        self.vertices = list(vertices)
        if len(self.vertices) < 2:
            raise DatasetError(
                f"source picker needs >= 2 vertices, got {len(self.vertices)}"
            )
        self.rng = random.Random(seed)

    def pick(self):
        raise NotImplementedError

    def pick_pair(self):
        s = self.pick()
        t = self.vertices[self.rng.randrange(len(self.vertices))]
        while t == s:
            t = self.vertices[self.rng.randrange(len(self.vertices))]
        return s, t


class UniformPicker(SourcePicker):
    """Every vertex equally likely — the legacy loadgen behavior."""

    name = "uniform"

    def pick(self):
        return self.vertices[self.rng.randrange(len(self.vertices))]


class ZipfPicker(SourcePicker):
    """Zipf-skewed sources: vertex ranked ``k`` drawn ∝ ``1/(k+1)^alpha``.

    Rank order is a seeded shuffle of the population, so *which* vertices
    are hot varies with the seed while the skew shape stays fixed.
    """

    name = "zipf"

    def __init__(self, vertices, seed=0, alpha=1.1):
        super().__init__(vertices, seed)
        if alpha <= 0:
            raise DatasetError(f"zipf alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        self.ranked = list(self.vertices)
        self.rng.shuffle(self.ranked)
        weights = [1.0 / (k + 1) ** self.alpha for k in range(len(self.ranked))]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def pick(self):
        x = self.rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return self.ranked[lo]


class HotSetPicker(SourcePicker):
    """Rotating hot set: a small working set absorbs most picks, and the
    set itself is re-drawn every ``rotate_every`` picks — the "interest
    moves on" pattern of trending-topic traffic.
    """

    name = "hotset"

    def __init__(self, vertices, seed=0, hot_size=8, hot_weight=0.8,
                 rotate_every=64):
        super().__init__(vertices, seed)
        if not 0 < hot_weight < 1:
            raise DatasetError(
                f"hot_weight must be in (0, 1), got {hot_weight}"
            )
        self.hot_size = max(1, min(int(hot_size), len(self.vertices) - 1))
        self.hot_weight = float(hot_weight)
        self.rotate_every = max(1, int(rotate_every))
        self._picks = 0
        self._hot = []
        self._rotate()

    def _rotate(self):
        self._hot = self.rng.sample(self.vertices, self.hot_size)

    def pick(self):
        if self._picks and self._picks % self.rotate_every == 0:
            self._rotate()
        self._picks += 1
        if self.rng.random() < self.hot_weight:
            return self._hot[self.rng.randrange(len(self._hot))]
        return self.vertices[self.rng.randrange(len(self.vertices))]


SOURCE_PICKERS = {
    "uniform": UniformPicker,
    "zipf": ZipfPicker,
    "hotset": HotSetPicker,
}


def make_source_picker(name, vertices, seed=0, **kwargs):
    """Resolve a picker by declarative name (``uniform``/``zipf``/``hotset``)."""
    try:
        cls = SOURCE_PICKERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown source picker {name!r}; "
            f"known: {', '.join(sorted(SOURCE_PICKERS))}"
        ) from None
    return cls(vertices, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Arrival processes: at which virtual times do queries arrive?
# ----------------------------------------------------------------------


class ArrivalProcess:
    """Lays out a deterministic schedule of arrival times on [t0, t1).

    ``rate`` is in events per unit of *virtual* time.  :meth:`schedule`
    returns the full sorted list of arrival timestamps — precomputing
    the plan (rather than sampling online) is what makes a replay's
    query sequence byte-identical across runs.
    """

    name = "base"

    def __init__(self, rate, seed=0):
        if rate <= 0:
            raise DatasetError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self.seed = seed

    def schedule(self, t0, t1):
        raise NotImplementedError

    def _thin(self, t0, t1, rate_fn, peak):
        """Sample an inhomogeneous Poisson process by thinning at ``peak``."""
        rng = random.Random(self.seed)
        out = []
        t = t0
        while True:
            t += rng.expovariate(peak)
            if t >= t1:
                break
            if rng.random() <= rate_fn(t) / peak:
                out.append(t)
        return out


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson: exponential inter-arrivals at constant rate."""

    name = "poisson"

    def schedule(self, t0, t1):
        rng = random.Random(self.seed)
        out = []
        t = t0
        while True:
            t += rng.expovariate(self.rate)
            if t >= t1:
                break
            out.append(t)
        return out


class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: a quiet state and a burst state, each Poisson.

    The modulating chain flips between a low-rate quiet state and a
    high-rate burst state with exponential holding times, producing the
    clumped arrival pattern of event-driven traffic.  ``rate`` is the
    quiet-state rate; bursts run at ``burst_factor``× it.
    """

    name = "bursty"

    def __init__(self, rate, seed=0, burst_factor=8.0, mean_quiet=10.0,
                 mean_burst=2.0):
        super().__init__(rate, seed)
        if burst_factor <= 1:
            raise DatasetError(
                f"burst_factor must exceed 1, got {burst_factor}"
            )
        self.burst_factor = float(burst_factor)
        self.mean_quiet = float(mean_quiet)
        self.mean_burst = float(mean_burst)

    def schedule(self, t0, t1):
        rng = random.Random(self.seed)
        out = []
        t = t0
        bursting = False
        phase_end = t0 + rng.expovariate(1.0 / self.mean_quiet)
        while t < t1:
            rate = self.rate * (self.burst_factor if bursting else 1.0)
            t += rng.expovariate(rate)
            while t >= phase_end and phase_end < t1:
                bursting = not bursting
                mean = self.mean_burst if bursting else self.mean_quiet
                phase_end += rng.expovariate(1.0 / mean)
            if t < t1:
                out.append(t)
        return out


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal daily rate curve sampled by thinning.

    The instantaneous rate is ``rate · (1 + amplitude · sin(...))`` with
    ``cycles`` full periods across the window — a smooth peak/trough
    load shape.  ``rate`` is the *mean* rate.
    """

    name = "diurnal"

    def __init__(self, rate, seed=0, amplitude=0.8, cycles=2.0):
        super().__init__(rate, seed)
        if not 0 < amplitude <= 1:
            raise DatasetError(
                f"diurnal amplitude must be in (0, 1], got {amplitude}"
            )
        self.amplitude = float(amplitude)
        self.cycles = float(cycles)

    def schedule(self, t0, t1):
        span = t1 - t0
        if span <= 0:
            return []
        omega = 2.0 * math.pi * self.cycles / span

        def rate_fn(t):
            return self.rate * (1.0 + self.amplitude
                                * math.sin(omega * (t - t0)))

        peak = self.rate * (1.0 + self.amplitude)
        return self._thin(t0, t1, rate_fn, peak)


ARRIVAL_PROCESSES = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
}


def make_arrival_process(name, rate, seed=0, **kwargs):
    """Resolve an arrival process by name (``poisson``/``bursty``/``diurnal``)."""
    try:
        cls = ARRIVAL_PROCESSES[name]
    except KeyError:
        raise DatasetError(
            f"unknown arrival process {name!r}; "
            f"known: {', '.join(sorted(ARRIVAL_PROCESSES))}"
        ) from None
    return cls(rate, seed=seed, **kwargs)
