"""Declarative replay scenarios: corpus × traffic × fleet × faults.

A :class:`ReplayScenario` is a small frozen value object naming every
knob of one replay run — which temporal corpus drives the write path,
which arrival process and source picker shape the read traffic, which
fleet topology serves (``service`` / ``cluster`` / ``shard``), and what
faults are injected when.  Scenarios are pure data: the replay engine
(:mod:`repro.replay.loadgen`) interprets them, so the same spec replays
identically anywhere.

The named library covers the workload shapes the static-loadgen
harnesses never exercised:

* ``diurnal`` — a daily rate curve over the contact corpus, single
  service: the baseline "realistic day" shape.
* ``heavy-tail-sources`` — Zipf-skewed sources over the cascade corpus
  on a replicated cluster: hot-vertex read pressure.
* ``burst-arrival`` — MMPP bursts over the contact corpus on a cluster
  running the sd backend: clumped arrivals against batched maintenance.
* ``churn-window`` — the churn-storm corpus on a sharded fleet with a
  mid-run shard kill/restart: delete storms under degraded serving.
"""

from dataclasses import dataclass, field, replace

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``action`` at ``at`` (fraction of the run).

    Actions are interpreted by the replay engine against the scenario's
    fleet; today that is ``kill_shard`` / ``restart_shard`` with
    ``target`` naming the shard slot.
    """

    action: str
    at: float
    target: int = 0

    def __post_init__(self):
        if not 0.0 < self.at < 1.0:
            raise DatasetError(
                f"fault time must be a run fraction in (0, 1), got {self.at}"
            )


@dataclass(frozen=True)
class ReplayScenario:
    """Everything one replay run needs, as declarative data.

    ``corpus`` names a temporal corpus in :mod:`repro.datasets.registry`;
    ``warmup`` is the fraction of the log's span materialized as the
    bootstrap graph (the rest replays live).  ``query_rate`` is in
    queries per unit of *virtual* time; ``duration`` is the wall-clock
    seconds the virtual tail is scaled into.
    """

    name: str
    corpus: str
    fleet: str = "service"  # service | cluster | shard
    backend: str = "core"
    arrival: str = "poisson"
    arrival_kwargs: dict = field(default_factory=dict)
    picker: str = "uniform"
    picker_kwargs: dict = field(default_factory=dict)
    warmup: float = 0.35
    query_rate: float = 8.0
    duration: float = 1.5
    readers: int = 2
    batch_size: int = 8
    replicas: int = 2
    shards: int = 3
    sample_rate: float = 0.25
    reservoir: int = 512
    faults: tuple = ()

    def __post_init__(self):
        if self.fleet not in ("service", "cluster", "shard"):
            raise DatasetError(
                f"unknown fleet topology {self.fleet!r}; "
                f"known: service, cluster, shard"
            )
        if not 0.0 < self.warmup < 1.0:
            raise DatasetError(
                f"warmup must be a span fraction in (0, 1), got {self.warmup}"
            )
        if self.query_rate <= 0 or self.duration <= 0:
            raise DatasetError(
                "query_rate and duration must be positive "
                f"(got {self.query_rate}, {self.duration})"
            )
        if self.faults and self.fleet != "shard":
            raise DatasetError(
                f"fault schedules are interpreted against the shard fleet; "
                f"scenario {self.name!r} declares fleet {self.fleet!r}"
            )

    def replace(self, **changes):
        """A copy with ``changes`` applied (scenarios are immutable)."""
        return replace(self, **changes)

    def describe(self):
        """Flat summary dict (what bench reports record per scenario)."""
        return {
            "name": self.name,
            "corpus": self.corpus,
            "fleet": self.fleet,
            "backend": self.backend,
            "arrival": self.arrival,
            "picker": self.picker,
            "warmup": self.warmup,
            "query_rate": self.query_rate,
            "faults": [
                {"action": f.action, "at": f.at, "target": f.target}
                for f in self.faults
            ],
        }


#: the named scenario library (ISSUE 9's four shapes).
SCENARIOS = {
    "diurnal": ReplayScenario(
        name="diurnal",
        corpus="ENR",
        fleet="service",
        backend="core",
        arrival="diurnal",
        arrival_kwargs={"amplitude": 0.8, "cycles": 2.0},
        picker="uniform",
    ),
    "heavy-tail-sources": ReplayScenario(
        name="heavy-tail-sources",
        corpus="DIG",
        fleet="cluster",
        backend="core",
        arrival="poisson",
        picker="zipf",
        picker_kwargs={"alpha": 1.2},
    ),
    "burst-arrival": ReplayScenario(
        name="burst-arrival",
        corpus="ENR",
        fleet="cluster",
        backend="sd",
        arrival="bursty",
        arrival_kwargs={"burst_factor": 6.0, "mean_quiet": 8.0,
                        "mean_burst": 2.0},
        picker="uniform",
    ),
    "churn-window": ReplayScenario(
        name="churn-window",
        corpus="WBO",
        fleet="shard",
        backend="core",
        arrival="poisson",
        picker="hotset",
        picker_kwargs={"hot_size": 10, "hot_weight": 0.75},
        faults=(
            FaultSpec("kill_shard", at=0.4, target=0),
            FaultSpec("restart_shard", at=0.7, target=0),
        ),
    ),
}

#: the two cheap scenarios CI's replay-smoke job runs (quick profile).
QUICK_SCENARIOS = ("diurnal", "churn-window")


def scenario_names():
    """All named scenarios, library order."""
    return list(SCENARIOS)


def get_scenario(name):
    """Resolve a named scenario (typed error on unknown names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise DatasetError(
            f"unknown replay scenario {name!r}; "
            f"known: {', '.join(SCENARIOS)}"
        ) from None
