"""Temporal edge-list ingestion: SNAP / Konect-style dumps → event logs.

Real temporal graph dumps (Enron, Digg, Weibo-style interaction graphs)
ship as whitespace-separated lines, one edge event each::

    u v ts        # 3 columns: an edge insertion at time ts
    u v w ts      # 4 columns: w > 0 inserts (weight w), w < 0 deletes

which is the Konect ``out.*`` convention (the sign column encodes the
operation).  The parser is:

* **gzip-aware** — a path ending in ``.gz`` is opened transparently;
* **tolerant of comments and blank lines** — ``#`` / ``%`` prefixes and
  empty lines are skipped, as in :mod:`repro.graph.io`;
* **tolerant of duplicates and dangling deletes** — normalization
  (:meth:`~repro.replay.events.TemporalEventLog.from_raw`) drops them
  and counts what it dropped;
* **strict about malformed lines** — wrong column counts, non-numeric
  fields, zero sign-weights and self-loops raise a typed
  :class:`~repro.exceptions.DatasetError` naming the offending line.

Timestamps may be arbitrary floats in any order; the log sorts stably.
"""

import gzip
import os

from repro.exceptions import DatasetError
from repro.replay.events import DELETE, INSERT, TemporalEvent, TemporalEventLog

_COMMENT_PREFIXES = ("#", "%")


def _open_lines(source):
    """Yield lines from a path (gzip-aware), file object, or iterable.

    Returns (label, iterable, closer) — the label names the source in
    error messages.
    """
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        if path.endswith(".gz"):
            f = gzip.open(path, "rt")
        else:
            f = open(path)
        return path, f, f.close
    if hasattr(source, "read"):
        return getattr(source, "name", "<stream>"), source, lambda: None
    return "<lines>", iter(source), lambda: None


def _parse_line(label, lineno, parts, weighted):
    """One data line → one raw :class:`TemporalEvent` (or raise)."""
    if len(parts) not in (3, 4):
        raise DatasetError(
            f"{label}:{lineno}: expected 'u v ts' or 'u v w ts', "
            f"got {len(parts)} column(s): {' '.join(parts)!r}"
        )
    try:
        u = int(parts[0])
        v = int(parts[1])
        ts = float(parts[-1])
    except ValueError:
        raise DatasetError(
            f"{label}:{lineno}: non-numeric field in {' '.join(parts)!r}"
        ) from None
    if u == v:
        raise DatasetError(
            f"{label}:{lineno}: self-loop ({u}, {v}) is not a valid event"
        )
    if len(parts) == 3:
        return TemporalEvent(ts, INSERT, min(u, v), max(u, v),
                             1.0 if weighted else None)
    try:
        w = float(parts[2])
    except ValueError:
        raise DatasetError(
            f"{label}:{lineno}: non-numeric weight in {' '.join(parts)!r}"
        ) from None
    if w > 0:
        return TemporalEvent(ts, INSERT, min(u, v), max(u, v),
                             w if weighted else None)
    if w < 0:
        return TemporalEvent(ts, DELETE, min(u, v), max(u, v))
    raise DatasetError(
        f"{label}:{lineno}: zero sign-weight is ambiguous "
        f"(w > 0 inserts, w < 0 deletes)"
    )


def parse_temporal_edge_list(source, weighted=False, name=None):
    """Parse a temporal edge list into a :class:`TemporalEventLog`.

    ``source`` is a file path (``.gz`` transparently decompressed), an
    open text file, or any iterable of lines.  With ``weighted`` the
    positive sign-column magnitudes are kept as edge weights (and a
    repeated insert with a new weight normalizes to a ``set_weight``
    event); without it they only encode insert/delete.

    Malformed lines raise :class:`~repro.exceptions.DatasetError`;
    duplicates, dangling deletes and out-of-order timestamps are
    normalized (see :mod:`repro.replay.events`).
    """
    label, lines, close = _open_lines(source)
    raw = []
    try:
        for lineno, rawline in enumerate(lines, start=1):
            line = rawline.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            raw.append(_parse_line(label, lineno, line.split(), weighted))
    finally:
        close()
    return TemporalEventLog.from_raw(
        raw, name=name or os.path.basename(str(label)), weighted=weighted
    )


def write_temporal_edge_list(log, path, header=None):
    """Write a log in the canonical 4-column format (gzip-aware).

    Round-trips through :func:`parse_temporal_edge_list`: parsing the
    written file with the log's own ``weighted`` flag reproduces an
    event-identical log (the gzip round-trip test pins this).
    """
    opener = gzip.open if os.fspath(path).endswith(".gz") else open
    with opener(path, "wt") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for line in log.to_lines():
            f.write(line + "\n")
