"""Replay plans: everything deterministic, computed before the clock starts.

The reproducibility contract of a replay run — same scenario + same seed
⇒ byte-identical event sequences — is enforced structurally: *all*
randomness is spent here, ahead of time, building a :class:`ReplayPlan`:

* the corpus log is cut at the scenario's warmup point into a bootstrap
  graph plus a live tail, and the tail is pre-chunked into submission
  batches, each stamped with its virtual deadline;
* the full read schedule is laid out by the scenario's arrival process
  and every query's (s, t) pair is pre-drawn from its source picker.

The replay engine then only *paces* the plan against the wall clock
(virtual time → wall time via ``time_scale``); thread timing can change
how late things run, never what runs.  :meth:`ReplayPlan.fingerprint`
hashes the whole plan, so two runs can prove they replayed the same
bytes.
"""

import hashlib

from repro.exceptions import DatasetError
from repro.replay.events import events_to_updates
from repro.replay.traffic import make_arrival_process, make_source_picker


class ReplayPlan:
    """One scenario's precomputed schedule: batches to write, queries to ask.

    Attributes
    ----------
    bootstrap:
        The graph at the warmup cut (all corpus vertices present).
    batches:
        List of ``(virtual_ts, [update, ...])`` — the live tail, chunked
        into :attr:`scenario.batch_size` submissions; ``virtual_ts`` is
        the timestamp of the batch's last event (its virtual deadline).
    queries:
        List of ``(virtual_ts, s, t)`` — the full read schedule.
    time_scale:
        Virtual time units per wall-clock second; divides virtual
        offsets into wall offsets.
    """

    def __init__(self, scenario, log, seed=0):
        self.scenario = scenario
        self.log = log
        self.seed = seed
        if len(log) == 0:
            raise DatasetError(f"corpus {log.name!r} is empty")

        self.warm_t = log.t0 + log.span() * scenario.warmup
        self.bootstrap, tail = log.split(self.warm_t)
        if not tail:
            raise DatasetError(
                f"warmup {scenario.warmup} swallows the whole corpus "
                f"{log.name!r}; nothing left to replay"
            )
        self._tail_events = tail
        self.t_end = tail[-1].ts
        tail_span = self.t_end - self.warm_t
        self.time_scale = (tail_span / scenario.duration
                           if tail_span > 0 else 1.0)

        # Write plan: chunk the tail preserving order, stamp each chunk
        # with its last event's timestamp.
        self.batches = []
        size = max(1, scenario.batch_size)
        for i in range(0, len(tail), size):
            chunk = tail[i:i + size]
            self.batches.append(
                (chunk[-1].ts, events_to_updates(chunk))
            )

        # Read plan: arrivals over the live window, endpoints pre-drawn.
        arrivals = make_arrival_process(
            scenario.arrival, rate=scenario.query_rate, seed=seed + 101,
            **scenario.arrival_kwargs
        )
        picker = make_source_picker(
            scenario.picker, log.vertices(), seed=seed + 202,
            **scenario.picker_kwargs
        )
        self.queries = []
        for ts in arrivals.schedule(self.warm_t, self.t_end):
            s, t = picker.pick_pair()
            self.queries.append((ts, s, t))

    # ------------------------------------------------------------------

    @property
    def events_to_replay(self):
        """How many tail events the write path will submit."""
        return len(self._tail_events)

    def wall_offset(self, virtual_ts):
        """Wall-clock seconds after run start when ``virtual_ts`` is due."""
        return (virtual_ts - self.warm_t) / self.time_scale

    def reader_slices(self, readers):
        """Partition the read schedule round-robin across ``readers``.

        Round-robin (not contiguous blocks) so every reader spans the
        whole window — fault windows are observed by all of them.
        """
        return [self.queries[i::readers] for i in range(max(1, readers))]

    def fingerprint(self):
        """SHA-256 over the corpus log *and* the full read schedule.

        Equal fingerprints mean the two runs replayed byte-identical
        event sequences and asked byte-identical query sequences.
        """
        h = hashlib.sha256()
        h.update(self.log.fingerprint().encode("ascii"))
        for ts, s, t in self.queries:
            h.update(f"{ts:.6f} {s} {t}\n".encode("ascii"))
        return h.hexdigest()

    def describe(self):
        """The deterministic facts of this plan (bench reports pin these)."""
        return {
            "corpus": self.log.name,
            "corpus_events": len(self.log),
            "bootstrap_edges": self.bootstrap.num_edges,
            "bootstrap_vertices": self.bootstrap.num_vertices,
            "events_to_replay": self.events_to_replay,
            "batches": len(self.batches),
            "queries_planned": len(self.queries),
            "virtual_span": round(self.t_end - self.warm_t, 6),
            "time_scale": round(self.time_scale, 6),
            "fingerprint": self.fingerprint(),
        }
