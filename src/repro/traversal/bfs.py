"""BFS shortest-path counting — the ground truth and online baseline (§1).

``bfs_counting_sssp`` is the textbook single-source algorithm the paper's
introduction describes: track D[v] and C[v] during a BFS; a vertex first
reached at distance d inherits the predecessor's count, and every further
predecessor at distance d-1 adds its count.

These routines are the reference implementation every index answer is tested
against, so they are written for clarity first.
"""

from collections import deque

INF = float("inf")


def bfs_distance_sssp(graph, source):
    """Return {v: sd(source, v)} for every vertex reachable from ``source``."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dv + 1
                queue.append(w)
    return dist


def bfs_counting_sssp(graph, source):
    """Return ({v: sd(source, v)}, {v: spc(source, v)}) for reachable v."""
    dist = {source: 0}
    count = {source: 1}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        cv = count[v]
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dv + 1
                count[w] = cv
                queue.append(w)
            elif dist[w] == dv + 1:
                count[w] += cv
    return dist, count


def bfs_counting_pair(graph, source, target):
    """Return (sd, spc) between a pair, stopping once target's level closes.

    The BFS must finish the level at which ``target`` is found — counts at a
    level are only final when every vertex of the previous level has been
    expanded — so we run level-synchronized and stop after that level.
    """
    if source == target:
        return 0, 1
    dist = {source: 0}
    count = {source: 1}
    frontier = [source]
    d = 0
    while frontier:
        nxt = []
        for v in frontier:
            cv = count[v]
            for w in graph.neighbors(v):
                if w not in dist:
                    dist[w] = d + 1
                    count[w] = cv
                    nxt.append(w)
                elif dist[w] == d + 1:
                    count[w] += cv
        d += 1
        if target in dist and dist[target] == d:
            return d, count[target]
        frontier = nxt
    return INF, 0


def all_pairs_counting(graph):
    """Return {(s, t): (sd, spc)} for all ordered pairs with s != t.

    Quadratic-plus: only for small graphs (tests and the verifier).
    """
    answers = {}
    for s in graph.vertices():
        dist, count = bfs_counting_sssp(graph, s)
        for t in graph.vertices():
            if s == t:
                continue
            if t in dist:
                answers[(s, t)] = (dist[t], count[t])
            else:
                answers[(s, t)] = (INF, 0)
    return answers


def restricted_bfs_counting(graph, source, allowed):
    """Counting BFS where intermediate vertices are restricted to ``allowed``.

    Used to compute spc(v̂, ·) ground truth: paths from ``source`` may only
    pass through vertices in ``allowed`` (the source itself is always
    allowed; endpoints of a query must be in ``allowed`` to be reported).
    """
    dist = {source: 0}
    count = {source: 1}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        cv = count[v]
        for w in graph.neighbors(v):
            if w not in allowed:
                continue
            if w not in dist:
                dist[w] = dv + 1
                count[w] = cv
                queue.append(w)
            elif dist[w] == dv + 1:
                count[w] += cv
    return dist, count


def directed_bfs_counting_pair(graph, source, target):
    """Return (sd, spc) between a pair on a :class:`DiGraph`.

    Level-synchronized along out-arcs, like :func:`bfs_counting_pair`:
    counts at a level are final only once the previous level is fully
    expanded, so the search stops after closing the level where ``target``
    first appears.
    """
    if source == target:
        return 0, 1
    dist = {source: 0}
    count = {source: 1}
    frontier = [source]
    d = 0
    while frontier:
        nxt = []
        for v in frontier:
            cv = count[v]
            for w in graph.successors(v):
                if w not in dist:
                    dist[w] = d + 1
                    count[w] = cv
                    nxt.append(w)
                elif dist[w] == d + 1:
                    count[w] += cv
        d += 1
        if target in dist and dist[target] == d:
            return d, count[target]
        frontier = nxt
    return INF, 0


def directed_bfs_counting_sssp(graph, source, reverse=False):
    """Counting BFS on a :class:`DiGraph`.

    ``reverse=False`` follows out-arcs (distances *from* source);
    ``reverse=True`` follows in-arcs (distances *to* source).
    """
    step = graph.predecessors if reverse else graph.successors
    dist = {source: 0}
    count = {source: 1}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        cv = count[v]
        for w in step(v):
            if w not in dist:
                dist[w] = dv + 1
                count[w] = cv
                queue.append(w)
            elif dist[w] == dv + 1:
                count[w] += cv
    return dist, count
