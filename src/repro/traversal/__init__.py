"""Traversal engines: BFS / bidirectional-BFS / Dijkstra counting."""

from repro.traversal.bfs import (
    INF,
    all_pairs_counting,
    bfs_counting_pair,
    bfs_counting_sssp,
    bfs_distance_sssp,
    directed_bfs_counting_pair,
    directed_bfs_counting_sssp,
    restricted_bfs_counting,
)
from repro.traversal.bibfs import bibfs_counting
from repro.traversal.dijkstra import dijkstra_counting_pair, dijkstra_counting_sssp

__all__ = [
    "INF",
    "bfs_distance_sssp",
    "bfs_counting_sssp",
    "bfs_counting_pair",
    "all_pairs_counting",
    "restricted_bfs_counting",
    "directed_bfs_counting_pair",
    "directed_bfs_counting_sssp",
    "bibfs_counting",
    "dijkstra_counting_sssp",
    "dijkstra_counting_pair",
]
