"""Dijkstra shortest-path counting — the weighted substrate (Appendix C.2).

Counting with Dijkstra follows the same recurrence as the BFS version, with
the one extra rule that counts are only final when a vertex is settled
(popped with its minimal distance); we use the standard lazy-deletion
priority queue and skip stale entries.
"""

import heapq

INF = float("inf")


def dijkstra_counting_sssp(graph, source):
    """Return ({v: sd(source, v)}, {v: spc(source, v)}) on a WeightedGraph."""
    dist = {source: 0}
    count = {source: 1}
    settled = set()
    heap = [(0, source)]
    while heap:
        dv, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        for w, weight in graph.neighbors(v).items():
            cand = dv + weight
            dw = dist.get(w)
            if dw is None or cand < dw:
                dist[w] = cand
                count[w] = count[v]
                heapq.heappush(heap, (cand, w))
            elif cand == dw and w not in settled:
                count[w] += count[v]
    return dist, count


def dijkstra_counting_pair(graph, source, target):
    """Return (sd, spc) between a pair; stops once ``target`` is settled
    *and* every path that could still tie has been accounted for."""
    if source == target:
        return 0, 1
    dist = {source: 0}
    count = {source: 1}
    settled = set()
    heap = [(0, source)]
    while heap:
        dv, v = heapq.heappop(heap)
        if v in settled:
            continue
        # Ties into ``target`` are all relaxed before target pops, because
        # contributing predecessors have strictly smaller distance (positive
        # weights) and hence were settled earlier.
        if v == target:
            return dv, count[v]
        settled.add(v)
        for w, weight in graph.neighbors(v).items():
            cand = dv + weight
            dw = dist.get(w)
            if dw is None or cand < dw:
                dist[w] = cand
                count[w] = count[v]
                heapq.heappush(heap, (cand, w))
            elif cand == dw and w not in settled:
                count[w] += count[v]
    return INF, 0
