"""Bidirectional BFS shortest-path counting — the paper's query baseline.

From §4.1.2: "The BiBFS algorithm conducts BFS searches from both query
vertices and selects the side with the smaller queue size to continue each
iteration until a common vertex from both sides is found.  Lastly, accumulate
the shortest path counting with minimum distance from all common vertices."

Counting correctness requires care: paths must be counted at exactly one
meeting vertex each.  We expand whole levels (so counts at completed levels
are final), stop once the best meeting distance μ can no longer improve
(any unseen path has length ≥ ds + dt + 1), and then count through the
unique vertex each shortest path has at distance ``ds`` from the source:

    spc(s, t) = Σ_{w : D_s[w] = ds, D_t[w] = μ - ds} C_s[w] · C_t[w]
"""

INF = float("inf")


def bibfs_counting(graph, source, target):
    """Return (sd(source, target), spc(source, target)) via bidirectional BFS."""
    if source == target:
        return 0, 1
    dist_s = {source: 0}
    count_s = {source: 1}
    dist_t = {target: 0}
    count_t = {target: 1}
    frontier_s = [source]
    frontier_t = [target]
    done_s = 0  # completed BFS depth on the source side
    done_t = 0
    best = INF

    while frontier_s and frontier_t and done_s + done_t + 1 <= best:
        # Expand the smaller frontier, as the paper specifies.
        if len(frontier_s) <= len(frontier_t):
            frontier_s = _expand_level(graph, frontier_s, dist_s, count_s)
            done_s += 1
            best = _improve(frontier_s, dist_s, dist_t, best)
        else:
            frontier_t = _expand_level(graph, frontier_t, dist_t, count_t)
            done_t += 1
            best = _improve(frontier_t, dist_t, dist_s, best)

    if best is INF:
        return INF, 0

    # Count through the unique vertex at distance done_s from the source on
    # each shortest path.  Both sides are complete to the needed depths:
    # done_s by construction and best - done_s <= done_t by the loop guard.
    split = done_s
    total = 0
    for w, dw in dist_s.items():
        if dw == split and dist_t.get(w) == best - split:
            total += count_s[w] * count_t[w]
    return best, total


def _expand_level(graph, frontier, dist, count):
    """Expand one full BFS level; returns the new frontier."""
    next_frontier = []
    d = dist[frontier[0]] if frontier else 0
    for v in frontier:
        cv = count[v]
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = d + 1
                count[w] = cv
                next_frontier.append(w)
            elif dist[w] == d + 1:
                count[w] += cv
    return next_frontier


def _improve(new_frontier, dist_mine, dist_other, best):
    """Update the best meeting distance using the freshly expanded level."""
    for w in new_frontier:
        dw_other = dist_other.get(w)
        if dw_other is not None:
            candidate = dist_mine[w] + dw_other
            if candidate < best:
                best = candidate
    return best
