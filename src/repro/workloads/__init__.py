"""Workload generators: update streams and query batches."""

from repro.workloads.queries import random_pairs, stratified_pairs_by_distance
from repro.workloads.updates import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
    edge_degree,
    hybrid_stream,
    is_weighted_graph,
    random_deletions,
    random_insertions,
    random_weight_changes,
    skewed_deletions,
    skewed_insertions,
    vertex_churn,
)

__all__ = [
    "InsertEdge",
    "DeleteEdge",
    "InsertVertex",
    "DeleteVertex",
    "SetWeight",
    "is_weighted_graph",
    "random_insertions",
    "random_deletions",
    "random_weight_changes",
    "hybrid_stream",
    "skewed_insertions",
    "skewed_deletions",
    "edge_degree",
    "vertex_churn",
    "random_pairs",
    "stratified_pairs_by_distance",
]
