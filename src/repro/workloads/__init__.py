"""Workload generators: update streams and query batches."""

from repro.workloads.queries import random_pairs, stratified_pairs_by_distance
from repro.workloads.updates import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
    edge_degree,
    hybrid_stream,
    random_deletions,
    random_insertions,
    skewed_deletions,
    skewed_insertions,
    vertex_churn,
)

__all__ = [
    "InsertEdge",
    "DeleteEdge",
    "InsertVertex",
    "DeleteVertex",
    "SetWeight",
    "random_insertions",
    "random_deletions",
    "hybrid_stream",
    "skewed_insertions",
    "skewed_deletions",
    "edge_degree",
    "vertex_churn",
    "random_pairs",
    "stratified_pairs_by_distance",
]
