"""Update-stream workload generators (§4.1.1, §4.4, §4.5).

The paper's update experiments draw from four workload shapes:

* random **edge insertions** — 1,000 random new edges per graph (§4.1.1);
* random **edge deletions** — k ∈ {50, 100} random existing edges (§4.1.1);
* **hybrid streams** — 100 insertions mixed with 10 deletions (§4.4);
* **degree-skewed** updates — edges picked by deg(u)·deg(v) buckets (§4.5).

Updates are small objects with an ``apply(dynamic)`` method so streams can
be replayed against any oracle exposing the DynamicSPC mutation API.

The generators are weight-aware: when the target graph is weighted (it
exposes ``set_weight``), insertions carry a sampled weight, deletions
record the deleted weight (so ``undo()`` reconstructs an applicable
insertion), and :func:`hybrid_stream` mixes in :class:`SetWeight` updates —
so the same stream machinery drives all three engine backends.
"""

import random
from dataclasses import dataclass

from repro.exceptions import WorkloadError

#: default (min, max) for integer weights drawn by the weight-aware
#: generators — small ints keep shortest-path ties exact.
DEFAULT_WEIGHT_RANGE = (1, 10)


def is_weighted_graph(graph):
    """True when ``graph`` takes edge weights (duck-typed on set_weight)."""
    return hasattr(graph, "set_weight")


def _edge_pairs(graph):
    """Sorted (u, v) pairs of ``graph``'s edges, weights stripped."""
    if is_weighted_graph(graph):
        return sorted((u, v) for u, v, _ in graph.edges())
    return sorted(graph.edges())


@dataclass(frozen=True)
class InsertEdge:
    """Insert edge (u, v); ``weight`` only applies on weighted graphs."""

    u: int
    v: int
    weight: float = None

    def apply(self, dynamic):
        """Apply to an SPCEngine-like oracle."""
        if self.weight is None:
            return dynamic.insert_edge(self.u, self.v)
        return dynamic.insert_edge(self.u, self.v, self.weight)

    def undo(self):
        """The inverse update (carries the weight so undo round-trips)."""
        return DeleteEdge(self.u, self.v, self.weight)

    def __repr__(self):
        suffix = f", weight={self.weight!r}" if self.weight is not None else ""
        return f"InsertEdge(u={self.u!r}, v={self.v!r}{suffix})"


@dataclass(frozen=True)
class DeleteEdge:
    """Delete edge (u, v).

    ``weight`` is never needed to apply the deletion; it exists so that on
    weighted graphs the caller can record the deleted edge's weight and
    ``undo()`` can reconstruct an applicable insertion.
    """

    u: int
    v: int
    weight: float = None

    def apply(self, dynamic):
        """Apply to an SPCEngine-like oracle."""
        return dynamic.delete_edge(self.u, self.v)

    def undo(self):
        """The inverse update (carries the weight when one was recorded)."""
        return InsertEdge(self.u, self.v, self.weight)

    def __repr__(self):
        suffix = f", weight={self.weight!r}" if self.weight is not None else ""
        return f"DeleteEdge(u={self.u!r}, v={self.v!r}{suffix})"


@dataclass(frozen=True)
class SetWeight:
    """Set edge (u, v)'s weight (weighted graphs only)."""

    u: int
    v: int
    weight: float

    def apply(self, dynamic):
        """Apply to an SPCEngine-like oracle."""
        return dynamic.set_weight(self.u, self.v, self.weight)


@dataclass(frozen=True)
class InsertVertex:
    """Insert vertex v with optional initial edges."""

    v: int
    edges: tuple = ()

    def apply(self, dynamic):
        """Apply to a DynamicSPC-like oracle."""
        return dynamic.insert_vertex(self.v, edges=self.edges)


@dataclass(frozen=True)
class DeleteVertex:
    """Delete vertex v and all incident edges."""

    v: int

    def apply(self, dynamic):
        """Apply to a DynamicSPC-like oracle."""
        return dynamic.delete_vertex(self.v)


def random_insertions(graph, k, seed=0, max_tries_factor=200,
                      weight_range=DEFAULT_WEIGHT_RANGE):
    """Sample ``k`` distinct non-edges of ``graph`` as InsertEdge updates.

    The sampled pairs are disjoint from existing edges and from each other,
    so the whole batch can be applied in any order.  On weighted graphs
    each insertion carries an integer weight drawn from ``weight_range``.
    """
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("need at least two vertices to insert edges")
    weighted = is_weighted_graph(graph)
    rng = random.Random(seed)
    chosen = set()
    updates = []
    tries = 0
    limit = max_tries_factor * max(k, 1)
    while len(updates) < k:
        tries += 1
        if tries > limit:
            raise WorkloadError(
                f"could not find {k} absent edges after {limit} tries "
                f"(graph too dense?)"
            )
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key in chosen or graph.has_edge(u, v):
            continue
        chosen.add(key)
        if weighted:
            updates.append(InsertEdge(*key, weight=rng.randint(*weight_range)))
        else:
            updates.append(InsertEdge(*key))
    return updates


def random_deletions(graph, k, seed=0):
    """Sample ``k`` distinct existing edges of ``graph`` as DeleteEdge updates.

    On weighted graphs the deleted weight is recorded on the update so
    ``undo()`` can reconstruct an applicable insertion.
    """
    edges = _edge_pairs(graph)
    if k > len(edges):
        raise WorkloadError(f"cannot delete {k} edges from a graph with {len(edges)}")
    rng = random.Random(seed)
    picked = rng.sample(edges, k)
    if is_weighted_graph(graph):
        return [DeleteEdge(u, v, weight=graph.weight(u, v)) for u, v in picked]
    return [DeleteEdge(u, v) for u, v in picked]


def random_weight_changes(graph, k, seed=0, weight_range=DEFAULT_WEIGHT_RANGE,
                          exclude=()):
    """Sample ``k`` SetWeight updates on distinct existing edges.

    ``exclude`` lists normalized (u, v) pairs to skip (e.g. edges already
    scheduled for deletion in the same stream).  The new weight is drawn
    from ``weight_range`` and nudged off the current weight so the update
    is never a no-op (unless the range is a single value).
    """
    if not is_weighted_graph(graph):
        raise WorkloadError("weight changes need a weighted graph")
    excluded = {(u, v) if u <= v else (v, u) for u, v in exclude}
    edges = [e for e in _edge_pairs(graph) if e not in excluded]
    if k > len(edges):
        raise WorkloadError(
            f"cannot change {k} weights: only {len(edges)} eligible edges"
        )
    rng = random.Random(seed)
    picked = rng.sample(edges, k)
    lo, hi = weight_range
    updates = []
    for u, v in picked:
        w = rng.randint(lo, hi)
        if w == graph.weight(u, v) and lo != hi:
            w = w + 1 if w < hi else w - 1
        updates.append(SetWeight(u, v, w))
    return updates


def hybrid_stream(graph, insertions=100, deletions=10, seed=0,
                  set_weights=None, weight_range=DEFAULT_WEIGHT_RANGE):
    """An interleaved stream of insertions and deletions (Figure 10).

    Deletions are spread evenly through the insertion stream.  Inserted
    edges are fresh non-edges; deleted edges are sampled from the original
    edge set (disjoint from the insertions, so order cannot conflict).

    On weighted graphs the stream is weight-aware: insertions carry
    weights, and ``set_weights`` :class:`SetWeight` updates (defaulting to
    the deletion count) on surviving edges are interleaved alongside the
    deletions.  ``set_weights`` is rejected on unweighted graphs.
    """
    weighted = is_weighted_graph(graph)
    if set_weights is None:
        set_weights = deletions if weighted else 0
    elif set_weights and not weighted:
        raise WorkloadError("set_weights requires a weighted graph")
    ins = random_insertions(graph, insertions, seed=seed,
                            weight_range=weight_range)
    dels = random_deletions(graph, deletions, seed=seed + 1)
    mixers = list(dels)
    if set_weights:
        mixers.extend(random_weight_changes(
            graph, set_weights, seed=seed + 2, weight_range=weight_range,
            exclude=[(d.u, d.v) for d in dels],
        ))
    if not mixers:
        return list(ins)
    stream = []
    gap = max(1, insertions // max(len(mixers), 1))
    mi = 0
    for i, upd in enumerate(ins):
        stream.append(upd)
        if (i + 1) % gap == 0 and mi < len(mixers):
            stream.append(mixers[mi])
            mi += 1
    stream.extend(mixers[mi:])
    return stream


def edge_degree(graph, u, v):
    """The paper's §4.5 notion of edge degree: deg(u) * deg(v)."""
    return graph.degree(u) * graph.degree(v)


def skewed_insertions(graph, k, seed=0, bucket="high",
                      weight_range=DEFAULT_WEIGHT_RANGE):
    """Sample ``k`` absent edges skewed by endpoint-degree product.

    ``bucket`` selects the skew: "high" favours high-degree endpoints,
    "low" favours low-degree ones, "uniform" matches random_insertions.
    Used by the Figure 11 experiment, which sorts updates by edge degree.
    Weighted graphs get weighted insertions, as in :func:`random_insertions`.
    """
    if bucket == "uniform":
        return random_insertions(graph, k, seed=seed, weight_range=weight_range)
    weighted = is_weighted_graph(graph)
    vertices = list(graph.vertices())
    rng = random.Random(seed)
    reverse = bucket == "high"
    by_degree = sorted(vertices, key=graph.degree, reverse=reverse)
    pool = by_degree[: max(2, len(by_degree) // 5)]
    chosen = set()
    updates = []
    tries = 0
    while len(updates) < k and tries < 500 * max(k, 1):
        tries += 1
        u = rng.choice(pool)
        v = rng.choice(vertices)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key in chosen or graph.has_edge(u, v):
            continue
        chosen.add(key)
        if weighted:
            updates.append(InsertEdge(*key, weight=rng.randint(*weight_range)))
        else:
            updates.append(InsertEdge(*key))
    if len(updates) < k:
        raise WorkloadError(f"could not find {k} skewed absent edges")
    return updates


def skewed_deletions(graph, k, seed=0, bucket="high"):
    """Sample ``k`` existing edges skewed by deg(u)·deg(v) (Figure 11).

    Weighted graphs get the deleted weight recorded, as in
    :func:`random_deletions`.
    """
    edges = _edge_pairs(graph)
    if k > len(edges):
        raise WorkloadError(f"cannot delete {k} edges from a graph with {len(edges)}")
    if bucket == "uniform":
        return random_deletions(graph, k, seed=seed)
    scored = sorted(edges, key=lambda e: edge_degree(graph, *e),
                    reverse=(bucket == "high"))
    pool = scored[: max(k, len(scored) // 5)]
    rng = random.Random(seed)
    picked = rng.sample(pool, k)
    if is_weighted_graph(graph):
        return [DeleteEdge(u, v, weight=graph.weight(u, v)) for u, v in picked]
    return [DeleteEdge(u, v) for u, v in picked]


def vertex_churn(graph, inserts=10, deletes=10, seed=0, attach=3):
    """A vertex-level workload: new vertices with edges, plus removals.

    Exercises the §3 vertex-insertion/deletion paths of the dynamic facade.
    New vertex ids continue after the current maximum id.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if not vertices:
        raise WorkloadError("vertex churn needs a non-empty graph")
    next_id = max(vertices) + 1
    updates = []
    for i in range(inserts):
        targets = tuple(rng.sample(vertices, min(attach, len(vertices))))
        updates.append(InsertVertex(next_id + i, targets))
    victims = rng.sample(vertices, min(deletes, len(vertices)))
    updates.extend(DeleteVertex(v) for v in victims)
    rng.shuffle(updates)
    return updates
