"""Update-stream workload generators (§4.1.1, §4.4, §4.5).

The paper's update experiments draw from four workload shapes:

* random **edge insertions** — 1,000 random new edges per graph (§4.1.1);
* random **edge deletions** — k ∈ {50, 100} random existing edges (§4.1.1);
* **hybrid streams** — 100 insertions mixed with 10 deletions (§4.4);
* **degree-skewed** updates — edges picked by deg(u)·deg(v) buckets (§4.5).

Updates are small objects with an ``apply(dynamic)`` method so streams can
be replayed against any oracle exposing the DynamicSPC mutation API.
"""

import random
from dataclasses import dataclass

from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class InsertEdge:
    """Insert edge (u, v); ``weight`` only applies on weighted graphs."""

    u: int
    v: int
    weight: float = None

    def apply(self, dynamic):
        """Apply to an SPCEngine-like oracle."""
        if self.weight is None:
            return dynamic.insert_edge(self.u, self.v)
        return dynamic.insert_edge(self.u, self.v, self.weight)

    def undo(self):
        """The inverse update."""
        return DeleteEdge(self.u, self.v)

    def __repr__(self):
        suffix = f", weight={self.weight!r}" if self.weight is not None else ""
        return f"InsertEdge(u={self.u!r}, v={self.v!r}{suffix})"


@dataclass(frozen=True)
class DeleteEdge:
    """Delete edge (u, v).

    ``weight`` is never needed to apply the deletion; it exists so that on
    weighted graphs the caller can record the deleted edge's weight and
    ``undo()`` can reconstruct an applicable insertion.
    """

    u: int
    v: int
    weight: float = None

    def apply(self, dynamic):
        """Apply to an SPCEngine-like oracle."""
        return dynamic.delete_edge(self.u, self.v)

    def undo(self):
        """The inverse update (carries the weight when one was recorded)."""
        return InsertEdge(self.u, self.v, self.weight)

    def __repr__(self):
        suffix = f", weight={self.weight!r}" if self.weight is not None else ""
        return f"DeleteEdge(u={self.u!r}, v={self.v!r}{suffix})"


@dataclass(frozen=True)
class SetWeight:
    """Set edge (u, v)'s weight (weighted graphs only)."""

    u: int
    v: int
    weight: float

    def apply(self, dynamic):
        """Apply to an SPCEngine-like oracle."""
        return dynamic.set_weight(self.u, self.v, self.weight)


@dataclass(frozen=True)
class InsertVertex:
    """Insert vertex v with optional initial edges."""

    v: int
    edges: tuple = ()

    def apply(self, dynamic):
        """Apply to a DynamicSPC-like oracle."""
        return dynamic.insert_vertex(self.v, edges=self.edges)


@dataclass(frozen=True)
class DeleteVertex:
    """Delete vertex v and all incident edges."""

    v: int

    def apply(self, dynamic):
        """Apply to a DynamicSPC-like oracle."""
        return dynamic.delete_vertex(self.v)


def random_insertions(graph, k, seed=0, max_tries_factor=200):
    """Sample ``k`` distinct non-edges of ``graph`` as InsertEdge updates.

    The sampled pairs are disjoint from existing edges and from each other,
    so the whole batch can be applied in any order.
    """
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("need at least two vertices to insert edges")
    rng = random.Random(seed)
    chosen = set()
    updates = []
    tries = 0
    limit = max_tries_factor * max(k, 1)
    while len(updates) < k:
        tries += 1
        if tries > limit:
            raise WorkloadError(
                f"could not find {k} absent edges after {limit} tries "
                f"(graph too dense?)"
            )
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key in chosen or graph.has_edge(u, v):
            continue
        chosen.add(key)
        updates.append(InsertEdge(*key))
    return updates


def random_deletions(graph, k, seed=0):
    """Sample ``k`` distinct existing edges of ``graph`` as DeleteEdge updates."""
    edges = sorted(graph.edges())
    if k > len(edges):
        raise WorkloadError(f"cannot delete {k} edges from a graph with {len(edges)}")
    rng = random.Random(seed)
    picked = rng.sample(edges, k)
    return [DeleteEdge(u, v) for u, v in picked]


def hybrid_stream(graph, insertions=100, deletions=10, seed=0):
    """An interleaved stream of insertions and deletions (Figure 10).

    Deletions are spread evenly through the insertion stream.  Inserted
    edges are fresh non-edges; deleted edges are sampled from the original
    edge set (disjoint from the insertions, so order cannot conflict).
    """
    ins = random_insertions(graph, insertions, seed=seed)
    dels = random_deletions(graph, deletions, seed=seed + 1)
    if deletions == 0:
        return list(ins)
    stream = []
    gap = max(1, insertions // max(deletions, 1))
    di = 0
    for i, upd in enumerate(ins):
        stream.append(upd)
        if (i + 1) % gap == 0 and di < len(dels):
            stream.append(dels[di])
            di += 1
    stream.extend(dels[di:])
    return stream


def edge_degree(graph, u, v):
    """The paper's §4.5 notion of edge degree: deg(u) * deg(v)."""
    return graph.degree(u) * graph.degree(v)


def skewed_insertions(graph, k, seed=0, bucket="high"):
    """Sample ``k`` absent edges skewed by endpoint-degree product.

    ``bucket`` selects the skew: "high" favours high-degree endpoints,
    "low" favours low-degree ones, "uniform" matches random_insertions.
    Used by the Figure 11 experiment, which sorts updates by edge degree.
    """
    if bucket == "uniform":
        return random_insertions(graph, k, seed=seed)
    vertices = list(graph.vertices())
    rng = random.Random(seed)
    reverse = bucket == "high"
    by_degree = sorted(vertices, key=graph.degree, reverse=reverse)
    pool = by_degree[: max(2, len(by_degree) // 5)]
    chosen = set()
    updates = []
    tries = 0
    while len(updates) < k and tries < 500 * max(k, 1):
        tries += 1
        u = rng.choice(pool)
        v = rng.choice(vertices)
        if u == v:
            continue
        key = (u, v) if u <= v else (v, u)
        if key in chosen or graph.has_edge(u, v):
            continue
        chosen.add(key)
        updates.append(InsertEdge(*key))
    if len(updates) < k:
        raise WorkloadError(f"could not find {k} skewed absent edges")
    return updates


def skewed_deletions(graph, k, seed=0, bucket="high"):
    """Sample ``k`` existing edges skewed by deg(u)·deg(v) (Figure 11)."""
    edges = sorted(graph.edges())
    if k > len(edges):
        raise WorkloadError(f"cannot delete {k} edges from a graph with {len(edges)}")
    if bucket == "uniform":
        return random_deletions(graph, k, seed=seed)
    scored = sorted(edges, key=lambda e: edge_degree(graph, *e),
                    reverse=(bucket == "high"))
    pool = scored[: max(k, len(scored) // 5)]
    rng = random.Random(seed)
    picked = rng.sample(pool, k)
    return [DeleteEdge(u, v) for u, v in picked]


def vertex_churn(graph, inserts=10, deletes=10, seed=0, attach=3):
    """A vertex-level workload: new vertices with edges, plus removals.

    Exercises the §3 vertex-insertion/deletion paths of the dynamic facade.
    New vertex ids continue after the current maximum id.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if not vertices:
        raise WorkloadError("vertex churn needs a non-empty graph")
    next_id = max(vertices) + 1
    updates = []
    for i in range(inserts):
        targets = tuple(rng.sample(vertices, min(attach, len(vertices))))
        updates.append(InsertVertex(next_id + i, targets))
    victims = rng.sample(vertices, min(deletes, len(vertices)))
    updates.extend(DeleteVertex(v) for v in victims)
    rng.shuffle(updates)
    return updates
