"""Query workload generators (§4.1.1: "10,000 random pairs of vertices")."""

import random

from repro.exceptions import WorkloadError


def random_pairs(graph, k, seed=0, distinct=False):
    """Sample ``k`` (s, t) query pairs uniformly over the vertex set.

    ``distinct=True`` forces s != t, matching how the paper's query
    workloads avoid trivial self-pairs.
    """
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("need at least two vertices to sample pairs")
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < k:
        s = rng.choice(vertices)
        t = rng.choice(vertices)
        if distinct and s == t:
            continue
        pairs.append((s, t))
    return pairs


def stratified_pairs_by_distance(graph, index, k_per_bucket, buckets=(1, 2, 3, 4),
                                 seed=0, max_tries=200000):
    """Sample query pairs stratified by shortest distance.

    Useful for studying query latency as a function of distance (labeling
    query time is distance-independent, BiBFS is not — the effect behind
    Figure 7(c)'s gap).  Returns {bucket: [(s, t), ...]}.
    """
    vertices = sorted(graph.vertices())
    rng = random.Random(seed)
    out = {b: [] for b in buckets}
    want = set(buckets)
    tries = 0
    while want and tries < max_tries:
        tries += 1
        s = rng.choice(vertices)
        t = rng.choice(vertices)
        if s == t:
            continue
        d = index.distance(s, t)
        if d in out and len(out[d]) < k_per_bucket:
            out[d].append((s, t))
            if len(out[d]) >= k_per_bucket:
                want.discard(d)
    return out
