"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for invalid graph operations (duplicate edges, missing vertices...)."""


class VertexNotFound(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex):
        self.vertex = vertex
        super().__init__(f"vertex {vertex!r} is not in the graph")


class EdgeNotFound(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u, v):
        self.edge = (u, v)
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")


class DuplicateEdge(GraphError):
    """Raised when inserting an edge that already exists (simple graphs only)."""

    def __init__(self, u, v):
        self.edge = (u, v)
        super().__init__(f"edge ({u!r}, {v!r}) already exists")


class DuplicateVertex(GraphError):
    """Raised when inserting a vertex id that already exists."""

    def __init__(self, vertex):
        self.vertex = vertex
        super().__init__(f"vertex {vertex!r} already exists")


class SelfLoop(GraphError):
    """Raised when inserting a self-loop; the paper's graphs are simple."""

    def __init__(self, vertex):
        self.vertex = vertex
        super().__init__(f"self-loop at vertex {vertex!r} is not allowed")


class IndexCorruption(ReproError):
    """Raised when an index invariant check fails (see repro.verify)."""


class OrderingError(ReproError):
    """Raised for invalid vertex orderings (missing or duplicated vertices)."""


class WorkloadError(ReproError):
    """Raised when a workload generator cannot satisfy its constraints."""


class DatasetError(ReproError):
    """Raised when a dataset name is unknown or a dataset fails to build."""


class EngineError(ReproError):
    """Raised for engine misuse: unknown backends, bad configs, or
    operations the selected backend does not support."""


class ReadOnlyError(ReproError):
    """Raised when a mutation is attempted on an immutable snapshot view.

    :class:`repro.serve.SnapshotView` pins one published epoch of the
    index; writes must go through :meth:`repro.serve.SPCService.submit`
    so the writer thread applies them and publishes a fresh snapshot.
    """


class ServeError(ReproError):
    """Raised for serving-layer misuse or failure: submitting to a closed
    service, a flush/checkpoint timeout, a dead writer thread, or a
    corrupt checkpoint/WAL file."""


class CheckpointMismatchError(ServeError):
    """Raised when a checkpoint and a WAL do not describe the same state:
    the WAL was written by a different backend family than the checkpoint
    restores, or the checkpoint's index payload does not match its declared
    backend.  Replaying such a pair would raise deep inside the engine at
    best and silently diverge at worst, so restore refuses up front."""


class WalCorruptionError(ServeError):
    """Raised when a durably acknowledged storage record fails validation:
    a WAL or label-journal line whose CRC32 stamp does not match its
    content (a bit flip, a torn write glued onto a later append), a
    newline-terminated line that no longer parses, or a checkpoint whose
    checksum disagrees with its payload.

    The typed signal the resilience layer keys on: a tailing follower
    treats it as a stream gap and re-bootstraps, and the
    :class:`~repro.resilience.Supervisor` repairs the stream (fresh
    checkpoint + truncated log) before restarting members that died on
    it — corrupted bytes are *detected and refused*, never served.
    """


class AuditDivergenceError(ServeError):
    """Raised when differential verification catches a served answer that
    does not match the trusted baseline (see :mod:`repro.audit`).

    Carries the offending WAL sequence number and the structured
    :class:`~repro.audit.Divergence` records, so a fail-fast sink or a
    strict harness can report exactly which consistency point went wrong
    instead of a bare assert.
    """

    def __init__(self, message, seq=None, divergences=()):
        self.seq = seq
        self.divergences = list(divergences)
        super().__init__(message)


class ClusterError(ReproError):
    """Raised for cluster-layer misuse or failure: routing when no target
    satisfies the staleness bound, querying a dead replica, a replica that
    failed to bootstrap or diverged from the replication stream, or a
    fault-injection harness observing an inconsistency."""


class ShardError(ClusterError):
    """Raised by the hub-partitioned sharding layer (:mod:`repro.shard`):
    a partitioner that does not cover the hub space, a scatter-gather read
    that cannot assemble a consistent cross-shard cut, or a query routed
    while a shard is down — the router *refuses* rather than serving a
    partial (hence silently wrong) merged answer."""


class ObsError(ReproError):
    """Raised on observability-layer misuse (:mod:`repro.obs`): an invalid
    metric name, one name registered under two instrument kinds, setting a
    callback-bound gauge, or decrementing a counter."""
