"""repro.bench.serve — the serving layer under mixed read/update load.

Runs :func:`repro.serve.loadgen.run_loadgen` once per backend family and
tabulates read throughput, latency percentiles, applied-update counts and
snapshot staleness.  Consistency checking is always on — a snapshot
regression, torn read or rejected update fails the run with
:class:`~repro.exceptions.ServeError` — while the timing numbers are
recorded, never judged (CI's serve-smoke job runs the quick profile and
fails on crash/inconsistency only).

Results land in ``bench_results/serve.json`` via
``repro-bench serve --save-dir bench_results``.
"""

from repro.bench.tables import ExperimentResult, Table
from repro.serve.loadgen import run_loadgen


def run(config):
    """Run the serve loadgen per backend; returns an ExperimentResult."""
    result = ExperimentResult(
        name="serve",
        description="snapshot-isolated service under mixed read/update "
                    "load (N readers + 1 writer, consistency-checked)",
    )
    n, m = config.serve_graph
    table = Table(
        f"loadgen: {config.serve_readers} readers, {config.serve_duration}s, "
        f"ER({n}, {m})",
        ["backend", "read_qps", "p50_ms", "p99_ms", "applied",
         "snapshots", "max_lag", "max_staleness_ms"],
    )
    for backend in config.serve_backends:
        report = run_loadgen(
            backend=backend,
            readers=config.serve_readers,
            duration=config.serve_duration,
            n=n,
            m=m,
            churn=config.serve_churn,
            seed=config.seed,
            telemetry=config.telemetry,
        )
        table.add_row(
            backend,
            report["read_qps"],
            report["read_latency_ms"]["p50"],
            report["read_latency_ms"]["p99"],
            report["updates_applied"],
            report["snapshots_published"],
            report["lag_batches"]["max"],
            report["staleness_ms"]["max"],
        )
        result.extra[backend] = report
    result.tables.append(table)
    return result
