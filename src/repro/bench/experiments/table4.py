"""Table 4: index size, index time, and average Inc/Dec update time.

The paper's headline table: per graph, the HP-SPC construction time and
index size, against the average per-update cost of IncSPC (over random
insertions) and DecSPC (over random deletions).  The reproduction claim is
about *shape*: IncSPC and DecSPC must be orders of magnitude below the
rebuild time, with DecSPC the slower of the two.
"""

from repro.bench.experiments.common import prepare, run_deletions, run_insertions
from repro.bench.tables import ExperimentResult, Table


def run(config):
    """Regenerate Table 4 for the configured datasets."""
    table = Table(
        "Table 4: Index Size (MB), Index Time and Average Inc/Dec Update Time (sec)",
        ["Graph", "L Size (MB)", "L Time (s)", "IncSPC (s)", "DecSPC (s)",
         "Inc speedup", "Dec speedup"],
    )
    extra = {}
    for name in config.datasets:
        prep = prepare(name)
        inc = run_insertions(name, config.insertions, config.seed)
        dec = run_deletions(name, config.deletions_for(name), config.seed + 1)
        avg_inc = sum(inc.elapsed) / len(inc.elapsed)
        avg_dec = sum(dec.elapsed) / len(dec.elapsed)

        table.add_row(
            name,
            prep.index_bytes / 1_000_000,
            prep.build_seconds,
            avg_inc,
            avg_dec,
            prep.build_seconds / avg_inc if avg_inc else float("inf"),
            prep.build_seconds / avg_dec if avg_dec else float("inf"),
        )
        extra[name] = {
            "inc_times": inc.elapsed,
            "dec_times": dec.elapsed,
            "index_entries": prep.index_entries,
        }
    return ExperimentResult(
        name="table4",
        description="index construction vs dynamic update cost",
        tables=[table],
        extra=extra,
    )
