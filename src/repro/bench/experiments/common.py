"""Shared machinery for the experiment runners.

``PreparedDataset`` bundles a dataset graph with its freshly built index and
the measured construction time; ``prepare`` memoizes per dataset so a full
harness run builds each index exactly once (IND's build dominates the run).
Runners always *copy* the graph/index before applying updates, so prepared
state stays pristine.
"""

import time

from repro.core import build_spc_index
from repro.datasets import load_dataset


class PreparedDataset:
    """A dataset graph plus its SPC-Index and build statistics."""

    def __init__(self, name):
        self.name = name
        self.graph = load_dataset(name)
        start = time.perf_counter()
        self.index = build_spc_index(self.graph)
        self.build_seconds = time.perf_counter() - start
        self.index_entries = self.index.num_entries
        self.index_bytes = self.index.size_bytes

    def fresh(self):
        """Return (graph copy, index copy) safe to mutate."""
        return self.graph.copy(), self.index.copy()


_PREPARED = {}
_WORKLOAD_RUNS = {}


def prepare(name):
    """Memoized dataset preparation."""
    if name not in _PREPARED:
        _PREPARED[name] = PreparedDataset(name)
    return _PREPARED[name]


def clear_prepared():
    """Drop all memoized datasets and workload runs (used by tests)."""
    _PREPARED.clear()
    _WORKLOAD_RUNS.clear()


class WorkloadRun:
    """The outcome of applying one update batch to a fresh dataset copy.

    Shared by every experiment that reports on the same workload — exactly
    like the paper, which times, counts label operations and measures SR/R
    sizes over a single batch of random updates per graph.
    """

    def __init__(self, name, kind, count, seed):
        from repro.workloads import random_deletions, random_insertions

        prep = prepare(name)
        self.graph, self.index = prep.fresh()
        if kind == "insert":
            updates = random_insertions(self.graph, count, seed=seed)
        elif kind == "delete":
            updates = random_deletions(self.graph, count, seed=seed)
        else:
            raise ValueError(f"unknown workload kind {kind!r}")
        self.stats = apply_updates(self.graph, self.index, updates)

    @property
    def elapsed(self):
        """Per-update wall-clock seconds."""
        return [s.elapsed for s in self.stats]


def run_insertions(name, count, seed):
    """Memoized random-insertion batch on dataset ``name``."""
    key = (name, "insert", count, seed)
    if key not in _WORKLOAD_RUNS:
        _WORKLOAD_RUNS[key] = WorkloadRun(name, "insert", count, seed)
    return _WORKLOAD_RUNS[key]


def run_deletions(name, count, seed):
    """Memoized random-deletion batch on dataset ``name``."""
    key = (name, "delete", count, seed)
    if key not in _WORKLOAD_RUNS:
        _WORKLOAD_RUNS[key] = WorkloadRun(name, "delete", count, seed)
    return _WORKLOAD_RUNS[key]


def apply_updates(graph, index, updates):
    """Apply a list of workload updates through the engine, collecting stats.

    Drives an :class:`SPCEngine` over the given (graph, index) pair — the
    backend is auto-selected, so the same harness path times undirected,
    directed and weighted streams.  The query cache is off: these runs
    measure the *update* algorithms, and cache bookkeeping would only add
    noise.  Returns the list of per-update :class:`UpdateStats` with
    ``elapsed`` filled in.
    """
    from repro.engine import EngineConfig, SPCEngine

    engine = SPCEngine(graph, config=EngineConfig(cache_size=0), index=index)
    return engine.apply_stream(updates)
