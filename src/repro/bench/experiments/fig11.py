"""Figure 11: update times under degree-skewed edge selection.

The paper varies the degree of the inserted/deleted edges — defined as
deg(u)·deg(v) — and finds *no significant correlation* with update time.
We regenerate that by sampling updates from low / uniform / high degree
buckets and reporting the mean update time per bucket; the reproduction
claim is that no bucket dominates by orders of magnitude.
"""

from repro.bench.experiments.common import apply_updates, prepare
from repro.bench.tables import ExperimentResult, Table
from repro.workloads import edge_degree, skewed_deletions, skewed_insertions

BUCKETS = ["low", "uniform", "high"]


def run(config):
    """Regenerate Figure 11 for the streaming datasets."""
    inc_table = Table(
        "Figure 11 (IncSPC): mean insertion time (ms) by edge-degree bucket",
        ["Graph", "low", "uniform", "high", "mean edge degree (low/high)"],
    )
    dec_table = Table(
        "Figure 11 (DecSPC): mean deletion time (ms) by edge-degree bucket",
        ["Graph", "low", "uniform", "high", "mean edge degree (low/high)"],
    )
    extra = {}
    for name in config.streaming_datasets:
        prep = prepare(name)
        inc_ms = {}
        inc_degrees = {}
        dec_ms = {}
        dec_degrees = {}
        for bucket in BUCKETS:
            graph, index = prep.fresh()
            ins = skewed_insertions(
                graph, config.skew_insertions, seed=config.seed, bucket=bucket
            )
            inc_degrees[bucket] = (
                sum(edge_degree(graph, u.u, u.v) for u in ins) / len(ins)
            )
            stats = apply_updates(graph, index, ins)
            inc_ms[bucket] = sum(s.elapsed for s in stats) / len(stats) * 1e3

            graph, index = prep.fresh()
            dels = skewed_deletions(
                graph, config.skew_deletions, seed=config.seed + 1, bucket=bucket
            )
            dec_degrees[bucket] = (
                sum(edge_degree(graph, u.u, u.v) for u in dels) / len(dels)
            )
            stats = apply_updates(graph, index, dels)
            dec_ms[bucket] = sum(s.elapsed for s in stats) / len(stats) * 1e3

        inc_table.add_row(
            name, inc_ms["low"], inc_ms["uniform"], inc_ms["high"],
            f"{inc_degrees['low']:.0f} / {inc_degrees['high']:.0f}",
        )
        dec_table.add_row(
            name, dec_ms["low"], dec_ms["uniform"], dec_ms["high"],
            f"{dec_degrees['low']:.0f} / {dec_degrees['high']:.0f}",
        )
        extra[name] = {
            "inc_ms": inc_ms, "dec_ms": dec_ms,
            "inc_mean_edge_degree": inc_degrees,
            "dec_mean_edge_degree": dec_degrees,
        }
    return ExperimentResult(
        name="fig11",
        description="degree-skewed updates (no strong degree correlation expected)",
        tables=[inc_table, dec_table],
        extra=extra,
    )
