"""Table 3: the statistics of the graphs.

The paper lists the ten evaluation graphs with their vertex and edge counts;
this runner prints the synthetic analogues next to the paper's originals so
the scale-down factor is explicit.
"""

from repro.datasets import dataset_statistics
from repro.bench.tables import ExperimentResult, Table


def run(config):
    """Build (or fetch) every dataset and report n / m vs the paper."""
    table = Table(
        "Table 3: The Statistics of The Graphs (synthetic analogues)",
        ["Graph", "Paper graph", "n", "m", "paper n", "paper m"],
    )
    for name in config.datasets:
        row = dataset_statistics(name)
        table.add_row(
            row["key"], row["paper_name"], row["n"], row["m"],
            row["paper_n"], row["paper_m"],
        )
    return ExperimentResult(
        name="table3",
        description="dataset statistics (scaled-down synthetic analogues)",
        tables=[table],
    )
