"""Figure 10: accumulated running time and index-size change of a hybrid
streaming update (insertions mixed with deletions) on BKS, WAR and IND.

The paper streams 100 insertions + 10 deletions; running time accumulates
gradually with occasional jumps at expensive deletions, and the total index
size change stays negligible next to the index itself.
"""

from repro.bench.experiments.common import apply_updates, prepare
from repro.bench.tables import ExperimentResult, Table
from repro.workloads import hybrid_stream


def run(config):
    """Regenerate Figure 10 for the streaming datasets."""
    table = Table(
        "Figure 10: Streaming Update — accumulated time and index size change",
        ["Graph", "Updates", "Total time (s)", "Avg (s)", "Max step (s)",
         "Size change (KB)", "Size change / index"],
    )
    extra = {}
    for name in config.streaming_datasets:
        prep = prepare(name)
        graph, index = prep.fresh()
        stream = hybrid_stream(
            graph,
            insertions=config.stream_insertions,
            deletions=config.stream_deletions,
            seed=config.seed,
        )
        stats = apply_updates(graph, index, stream)
        accumulated = []
        total = 0.0
        size_series = []
        net_entries = 0
        for s in stats:
            total += s.elapsed
            accumulated.append(total)
            net_entries += s.inserted - s.removed
            size_series.append(net_entries * 8)
        size_change = net_entries * 8
        table.add_row(
            name,
            len(stats),
            total,
            total / len(stats),
            max(s.elapsed for s in stats),
            size_change / 1000,
            size_change / prep.index_bytes,
        )
        extra[name] = {
            "accumulated_seconds": accumulated,
            "size_change_bytes": size_series,
            "kinds": [s.kind for s in stats],
        }
    return ExperimentResult(
        name="fig10",
        description="hybrid streaming updates (accumulated cost + size drift)",
        tables=[table],
        extra=extra,
    )
