"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's evaluation and quantify *why* the paper's design
decisions matter:

* ``sd_pruning``      — transplanting the SD-Index pruning rule (prune on
  d_L <= D) silently corrupts counts; measures the corruption rate.
* ``ordering``        — degree vs random vertex ordering: build time, index
  size, query latency.
* ``isolated_vertex`` — the §3.2.3 fast path vs the general DecSPC on
  pendant-edge deletions.
* ``aff``             — how small the affected-hub set AFF = L(a) ∪ L(b) is
  relative to all n potential BFS roots, and how few vertices the pruned
  BFSs actually visit.
"""

import random
import time

from repro.bench.experiments.common import apply_updates, prepare
from repro.bench.tables import ExperimentResult, Table
from repro.core import build_spc_index, dec_spc, inc_spc
from repro.exceptions import IndexCorruption
from repro.sd import inc_spc_sd_pruning
from repro.verify import verify_espc
from repro.workloads import random_insertions, random_pairs


def run_sd_pruning(config):
    """Corruption rate of the SD-style (non-strict) pruning rule."""
    table = Table(
        "Ablation: SD-style pruning rule transplanted to the SPC-Index",
        ["Graph", "Insertions", "Corrupted runs (strict)", "Corrupted runs (SD-style)"],
    )
    extra = {}
    for name in config.datasets[:2]:  # two graphs suffice to show the effect
        prep = prepare(name)
        corrupt_strict = 0
        corrupt_sd = 0
        runs = min(config.insertions, 12)
        ins = random_insertions(prep.graph, runs, seed=config.seed)
        for upd in ins:
            g1, i1 = prep.fresh()
            inc_spc(g1, i1, upd.u, upd.v)
            if not _espc_ok(g1, i1, seed=config.seed):
                corrupt_strict += 1
            g2, i2 = prep.fresh()
            inc_spc_sd_pruning(g2, i2, upd.u, upd.v)
            if not _espc_ok(g2, i2, seed=config.seed):
                corrupt_sd += 1
        table.add_row(name, runs, corrupt_strict, corrupt_sd)
        extra[name] = {"runs": runs, "strict": corrupt_strict, "sd": corrupt_sd}
    return ExperimentResult(
        name="ablation_sd_pruning",
        description="why the WWW'14 pruning rule cannot maintain counts",
        tables=[table],
        extra=extra,
    )


def _espc_ok(graph, index, seed):
    try:
        verify_espc(graph, index, sample_pairs=200, seed=seed)
        return True
    except IndexCorruption:
        return False


def run_ordering(config):
    """Degree-based vs random vertex ordering."""
    table = Table(
        "Ablation: vertex ordering (degree vs random)",
        ["Graph", "Build deg (s)", "Build rnd (s)", "Entries deg", "Entries rnd",
         "Query deg (us)", "Query rnd (us)"],
    )
    extra = {}
    for name in config.datasets[: min(4, len(config.datasets))]:
        prep = prepare(name)
        graph = prep.graph

        start = time.perf_counter()
        rnd_index = build_spc_index(graph, strategy="random")
        rnd_build = time.perf_counter() - start

        pairs = random_pairs(graph, min(config.queries, 500), seed=config.seed)
        deg_us = _query_us(prep.index, pairs)
        rnd_us = _query_us(rnd_index, pairs)
        table.add_row(
            name, prep.build_seconds, rnd_build,
            prep.index_entries, rnd_index.num_entries, deg_us, rnd_us,
        )
        extra[name] = {
            "entries_ratio": rnd_index.num_entries / prep.index_entries,
        }
    return ExperimentResult(
        name="ablation_ordering",
        description="degree ordering shrinks the index and speeds queries",
        tables=[table],
        extra=extra,
    )


def _query_us(index, pairs):
    start = time.perf_counter()
    for s, t in pairs:
        index.query(s, t)
    return (time.perf_counter() - start) / len(pairs) * 1e6


def run_isolated_vertex(config):
    """§3.2.3 fast path vs general DecSPC on pendant-edge deletions.

    The synthetic analogues have minimum degree >= 2 by construction, so
    when a graph has no natural pendants we synthesize them: attach fresh
    leaf vertices (lowest rank, exactly as vertex insertion works) and then
    time deleting their single edge — precisely the §3.2.3 scenario.
    """
    table = Table(
        "Ablation: isolated-vertex optimization (pendant deletions)",
        ["Graph", "Pendants", "Fast path (ms)", "General (ms)", "Speedup"],
    )
    extra = {}
    for name in config.datasets[: min(4, len(config.datasets))]:
        prep = prepare(name)
        graph, index = prep.fresh()
        pendants = _pendant_edges(graph, index, limit=8)
        synthesized = 0
        if len(pendants) < 5:
            synthesized = _attach_pendants(graph, index, count=5, seed=config.seed)
            pendants = _pendant_edges(graph, index, limit=8)
        fast_ms = _time_deletions(graph, index, pendants, use_fast_path=True)
        slow_ms = _time_deletions(graph, index, pendants, use_fast_path=False)
        table.add_row(
            name, len(pendants), fast_ms, slow_ms,
            slow_ms / fast_ms if fast_ms else float("inf"),
        )
        extra[name] = {"pendants": [list(p) for p in pendants],
                       "synthesized": synthesized}
    return ExperimentResult(
        name="ablation_isolated_vertex",
        description="the degree-1 deletion fast path avoids all repair BFSs",
        tables=[table],
        extra=extra,
    )


def _attach_pendants(graph, index, count, seed):
    """Attach ``count`` fresh degree-1 vertices through IncSPC."""
    rng = random.Random(seed)
    anchors = rng.sample(sorted(graph.vertices()), count)
    next_id = max(v for v in graph.vertices() if isinstance(v, int)) + 1
    for i, anchor in enumerate(anchors):
        v = next_id + i
        graph.add_vertex(v)
        index.add_vertex(v)
        inc_spc(graph, index, anchor, v)
    return count


def _pendant_edges(graph, index, limit):
    """Edges whose deletion qualifies for the fast path (pendant ranks lower)."""
    rank = index.order.rank_map()
    out = []
    for u, v in sorted(graph.edges()):
        if graph.degree(v) == 1 and rank[u] <= rank[v]:
            out.append((u, v))
        elif graph.degree(u) == 1 and rank[v] <= rank[u]:
            out.append((v, u))
        if len(out) >= limit:
            break
    return out


def _time_deletions(base_graph, base_index, edges, use_fast_path):
    total = 0.0
    for u, v in edges:
        graph, index = base_graph.copy(), base_index.copy()
        start = time.perf_counter()
        dec_spc(graph, index, u, v, use_isolated_fast_path=use_fast_path)
        total += time.perf_counter() - start
    return total / len(edges) * 1e3


def run_aff(config):
    """How selective the AFF = L(a) ∪ L(b) root set is."""
    table = Table(
        "Ablation: AFF root selectivity for IncSPC",
        ["Graph", "n", "Avg |AFF|", "AFF / n", "Avg BFS visits", "Visits / n"],
    )
    extra = {}
    for name in config.datasets:
        prep = prepare(name)
        graph, index = prep.fresh()
        n = graph.num_vertices
        ins = random_insertions(graph, min(config.insertions, 30), seed=config.seed)
        stats = apply_updates(graph, index, ins)
        avg_aff = sum(s.affected_hubs for s in stats) / len(stats)
        avg_visits = sum(s.bfs_visits for s in stats) / len(stats)
        table.add_row(name, n, avg_aff, avg_aff / n, avg_visits, avg_visits / n)
        extra[name] = {"aff": [s.affected_hubs for s in stats]}
    return ExperimentResult(
        name="ablation_aff",
        description="the affected-hub set is a small fraction of all vertices",
        tables=[table],
        extra=extra,
    )
