"""Figure 9: average label operations per DecSPC update, including removals.

Renewed labels (especially RenewC) should dominate; the net index-size
change is Insert − Remove and stays within kilobytes.
"""

from repro.bench.experiments.common import run_deletions
from repro.bench.tables import ExperimentResult, Table


def run(config):
    """Regenerate Figure 9 for the configured datasets."""
    table = Table(
        "Figure 9: Avg Renewed / Inserted / Removed Labels per Decremental Update",
        ["Graph", "RenewC", "RenewD", "Insert", "Remove", "Net bytes"],
    )
    extra = {}
    for name in config.datasets:
        stats = run_deletions(name, config.deletions_for(name), config.seed + 1).stats
        k = len(stats)
        renew_c = sum(s.renew_count for s in stats) / k
        renew_d = sum(s.renew_dist for s in stats) / k
        inserted = sum(s.inserted for s in stats) / k
        removed = sum(s.removed for s in stats) / k
        table.add_row(
            name, renew_c, renew_d, inserted, removed, (inserted - removed) * 8,
        )
        extra[name] = {
            "per_update": [
                {"renew_c": s.renew_count, "renew_d": s.renew_dist,
                 "insert": s.inserted, "remove": s.removed,
                 "fast_path": s.isolated_fast_path}
                for s in stats
            ]
        }
    return ExperimentResult(
        name="fig9",
        description="label-operation breakdown for decremental updates",
        tables=[table],
        extra=extra,
    )
