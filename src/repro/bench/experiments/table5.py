"""Table 5: average sizes of the affected sets SRa, SRb, Ra, Rb.

The decremental algorithm's efficiency hinges on |SR| (the hubs that get a
repair BFS) being much smaller than |R| (vertices whose labels are merely
touched).  Following the paper, sides are swapped per update so SRa always
denotes the larger hub set.
"""

from repro.bench.experiments.common import run_deletions
from repro.bench.tables import ExperimentResult, Table


def run(config):
    """Regenerate Table 5 for the configured datasets."""
    table = Table(
        "Table 5: Average size of SRa, SRb, Ra, Rb",
        ["Graph", "SRa", "SRb", "Ra", "Rb", "|SR| / (|SR|+|R|)"],
    )
    extra = {}
    for name in config.datasets:
        dec = run_deletions(name, config.deletions_for(name), config.seed + 1)
        stats = dec.stats
        # The isolated-vertex fast path skips SrrSEARCH; only general-path
        # deletions contribute, as in the paper's measurement.
        general = [s for s in stats if not s.isolated_fast_path]
        if not general:
            table.add_row(name, 0, 0, 0, 0, 0.0)
            continue
        sr_a = sr_b = r_a = r_b = 0
        for s in general:
            big, small = (s.sr_a, s.sr_b) if s.sr_a >= s.sr_b else (s.sr_b, s.sr_a)
            big_r, small_r = (s.r_a, s.r_b) if s.sr_a >= s.sr_b else (s.r_b, s.r_a)
            sr_a += big
            sr_b += small
            r_a += big_r
            r_b += small_r
        k = len(general)
        sr_total = sr_a + sr_b
        r_total = r_a + r_b
        ratio = sr_total / (sr_total + r_total) if sr_total + r_total else 0.0
        table.add_row(name, sr_a / k, sr_b / k, r_a / k, r_b / k, ratio)
        extra[name] = {
            "general_deletions": k,
            "fast_path_deletions": len(stats) - k,
        }
    return ExperimentResult(
        name="table5",
        description="affected-set cardinalities for decremental updates",
        tables=[table],
        extra=extra,
    )
