"""Figure 8: average number of renewed / inserted labels per IncSPC update.

RenewD (distance renewed) should be the minority everywhere — a new edge
mostly creates extra equal-length shortest paths — and the Insert column
doubles as the average index growth (x 8 bytes per entry).
"""

from repro.bench.experiments.common import run_insertions
from repro.bench.tables import ExperimentResult, Table


def run(config):
    """Regenerate Figure 8 for the configured datasets."""
    table = Table(
        "Figure 8: Avg Renewed / Inserted Labels per Incremental Update",
        ["Graph", "RenewC", "RenewD", "Insert", "Index growth (bytes)"],
    )
    extra = {}
    for name in config.datasets:
        stats = run_insertions(name, config.insertions, config.seed).stats
        k = len(stats)
        renew_c = sum(s.renew_count for s in stats) / k
        renew_d = sum(s.renew_dist for s in stats) / k
        inserted = sum(s.inserted for s in stats) / k
        table.add_row(name, renew_c, renew_d, inserted, inserted * 8)
        extra[name] = {
            "per_update": [
                {"renew_c": s.renew_count, "renew_d": s.renew_dist,
                 "insert": s.inserted}
                for s in stats
            ]
        }
    return ExperimentResult(
        name="fig8",
        description="label-operation breakdown for incremental updates",
        tables=[table],
        extra=extra,
    )
