"""Experiment runners, one module per paper table/figure plus ablations."""
