"""Figure 7: distributions of running times.

(a) per-insertion IncSPC times (median, p25, p75) against the index
    construction time (the blue line in the paper's scatter plot);
(b) the same for DecSPC deletions;
(c) query time — BiBFS vs the labeling SpcQUERY, evaluated on the original
    index ("ori") and on the indexes after the incremental ("inc") and
    decremental ("dec") update batches.
"""

import time

from repro.bench.experiments.common import prepare, run_deletions, run_insertions
from repro.bench.tables import ExperimentResult, Table
from repro.bench.timing import distribution_summary
from repro.traversal import bibfs_counting
from repro.workloads import random_pairs


def run(config):
    """Regenerate Figure 7's three panels as tables + raw series."""
    inc_table = Table(
        "Figure 7(a): Incremental Update Time distribution (s)",
        ["Graph", "p25", "median", "p75", "max", "index time"],
    )
    dec_table = Table(
        "Figure 7(b): Decremental Update Time distribution (s)",
        ["Graph", "p25", "median", "p75", "max", "index time"],
    )
    query_table = Table(
        "Figure 7(c): Query Time (us/query)",
        ["Graph", "BiBFS", "Label (ori)", "Label (inc)", "Label (dec)",
         "BiBFS / Label(ori)"],
    )
    extra = {}
    for name in config.datasets:
        prep = prepare(name)

        inc = run_insertions(name, config.insertions, config.seed)
        inc_summary = distribution_summary(inc.elapsed)
        inc_table.add_row(
            name, inc_summary["p25"], inc_summary["median"], inc_summary["p75"],
            inc_summary["max"], prep.build_seconds,
        )

        dec = run_deletions(name, config.deletions_for(name), config.seed + 1)
        dec_summary = distribution_summary(dec.elapsed)
        dec_table.add_row(
            name, dec_summary["p25"], dec_summary["median"], dec_summary["p75"],
            dec_summary["max"], prep.build_seconds,
        )

        pairs = random_pairs(prep.graph, config.queries, seed=config.seed + 2)
        bibfs_us = _time_queries(lambda s, t: bibfs_counting(prep.graph, s, t), pairs)
        ori_us = _time_queries(prep.index.query, pairs)
        # Post-update indexes answer over their own (mutated) graphs; the
        # paper's point is that update batches leave query latency intact.
        inc_us = _time_queries(inc.index.query, pairs)
        dec_us = _time_queries(dec.index.query, pairs)
        query_table.add_row(
            name, bibfs_us, ori_us, inc_us, dec_us,
            bibfs_us / ori_us if ori_us else float("inf"),
        )
        extra[name] = {
            "inc_distribution": inc_summary,
            "dec_distribution": dec_summary,
            "query_us": {
                "bibfs": bibfs_us, "ori": ori_us, "inc": inc_us, "dec": dec_us,
            },
        }
    return ExperimentResult(
        name="fig7",
        description="running time distributions and query latency",
        tables=[inc_table, dec_table, query_table],
        extra=extra,
    )


def _time_queries(query, pairs):
    """Average microseconds per query over the workload."""
    start = time.perf_counter()
    for s, t in pairs:
        query(s, t)
    elapsed = time.perf_counter() - start
    return elapsed / len(pairs) * 1e6
