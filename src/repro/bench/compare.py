"""Perf-trajectory comparison against a committed baseline (opt-in).

``bench_results/`` records the hot-path numbers per PR; this module turns
them into a regression gate::

    repro-bench micro --compare bench_results/micro.json --tolerance 0.5

re-runs the experiment and exits nonzero when any tracked metric regressed
beyond the tolerance (0.5 = 50% slower than the baseline).  It is **off by
default everywhere**: CI's perf-smoke job never passes ``--compare``
(shared runners make timing nondeterministic), so the gate is a local
tool — run it before committing a hot-path change, against the baseline
the previous PR committed.

Only experiments registered in :data:`METRIC_EXTRACTORS` are comparable;
each extractor picks the stable, meaningful numbers out of the result's
``extra`` payload (never table formatting) and declares which direction is
better.  Improvements are reported but never fail the run.
"""

import json

_LOWER = "lower"
_HIGHER = "higher"


def _micro_metrics(extra):
    """Tracked metrics for repro.bench.micro: all seconds/us, lower wins."""
    metrics = {}
    for row in extra.get("isolated_deletion", []):
        metrics[f"isolated_deletion.fast_path_us[n={row['n']}]"] = (
            row["fast_path_us"], _LOWER,
        )
    batch = extra.get("batch_queries")
    if batch:
        metrics["batch_queries.batched_seconds"] = (
            batch["batched_seconds"], _LOWER,
        )
    for kind, summary in extra.get("update_latency", {}).items():
        metrics[f"update_latency.{kind}.mean_s"] = (summary["mean"], _LOWER)
    return metrics


def _serve_metrics(extra):
    """Tracked metrics for repro.bench.serve: throughput up, latency down."""
    metrics = {}
    for backend, report in extra.items():
        metrics[f"{backend}.read_qps"] = (report["read_qps"], _HIGHER)
        metrics[f"{backend}.read_latency_p99_ms"] = (
            report["read_latency_ms"]["p99"], _LOWER,
        )
    return metrics


def _cluster_metrics(extra):
    """Tracked metrics for repro.bench.cluster: routed throughput up,
    latency and kill-to-converged recovery time down."""
    metrics = {}
    for backend, report in extra.items():
        metrics[f"{backend}.read_qps"] = (report["read_qps"], _HIGHER)
        metrics[f"{backend}.read_latency_p99_ms"] = (
            report["read_latency_ms"]["p99"], _LOWER,
        )
        catch_up = report.get("fault_injection", {}).get("catch_up_ms")
        if catch_up is not None:
            metrics[f"{backend}.catch_up_ms"] = (catch_up, _LOWER)
    return metrics


def _audit_metrics(extra):
    """Tracked metrics for repro.bench.audit: tap overhead and audited
    throughput down/up respectively; detection latency is a clean-run
    no-op so only the overhead and coverage numbers are tracked."""
    metrics = {}
    overhead = extra.get("overhead", {})
    if "overhead_pct" in overhead:
        metrics["overhead_pct"] = (overhead["overhead_pct"], _LOWER)
    for backend, report in extra.get("runs", {}).items():
        metrics[f"{backend}.read_qps"] = (report["read_qps"], _HIGHER)
        audited = report.get("auditor", {}).get("audited")
        if audited is not None:
            metrics[f"{backend}.answers_audited"] = (audited, _HIGHER)
    return metrics


def _shard_metrics(extra):
    """Tracked metrics for repro.bench.shard: scatter-gather throughput
    up, merge latency down, and the per-shard peak memory ratio down —
    the last is the 1/K criterion's headroom, so growth there means the
    slices are fattening relative to the unsharded index."""
    metrics = {}
    for backend, report in extra.get("runs", {}).items():
        metrics[f"{backend}.read_qps"] = (report["read_qps"], _HIGHER)
        metrics[f"{backend}.read_latency_p99_ms"] = (
            report["read_latency_ms"]["p99"], _LOWER,
        )
        ratios = report.get("memory", {}).get("peak_ratio", {})
        if ratios:
            metrics[f"{backend}.max_peak_ratio"] = (
                max(ratios.values()), _LOWER,
            )
    return metrics


def _chaos_metrics(extra):
    """Tracked metrics for repro.bench.chaos: worst-case MTTR down and
    under-chaos read throughput up.  Detection/heal counts are judged
    strictly inside the loadgen (a miss fails the experiment outright),
    so only the recovery-speed trajectory is tracked here."""
    metrics = {}
    for key, report in extra.get("runs", {}).items():
        mttr_max = report.get("mttr_s", {}).get("max")
        if mttr_max is not None:
            metrics[f"{key}.mttr_max_ms"] = (
                round(mttr_max * 1e3, 1), _LOWER,
            )
        metrics[f"{key}.read_qps"] = (report["read_qps"], _HIGHER)
    return metrics


def _replay_metrics(extra):
    """Tracked metrics for repro.bench.replay: per-scenario answered
    throughput up, tail read latency down, audit coverage up.  Event and
    query counts are deterministic per seed and judged strictly inside
    the loadgen, so only the serving-quality trajectory is tracked."""
    metrics = {}
    for name, report in extra.get("runs", {}).items():
        metrics[f"{name}.read_qps"] = (report["read_qps"], _HIGHER)
        metrics[f"{name}.read_latency_p99_ms"] = (
            report["read_latency_ms"]["p99"], _LOWER,
        )
        metrics[f"{name}.audited"] = (
            report["auditor"]["audited"], _HIGHER,
        )
    return metrics


def _obs_metrics(extra):
    """Tracked metrics for repro.bench.obs: instrumentation overhead and
    the instrumented read path's tail latency down.  Stage-sum
    reconciliation and counter determinism are judged strictly inside
    the experiment (a violation fails the run outright), so only the
    cost trajectory is tracked here."""
    metrics = {}
    overhead = extra.get("overhead", {})
    if "overhead_pct" in overhead:
        metrics["overhead_pct"] = (overhead["overhead_pct"], _LOWER)
    if "instrumented_us_per_query" in overhead:
        metrics["instrumented_us_per_query"] = (
            overhead["instrumented_us_per_query"], _LOWER,
        )
    e2e = extra.get("e2e", {})
    if e2e.get("p99") is not None:
        metrics["read_latency_p99_ms"] = (
            round(e2e["p99"] * 1e3, 4), _LOWER,
        )
    return metrics


#: experiment name -> extra-payload metric extractor.
METRIC_EXTRACTORS = {
    "micro": _micro_metrics,
    "serve": _serve_metrics,
    "cluster": _cluster_metrics,
    "audit": _audit_metrics,
    "shard": _shard_metrics,
    "chaos": _chaos_metrics,
    "replay": _replay_metrics,
    "obs": _obs_metrics,
}


def extract_metrics(result_name, extra):
    """Extract ``{metric: (value, direction)}`` for one experiment.

    The single extraction seam shared by the opt-in ``--compare`` gate
    and the recorded perf trajectory (:mod:`repro.audit.trajectory`), so
    the two regression mechanisms can never track different numbers.
    Returns ``None`` for experiments with no tracked metrics.
    """
    extractor = METRIC_EXTRACTORS.get(result_name)
    if extractor is None:
        return None
    return extractor(extra)


def compare_result(result, baseline_path, tolerance):
    """Compare one fresh ExperimentResult against a committed baseline.

    Returns (regressions, report_lines): ``regressions`` lists dicts for
    every metric worse than ``baseline * (1 + tolerance)`` (or better-is-
    higher mirrored); ``report_lines`` is the full human-readable account,
    one line per shared metric.
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    lines = []
    if baseline.get("name") != result.name:
        lines.append(
            f"[compare] baseline {baseline_path} records "
            f"{baseline.get('name')!r}, not {result.name!r}; skipping"
        )
        return [], lines
    current = extract_metrics(result.name, result.extra)
    if current is None:
        lines.append(
            f"[compare] no tracked metrics for {result.name!r} "
            f"(comparable: {sorted(METRIC_EXTRACTORS)}); skipping"
        )
        return [], lines
    base = extract_metrics(result.name, baseline.get("extra", {}))
    regressions = []
    for name in sorted(current):
        if name not in base:
            lines.append(f"[compare] {name}: new metric, no baseline")
            continue
        cur_value, direction = current[name]
        base_value, _ = base[name]
        if not base_value:
            lines.append(f"[compare] {name}: baseline is 0, skipped")
            continue
        if direction == _LOWER:
            change = (cur_value - base_value) / base_value
        else:
            change = (base_value - cur_value) / base_value
        verdict = "ok"
        if change > tolerance:
            verdict = "REGRESSION"
            regressions.append({
                "metric": name,
                "baseline": base_value,
                "current": cur_value,
                "change": change,
                "direction": direction,
            })
        elif change < 0:
            verdict = "improved"
        lines.append(
            f"[compare] {name}: {base_value:.6g} -> {cur_value:.6g} "
            f"({change:+.1%} {'slower' if direction == _LOWER else 'worse'}"
            f" bound {tolerance:.0%}) {verdict}"
        )
    for name in sorted(set(base) - set(current)):
        lines.append(f"[compare] {name}: present in baseline only")
    return regressions, lines
