"""repro.bench.replay — temporal scenario replay across the whole stack.

Each configured scenario (see :mod:`repro.replay.scenario`) replays its
temporal corpus tail through its fleet topology — single service,
replicated cluster, or sharded fleet with a mid-run kill/restart — under
its shaped read traffic, with the shadow audit tapped on the read path
and judged strictly: zero divergences, every planned event submitted,
every planned query issued, refusals only where a fault schedule
explains them.

Two reproducibility guarantees are recorded per scenario:

* the **fingerprint** — SHA-256 over the corpus event sequence and the
  full query schedule; same scenario + same seed hashes identically on
  any machine (the determinism test pins this);
* the **deterministic block** — event/query/batch counts and the
  warmup cut, identical across same-seed runs.

Latency percentiles, refusal counts and audit tallies are recorded,
never judged (the house timing rule).  Results land in
``bench_results/replay.json`` via ``repro-bench replay --save-dir``.
"""

from repro.bench.tables import ExperimentResult, Table
from repro.replay.loadgen import run_replay_scenario


def run(config):
    """Replay every configured scenario; returns an ExperimentResult."""
    corpus_kwargs = None
    if config.replay_corpus_events:
        corpus_kwargs = {"events": config.replay_corpus_events}
    result = ExperimentResult(
        name="replay",
        description="temporal scenario replay: corpus-driven write tails "
                    "and shaped read traffic against service/cluster/shard "
                    "fleets, shadow-audited, strict",
    )
    table = Table(
        f"scenario replay ({config.replay_duration}s wall per scenario"
        + (f", corpora trimmed to {config.replay_corpus_events} events"
           if config.replay_corpus_events else "")
        + f", seed {config.seed})",
        ["scenario", "corpus", "fleet", "events", "queries", "read_qps",
         "p50_ms", "p99_ms", "refusals", "audited", "divergences"],
    )
    result.extra["runs"] = {}
    for name in config.replay_scenarios:
        report = run_replay_scenario(
            name,
            seed=config.seed,
            duration=config.replay_duration,
            corpus_kwargs=corpus_kwargs,
            telemetry=config.telemetry,
        )
        table.add_row(
            name,
            report["scenario"]["corpus"],
            report["scenario"]["fleet"],
            report["events_submitted"],
            report["queries_issued"],
            report["read_qps"],
            report["read_latency_ms"]["p50"],
            report["read_latency_ms"]["p99"],
            report["refusals"],
            report["auditor"]["audited"],
            report["divergences"],
        )
        result.extra["runs"][name] = report
    result.tables.append(table)
    return result
