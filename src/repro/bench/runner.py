"""Experiment dispatch and the ``python -m repro.bench`` CLI."""

import argparse
import os
import sys

from repro.bench import audit as audit_bench
from repro.bench import chaos as chaos_bench
from repro.bench import cluster as cluster_bench
from repro.bench import micro
from repro.bench import obs as obs_bench
from repro.bench import replay as replay_bench
from repro.bench import serve as serve_bench
from repro.bench import shard as shard_bench
from repro.audit.trajectory import (
    HISTORY_FILENAME,
    drift_report,
    load_history,
    record_run,
)
from repro.bench.compare import compare_result
from repro.bench.config import get_profile
from repro.bench.experiments import (
    ablations,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table3,
    table4,
    table5,
)

EXPERIMENTS = {
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "ablation_sd_pruning": ablations.run_sd_pruning,
    "ablation_ordering": ablations.run_ordering,
    "ablation_isolated_vertex": ablations.run_isolated_vertex,
    "ablation_aff": ablations.run_aff,
    "micro": micro.run,
    "serve": serve_bench.run,
    "cluster": cluster_bench.run,
    "audit": audit_bench.run,
    "shard": shard_bench.run,
    "chaos": chaos_bench.run,
    "replay": replay_bench.run,
    "obs": obs_bench.run,
}

PAPER_SET = ["table3", "table4", "table5", "fig7", "fig8", "fig9", "fig10", "fig11"]


def _run_drift(args):
    """The 'drift' pseudo-experiment: report perf drift, run nothing.

    Returns the number of failures to add (1 when any metric regressed
    beyond the tolerance, else 0).
    """
    entries, skipped = load_history(args.history)
    if skipped:
        print(
            f"[drift] skipped {skipped} malformed history line(s) in "
            f"{args.history}",
            file=sys.stderr,
        )
    regressions, lines, not_compared = drift_report(
        entries, window=args.window, tolerance=args.tolerance
    )
    for line in lines:
        print(line)
    for skip in not_compared:
        scope = skip["experiment"] or "history"
        if skip.get("metric"):
            scope = f"{scope}.{skip['metric']}"
        print(
            f"[drift] notice: {scope} not compared — {skip['reason']}",
            file=sys.stderr,
        )
    if regressions:
        print(
            f"[drift] {len(regressions)} metric(s) drifted beyond "
            f"{args.tolerance:.0%} of their rolling baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def run_experiment(name, config):
    """Run one experiment by name; returns its ExperimentResult."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner(config)


def main(argv=None):
    """CLI: python -m repro.bench [experiments...] [--profile quick|full]."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DSPC paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiments to run (default: all paper experiments); "
             f"choices: {', '.join(EXPERIMENTS)} or 'all' / 'paper' / "
             f"'ablations', plus 'drift' (report perf drift against the "
             f"recorded history instead of running anything)",
    )
    parser.add_argument(
        "--profile", default="full", choices=["quick", "full"],
        help="workload profile (default: full)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the profile's RNG seed (flows into every workload "
             "builder and loadgen, so a run is reproducible end to end)",
    )
    parser.add_argument(
        "--save-dir", default=None,
        help="directory to write one JSON result file per experiment",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE_JSON",
        help="compare against a committed baseline result (e.g. "
             "bench_results/micro.json) and fail on regressions beyond "
             "--tolerance; opt-in, never run in CI",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional regression before --compare or drift "
             "fails (default: 0.5 = 50%%)",
    )
    parser.add_argument(
        "--record", nargs="?", const=HISTORY_FILENAME, default=None,
        metavar="HISTORY_JSONL",
        help=f"append each experiment's tracked metrics to the perf-"
             f"trajectory history (default file: {HISTORY_FILENAME})",
    )
    parser.add_argument(
        "--history", default=HISTORY_FILENAME, metavar="HISTORY_JSONL",
        help=f"history file the 'drift' report reads "
             f"(default: {HISTORY_FILENAME})",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write Prometheus-text + JSON telemetry snapshots of each "
             "loadgen-driven experiment run into DIR (one .prom/.json "
             "pair per run, named after the harness)",
    )
    parser.add_argument(
        "--window", type=int, default=5,
        help="rolling baseline window for 'drift': the latest run is "
             "compared against the mean of up to this many previous runs "
             "(default: 5)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or ["paper"]
    expanded = []
    for name in names:
        if name == "all":
            expanded.extend(EXPERIMENTS)
        elif name == "paper":
            expanded.extend(PAPER_SET)
        elif name == "ablations":
            expanded.extend(k for k in EXPERIMENTS if k.startswith("ablation"))
        else:
            expanded.append(name)

    config = get_profile(args.profile)
    if args.seed is not None:
        config.seed = args.seed
    if args.telemetry is not None:
        config.telemetry = args.telemetry
    failures = 0
    for name in expanded:
        if name == "drift":
            failures += _run_drift(args)
            continue
        try:
            result = run_experiment(name, config)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            failures += 1
            continue
        print(result.render())
        print()
        if args.record:
            entry = record_run(
                args.record, result, profile=args.profile, seed=config.seed
            )
            if entry is None:
                print(
                    f"[record] {name}: no tracked metrics, nothing recorded"
                )
            else:
                print(
                    f"[record] {name}: {len(entry['metrics'])} metric(s) "
                    f"appended to {args.record}"
                )
        if args.compare:
            regressions, report = compare_result(
                result, args.compare, args.tolerance
            )
            for line in report:
                print(line)
            if regressions:
                print(
                    f"[compare] {len(regressions)} metric(s) regressed "
                    f"beyond {args.tolerance:.0%}",
                    file=sys.stderr,
                )
                failures += 1
        if args.save_dir:
            os.makedirs(args.save_dir, exist_ok=True)
            result.save(os.path.join(args.save_dir, f"{name}.json"))
    return 1 if failures else 0
