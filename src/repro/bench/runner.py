"""Experiment dispatch and the ``python -m repro.bench`` CLI."""

import argparse
import os
import sys

from repro.bench import cluster as cluster_bench
from repro.bench import micro
from repro.bench import serve as serve_bench
from repro.bench.compare import compare_result
from repro.bench.config import get_profile
from repro.bench.experiments import (
    ablations,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table3,
    table4,
    table5,
)

EXPERIMENTS = {
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "ablation_sd_pruning": ablations.run_sd_pruning,
    "ablation_ordering": ablations.run_ordering,
    "ablation_isolated_vertex": ablations.run_isolated_vertex,
    "ablation_aff": ablations.run_aff,
    "micro": micro.run,
    "serve": serve_bench.run,
    "cluster": cluster_bench.run,
}

PAPER_SET = ["table3", "table4", "table5", "fig7", "fig8", "fig9", "fig10", "fig11"]


def run_experiment(name, config):
    """Run one experiment by name; returns its ExperimentResult."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner(config)


def main(argv=None):
    """CLI: python -m repro.bench [experiments...] [--profile quick|full]."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DSPC paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiments to run (default: all paper experiments); "
             f"choices: {', '.join(EXPERIMENTS)} or 'all' / 'paper' / 'ablations'",
    )
    parser.add_argument(
        "--profile", default="full", choices=["quick", "full"],
        help="workload profile (default: full)",
    )
    parser.add_argument(
        "--save-dir", default=None,
        help="directory to write one JSON result file per experiment",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE_JSON",
        help="compare against a committed baseline result (e.g. "
             "bench_results/micro.json) and fail on regressions beyond "
             "--tolerance; opt-in, never run in CI",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional regression before --compare fails "
             "(default: 0.5 = 50%%)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or ["paper"]
    expanded = []
    for name in names:
        if name == "all":
            expanded.extend(EXPERIMENTS)
        elif name == "paper":
            expanded.extend(PAPER_SET)
        elif name == "ablations":
            expanded.extend(k for k in EXPERIMENTS if k.startswith("ablation"))
        else:
            expanded.append(name)

    config = get_profile(args.profile)
    failures = 0
    for name in expanded:
        try:
            result = run_experiment(name, config)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            failures += 1
            continue
        print(result.render())
        print()
        if args.compare:
            regressions, report = compare_result(
                result, args.compare, args.tolerance
            )
            for line in report:
                print(line)
            if regressions:
                print(
                    f"[compare] {len(regressions)} metric(s) regressed "
                    f"beyond {args.tolerance:.0%}",
                    file=sys.stderr,
                )
                failures += 1
        if args.save_dir:
            os.makedirs(args.save_dir, exist_ok=True)
            result.save(os.path.join(args.save_dir, f"{name}.json"))
    return 1 if failures else 0
