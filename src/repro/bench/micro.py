"""repro.bench.micro — hot-path microbenchmarks on synthetic graphs.

Unlike the paper-reproduction experiments (tables/figures over the dataset
registry), these benches track the *engineering* hot paths this codebase
keeps optimizing, so every PR leaves a perf trajectory in
``bench_results/micro.json`` to regress against:

* ``isolated_deletion`` — §3.2.3 fast-path cost as n grows.  With the
  reverse hub map the purge visits only holders(hub) and stays roughly
  flat; the legacy PR 2 behaviour (timed alongside as ``sweep``) scans all
  n label sets and grows linearly (DESIGN.md §9).
* ``batch_queries`` — ``SPCEngine.query_many`` on a repeated-source batch
  (the PSPC-style shared-scan path) versus a per-pair ``query`` loop over
  the same pairs, both with the cache off so the work itself is measured.
* ``update_latency`` — raw per-update wall clock over a hybrid
  insert/delete stream, the end-to-end number the Figure 10 experiments
  report on real datasets.

Wired into the CLI as ``repro-bench micro``; CI runs the quick profile as
a perf-smoke job that fails on crash, never on timing.
"""

import time

from repro.bench.tables import ExperimentResult, Table
from repro.bench.timing import distribution_summary
from repro.engine import EngineConfig, SPCEngine
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.workloads import hybrid_stream


def run(config):
    """Run the micro suite; returns an ExperimentResult."""
    result = ExperimentResult(
        name="micro",
        description="hot-path microbenchmarks (isolated deletion, "
                    "batch queries, update latency)",
    )
    result.tables.append(_bench_isolated_deletion(config, result.extra))
    result.tables.append(_bench_batch_queries(config, result.extra))
    result.tables.append(_bench_update_latency(config, result.extra))
    return result


def _engine(graph):
    """An engine with caching off: the benches measure work, not cache hits."""
    return SPCEngine(graph, config=EngineConfig(cache_size=0))


def _bench_isolated_deletion(config, extra):
    """§3.2.3 fast path (reverse hub map) vs the legacy O(n) sweep."""
    table = Table(
        "Isolated-vertex deletion vs n (reverse hub map vs legacy sweep)",
        ["n", "fast_path_us", "legacy_sweep_us", "sweep_ratio"],
    )
    series = []
    for n in config.micro_isolated_sizes:
        graph = barabasi_albert(n, attach=3, seed=7)
        engine = _engine(graph)
        anchor = max(graph.vertices(), key=graph.degree)
        fast, sweep = [], []
        pendant = max(graph.vertices()) + 1
        for r in range(config.micro_repeats):
            p = pendant + r
            engine.insert_vertex(p, edges=(anchor,))
            index = engine.index
            rp = index.rank(p)
            # Legacy baseline: what PR 2 paid per fast-path deletion — scan
            # every label set for the stranded hub.  Nobody holds rp (the
            # pendant ranks last), so the scan is side-effect free here.
            label_of = index.label_set
            start = time.perf_counter()
            for u in index.vertices():
                if u != p:
                    label_of(u).remove(rp)
            sweep.append(time.perf_counter() - start)
            stats = engine.delete_edge(p, anchor)
            assert stats.isolated_fast_path
            fast.append(stats.elapsed)
        fast_us = min(fast) * 1e6
        sweep_us = min(sweep) * 1e6
        table.add_row(n, round(fast_us, 1), round(sweep_us, 1),
                      round(sweep_us / fast_us, 2) if fast_us else 0.0)
        series.append({"n": n, "fast_path_us": fast_us,
                       "legacy_sweep_us": sweep_us})
    extra["isolated_deletion"] = series
    return table


def _bench_batch_queries(config, extra):
    """Grouped query_many (shared source scan) vs a per-pair query loop."""
    n, m = config.micro_query_graph
    graph = erdos_renyi(n, m, seed=11)
    engine = _engine(graph)
    vertices = sorted(graph.vertices())
    sources = vertices[: config.micro_query_sources]
    step = max(1, len(vertices) // config.micro_query_targets)
    targets = vertices[::step][: config.micro_query_targets]
    pairs = [(s, t) for s in sources for t in targets]

    start = time.perf_counter()
    batched = engine.query_many(pairs)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    looped = [engine.query(s, t) for s, t in pairs]
    looped_s = time.perf_counter() - start
    assert batched == looped

    table = Table(
        "query_many on a repeated-source batch (cache off)",
        ["pairs", "sources", "batched_qps", "per_pair_qps", "speedup"],
    )
    batched_qps = len(pairs) / batched_s if batched_s else 0.0
    looped_qps = len(pairs) / looped_s if looped_s else 0.0
    table.add_row(
        len(pairs), len(sources), round(batched_qps), round(looped_qps),
        round(batched_qps / looped_qps, 2) if looped_qps else 0.0,
    )
    extra["batch_queries"] = {
        "pairs": len(pairs),
        "sources": len(sources),
        "batched_seconds": batched_s,
        "per_pair_seconds": looped_s,
    }
    return table


def _bench_update_latency(config, extra):
    """Per-update wall clock over a hybrid insert/delete stream."""
    n, m = config.micro_update_graph
    graph = erdos_renyi(n, m, seed=13)
    engine = _engine(graph)
    stream = hybrid_stream(
        graph.copy(),
        insertions=config.micro_update_insertions,
        deletions=config.micro_update_deletions,
        seed=17,
    )
    all_stats = engine.apply_stream(stream)
    table = Table(
        "update latency over a hybrid stream",
        ["kind", "count", "mean_us", "median_us", "max_us"],
    )
    summaries = {}
    for kind in ("insert", "delete"):
        elapsed = [s.elapsed for s in all_stats if s.kind == kind]
        summary = distribution_summary(elapsed)
        summaries[kind] = summary
        table.add_row(
            kind, summary["count"],
            round(summary["mean"] * 1e6, 1),
            round(summary["median"] * 1e6, 1),
            round(summary["max"] * 1e6, 1),
        )
    extra["update_latency"] = summaries
    return table
