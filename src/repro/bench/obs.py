"""repro.bench.obs — the telemetry stack measured as a deliverable.

Three claims, each checked rather than narrated:

* **The breakdown adds up.**  One deterministic instrumented run
  (:func:`~repro.obs.loadgen.run_obs_loadgen`) populates the shard
  router's per-stage histograms; the per-stage latency table's stage sum
  must reconcile with the end-to-end latency histogram's sum — judged
  strictly, because the explicit ``unattributed`` remainder makes the
  identity exact by construction, so any drift is an instrumentation
  bug, not noise.
* **The counters are deterministic.**  The same seeded run executes
  twice; the two registries' :meth:`~repro.obs.MetricsRegistry
  .counter_values` fingerprints (counter values + histogram *counts*,
  never timings) must be identical key for key — judged strictly.
* **Always-on is cheap.**  A paired-window instrumented-vs-bare probe on the
  scatter-gather read path records ``overhead_pct``; like every timing
  number in this suite it is recorded here and *asserted* in CI (the
  obs-smoke job bounds it at ``obs_overhead_bound_pct``), because shared
  bench runners make local strictness on wall-clock numbers flaky.

Results land in ``bench_results/obs.json`` via ``repro-bench obs
--save-dir bench_results``.
"""

from repro.bench.tables import ExperimentResult, Table
from repro.exceptions import ObsError
from repro.obs.loadgen import STAGES, run_obs_loadgen, run_overhead_probe

#: stage-sum vs end-to-end reconciliation bound; the identity is exact in
#: real arithmetic, so the tolerance only absorbs float re-summation.
REL_ERR_BOUND = 1e-6


def _loadgen_kwargs(config, instrument, seed):
    n, m = config.obs_graph
    return dict(
        backend=config.obs_backend,
        n=n,
        m=m,
        shards=config.obs_shards,
        churn=config.obs_churn,
        phases=config.obs_phases,
        reads_per_phase=config.obs_reads_per_phase,
        tap_rate=config.obs_tap_rate,
        seed=seed,
        instrument=instrument,
    )


def stage_breakdown(registry):
    """The per-stage latency table rows + reconciliation numbers.

    Returns ``(rows, stage_sum_s, e2e_sum_s)`` where each row is
    ``(stage, count, total_ms, share_pct, mean_us, p50_us, p99_us)``
    pulled from ``repro_shard_stage_seconds{stage=...}``.
    """
    e2e = registry.get("repro_shard_read_latency_seconds")
    if e2e is None or e2e.count == 0:
        raise ObsError(
            "no repro_shard_read_latency_seconds observations — the "
            "instrumented run served no reads"
        )
    rows = []
    stage_sum = 0.0
    for stage in STAGES:
        hist = registry.get("repro_shard_stage_seconds", stage=stage)
        if hist is None:
            raise ObsError(
                f"stage histogram {stage!r} missing from the registry"
            )
        stage_sum += hist.total
        snap = hist.snapshot()
        rows.append((
            stage,
            snap["count"],
            round(hist.total * 1e3, 3),
            round(hist.total / e2e.total * 100.0, 1) if e2e.total else 0.0,
            round((snap["mean"] or 0.0) * 1e6, 1),
            round((snap["p50"] or 0.0) * 1e6, 1),
            round((snap["p99"] or 0.0) * 1e6, 1),
        ))
    return rows, stage_sum, e2e.total


def run(config):
    """Run the observability benchmarks; returns an ExperimentResult."""
    n, m = config.obs_graph
    result = ExperimentResult(
        name="obs",
        description="telemetry stack end to end: per-stage latency "
                    "breakdown reconciled against end-to-end latency, "
                    "same-seed counter determinism, and the always-on "
                    "instrumentation overhead probe",
    )

    # ------------------------------------------------------------- run 1
    report = run_obs_loadgen(**_loadgen_kwargs(config, True, config.seed))
    registry = report["registry"]
    tracer = report["tracer"]

    rows, stage_sum, e2e_sum = stage_breakdown(registry)
    breakdown_table = Table(
        f"per-stage read latency breakdown: {config.obs_shards} shards, "
        f"{report['reads']} scatter-gather reads, ER({n}, {m}) "
        f"[{config.obs_backend}]",
        ["stage", "count", "total_ms", "share_pct", "mean_us",
         "p50_us", "p99_us"],
    )
    for row in rows:
        breakdown_table.add_row(*row)
    rel_err = abs(stage_sum - e2e_sum) / e2e_sum if e2e_sum else 0.0
    if rel_err > REL_ERR_BOUND:
        raise ObsError(
            f"per-stage breakdown does not reconcile with end-to-end "
            f"latency: stages sum to {stage_sum:.9f}s, e2e histogram "
            f"holds {e2e_sum:.9f}s (rel err {rel_err:.2e} > "
            f"{REL_ERR_BOUND:.0e})"
        )

    # ------------------------------------- run 2: counter determinism
    second = run_obs_loadgen(**_loadgen_kwargs(config, True, config.seed))
    first_counters = report["counter_values"]
    second_counters = second["counter_values"]
    mismatched = sorted(
        key
        for key in set(first_counters) | set(second_counters)
        if first_counters.get(key) != second_counters.get(key)
    )
    if mismatched:
        detail = ", ".join(
            f"{key}: {first_counters.get(key)} != {second_counters.get(key)}"
            for key in mismatched[:8]
        )
        raise ObsError(
            f"seeded runs disagree on {len(mismatched)} counter(s) — "
            f"telemetry is nondeterministic: {detail}"
        )

    # ----------------------------------------------- overhead probe
    overhead = run_overhead_probe(
        backend=config.obs_backend,
        n=n,
        m=m,
        shards=config.obs_shards,
        batch=config.obs_overhead_batch,
        loops=config.obs_overhead_loops,
        repeats=config.obs_overhead_repeats,
        seed=config.seed,
    )

    verdict_table = Table(
        "telemetry contracts (consistency judged strictly, "
        "overhead recorded; CI asserts the bound)",
        ["stage_sum_ms", "e2e_sum_ms", "rel_err", "counters_identical",
         "counters_compared", "overhead_pct", "bound_pct"],
    )
    verdict_table.add_row(
        round(stage_sum * 1e3, 3),
        round(e2e_sum * 1e3, 3),
        f"{rel_err:.2e}",
        True,
        len(first_counters),
        overhead["overhead_pct"],
        config.obs_overhead_bound_pct,
    )

    trace_stats = tracer.stats()
    writer_table = Table(
        "writer-side + trace accounting for the instrumented run",
        ["writer_batches", "publishes", "wal_bytes", "traces",
         "slow_traces", "tap_sampled"],
    )
    counters = first_counters
    writer_table.add_row(
        counters.get("repro_serve_writer_batches", 0),
        counters.get("repro_serve_publishes", 0),
        counters.get("repro_serve_wal_appended_bytes", 0),
        trace_stats["recorded"],
        trace_stats["slow_recorded"],
        report["sampler"]["sampled"],
    )

    result.tables.append(breakdown_table)
    result.tables.append(verdict_table)
    result.tables.append(writer_table)
    result.extra = {
        "run": {
            "backend": report["backend"],
            "shards": report["shards"],
            "phases": report["phases"],
            "reads": report["reads"],
            "batch_reads": report["batch_reads"],
            "submitted": report["submitted"],
            "elapsed_s": report["elapsed_s"],
            "sampler": report["sampler"],
            "overhead_bound_pct": config.obs_overhead_bound_pct,
        },
        "stages": {
            stage: registry.get(
                "repro_shard_stage_seconds", stage=stage
            ).snapshot()
            for stage in STAGES
        },
        "e2e": registry.get("repro_shard_read_latency_seconds").snapshot(),
        "consistency": {
            "stage_sum_s": stage_sum,
            "e2e_sum_s": e2e_sum,
            "rel_err": rel_err,
            "bound": REL_ERR_BOUND,
        },
        "determinism": {
            "identical": True,
            "counters_compared": len(first_counters),
        },
        "overhead": overhead,
        "tracer": trace_stats,
        "counter_values": first_counters,
    }
    return result
