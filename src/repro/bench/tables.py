"""Result tables: the harness's equivalent of the paper's tables and figures.

Every experiment produces an :class:`ExperimentResult` holding one or more
:class:`Table` objects (the printable rows the paper reports) plus a free-
form ``extra`` payload (full per-update series for the figure experiments).
Results render as aligned ASCII and serialize to JSON.
"""

import json
from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled grid of rows with named columns."""

    title: str
    columns: list
    rows: list = field(default_factory=list)

    def add_row(self, *values):
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self):
        """Render the table as aligned ASCII text."""
        cells = [self.columns] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def to_dict(self):
        """JSON-friendly representation."""
        return {"title": self.title, "columns": self.columns, "rows": self.rows}

    def column(self, name):
        """Return one column's values across all rows."""
        i = self.columns.index(name)
        return [row[i] for row in self.rows]


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


@dataclass
class ExperimentResult:
    """The output of one experiment runner."""

    name: str
    description: str
    tables: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def render(self):
        """Render all tables, separated by blank lines."""
        parts = [f"== {self.name}: {self.description} =="]
        parts.extend(t.render() for t in self.tables)
        return "\n\n".join(parts)

    def to_dict(self):
        """JSON-friendly representation (extra must be JSON-safe)."""
        return {
            "name": self.name,
            "description": self.description,
            "tables": [t.to_dict() for t in self.tables],
            "extra": self.extra,
        }

    def save(self, path):
        """Write the result as JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, default=str)

    def table(self, title_prefix=""):
        """Return the first table (optionally matching a title prefix)."""
        for t in self.tables:
            if t.title.startswith(title_prefix):
                return t
        raise KeyError(f"no table starting with {title_prefix!r}")
