"""Experiment configuration profiles.

The paper's workload sizes (1,000 insertions, k ∈ {50, 100} deletions,
10,000 query pairs) are scaled down with the datasets.  Two profiles ship:

* ``quick`` — the four smallest datasets, small workloads; used by the
  pytest-benchmark suite so a full `pytest benchmarks/ --benchmark-only`
  stays in the minutes range;
* ``full``  — all ten datasets with larger workloads; the default for
  ``python -m repro.bench`` and the numbers recorded in EXPERIMENTS.md.
"""

from dataclasses import dataclass, field

from repro.datasets import DATASET_NAMES, SMALL_DATASET_NAMES, STREAMING_DATASET_NAMES


@dataclass
class BenchConfig:
    """Workload sizes and dataset selection for the experiment runners."""

    datasets: list = field(default_factory=lambda: list(DATASET_NAMES))
    streaming_datasets: list = field(default_factory=lambda: list(STREAMING_DATASET_NAMES))
    insertions: int = 60       # paper: 1,000
    deletions: int = 12        # paper: 50/100
    queries: int = 1000        # paper: 10,000
    stream_insertions: int = 100  # paper: 100 (Figure 10)
    stream_deletions: int = 10    # paper: 10  (Figure 10)
    skew_insertions: int = 20  # paper: 100 (Figure 11)
    skew_deletions: int = 6    # paper: 50  (Figure 11)
    seed: int = 0
    # DecSPC on the largest graphs is disproportionately expensive (the
    # paper itself reports 1,058 s per deletion on IND and resorts to
    # timeouts); cap the deletion batch there so full runs stay bounded.
    deletions_large: int = 4
    large_datasets: tuple = ("SKI", "DBP", "WAR", "IND")
    # repro.bench.micro knobs — synthetic-graph microbenchmarks tracking the
    # serving/maintenance hot paths across PRs (see DESIGN.md §9).
    micro_isolated_sizes: tuple = (1000, 2000, 4000)
    micro_repeats: int = 5
    micro_query_graph: tuple = (2000, 6000)   # (n, m) for the batch-query bench
    micro_query_sources: int = 8
    micro_query_targets: int = 300
    micro_update_graph: tuple = (600, 1800)   # (n, m) for the update-latency bench
    micro_update_insertions: int = 60
    micro_update_deletions: int = 12
    # repro.bench.serve knobs — the serving-layer load test (N readers +
    # 1 writer over SPCService; see repro.serve.loadgen).
    serve_backends: tuple = ("core", "directed", "weighted", "sd")
    serve_readers: int = 4
    serve_duration: float = 2.0    # seconds of mixed load per backend
    serve_graph: tuple = (300, 900)   # (n, m) of the synthetic graph
    serve_churn: int = 40          # edges per half of the cyclic update stream
    # repro.bench.cluster knobs — the replicated fleet under routed load
    # with kill-and-catch-up fault injection (see repro.cluster.loadgen).
    cluster_backends: tuple = ("core", "directed", "weighted", "sd")
    cluster_replicas: int = 2
    cluster_readers: int = 4
    cluster_duration: float = 1.5   # seconds of routed load per backend
    cluster_graph: tuple = (240, 720)   # (n, m) of the synthetic graph
    cluster_churn: int = 30
    cluster_staleness_delta: int = 16   # Δ of the bounded-staleness policy
    # repro.bench.audit knobs — the shadow-audit stack: tap overhead, a
    # clean audited fleet per backend, and kill-and-corrupt detection per
    # corruption mode (see repro.audit.loadgen).
    audit_backends: tuple = ("core", "directed", "weighted", "sd")
    audit_replicas: int = 2
    audit_readers: int = 3
    audit_duration: float = 1.2     # seconds of audited load per run
    audit_graph: tuple = (240, 720)   # (n, m) of the synthetic graph
    audit_churn: int = 30
    audit_sample_rate: float = 0.1  # fraction of answers reservoir-sampled
    audit_corrupt_modes: tuple = ("count", "dist", "refusal")
    # The overhead loop uses a serving-sized graph: tap overhead is
    # relative, and a toy graph's microsecond queries would overstate it.
    audit_overhead_graph: tuple = (2000, 6000)
    audit_overhead_queries: int = 20000  # per overhead-loop repeat
    audit_overhead_repeats: int = 5
    # repro.bench.shard knobs — the hub-partitioned fleet: audited
    # scatter-gather load per backend, the per-shard 1/K memory
    # criterion, and a kill-mid-run refusal/recovery run (see
    # repro.shard.loadgen).
    shard_backends: tuple = ("core", "directed", "weighted", "sd")
    shard_shards: int = 4
    shard_partitioner: str = "balanced"
    shard_readers: int = 3
    shard_duration: float = 1.2     # seconds of scatter-gather load per run
    shard_graph: tuple = (240, 720)   # (n, m) of the synthetic graph
    shard_churn: int = 30
    shard_sample_rate: float = 0.2  # fraction of merged answers audited
    shard_epsilon: float = 0.35     # slack of the per-shard (1+eps)/K bound
    # repro.bench.chaos knobs — the disk-fault chaos schedule under a
    # supervised fleet (see repro.resilience.loadgen): kill / bit-flip /
    # checkpoint-corrupt / torn-write / ENOSPC / crash-loop, judged
    # strictly (every corruption typed, zero divergences, self-healed).
    chaos_cluster_backends: tuple = ("core", "directed", "weighted", "sd")
    chaos_shard_backends: tuple = ("core",)
    chaos_degraded_backends: tuple = ("core",)   # degraded="stale" variant
    chaos_replicas: int = 2
    chaos_shards: int = 3
    chaos_readers: int = 2
    chaos_graph: tuple = (120, 360)   # (n, m) of the synthetic graph
    chaos_churn: int = 24
    chaos_duration: float = 60.0    # hard cap; the schedule is event-driven
    chaos_heal_timeout: float = 20.0  # per-phase recovery bound
    chaos_sample_rate: float = 0.25   # fraction of routed answers audited
    # Crash-loop budget: the finale phase must exhaust it to prove
    # containment, so the window has to hold a full budget's worth of
    # crash cycles — each cycle is detection + backoff + bootstrap, and
    # bootstrap time scales with the graph, so a tight window (the
    # loadgen's 8-in-6s default) can slide forever on the full profile.
    chaos_restart_budget: int = 6
    chaos_budget_window: float = 20.0
    # repro.bench.replay knobs — temporal scenario replay: each named
    # scenario (see repro.replay.scenario) replays its corpus tail
    # through its fleet under shaped traffic, shadow-audited, strict
    # (zero divergences; see repro.replay.loadgen).
    replay_scenarios: tuple = ("diurnal", "heavy-tail-sources",
                               "burst-arrival", "churn-window")
    replay_duration: float = 1.5    # wall seconds the virtual tail maps to
    replay_corpus_events: int = 0   # 0 = the registry's full corpus size
    # repro.bench.obs knobs — the telemetry stack measured as a
    # deliverable (see repro.obs.loadgen): a deterministic instrumented
    # run whose per-stage breakdown must reconcile exactly with the
    # end-to-end latency histogram and whose counter fingerprint must be
    # identical across two same-seed runs, plus a paired-window
    # instrumented-vs-bare overhead probe on the scatter-gather path.
    obs_backend: str = "core"
    obs_graph: tuple = (400, 1200)   # (n, m) of the synthetic graph
    obs_shards: int = 3
    obs_churn: int = 48              # updates per churn phase (one batch)
    obs_phases: int = 4
    obs_reads_per_phase: int = 160
    obs_tap_rate: float = 0.25       # answer-tap admission probability
    obs_overhead_batch: int = 256    # pairs per query_many in the probe
    obs_overhead_loops: int = 20     # query_many calls per timed window
    obs_overhead_repeats: int = 5    # windows = 4x this, median of ratios
    obs_overhead_bound_pct: float = 5.0  # CI's assertion threshold
    # ``repro-bench --telemetry DIR``: when set, every loadgen-driven
    # experiment run writes a Prometheus-text + JSON snapshot pair of
    # its fleet's registry into this directory (see repro.obs.export).
    telemetry: str = None
    # The degraded="stale" variant runs on the shard fleet — the cluster
    # router falls back to a healthy primary so its degraded path stays
    # dormant, while a dead hub slice otherwise refuses every cross-shard
    # read.  The window sizes both the shard view ring and the staleness
    # bound: a degraded cut must reach back past a restart's worth of
    # batches or the mode never engages under churn.
    chaos_degraded_window: int = 1024

    def deletions_for(self, name):
        """Deletion batch size for a dataset (capped on the largest)."""
        if name in self.large_datasets:
            return min(self.deletions, self.deletions_large)
        return self.deletions

    @classmethod
    def quick(cls):
        """Small profile for the pytest-benchmark suite."""
        return cls(
            datasets=list(SMALL_DATASET_NAMES),
            streaming_datasets=["BKS"],
            insertions=30,
            deletions=10,
            queries=200,
            stream_insertions=30,
            stream_deletions=5,
            skew_insertions=10,
            skew_deletions=5,
            micro_isolated_sizes=(300, 600, 1200),
            micro_repeats=3,
            micro_query_graph=(500, 1500),
            micro_query_sources=4,
            micro_query_targets=100,
            micro_update_graph=(200, 600),
            micro_update_insertions=15,
            micro_update_deletions=5,
            serve_backends=("core", "sd"),
            serve_readers=2,
            serve_duration=0.5,
            serve_graph=(120, 360),
            serve_churn=20,
            cluster_backends=("core", "sd"),
            cluster_readers=2,
            cluster_duration=0.6,
            cluster_graph=(100, 300),
            cluster_churn=16,
            audit_backends=("core", "sd"),
            audit_readers=2,
            audit_duration=0.7,
            audit_graph=(100, 300),
            audit_churn=16,
            audit_sample_rate=0.15,
            audit_corrupt_modes=("count",),
            audit_overhead_graph=(800, 2400),
            audit_overhead_queries=4000,
            audit_overhead_repeats=3,
            shard_backends=("core", "sd"),
            shard_shards=4,
            shard_readers=2,
            shard_duration=0.8,
            shard_graph=(150, 420),
            shard_churn=16,
            # CI's replay-smoke: the two QUICK_SCENARIOS (one plain
            # service, one faulted shard fleet) on trimmed corpora.
            replay_scenarios=("diurnal", "churn-window"),
            replay_duration=1.0,
            replay_corpus_events=500,
            obs_graph=(200, 600),
            obs_phases=2,
            obs_reads_per_phase=80,
            obs_overhead_batch=192,
            obs_overhead_loops=10,
            obs_overhead_repeats=5,
            # The chaos smoke keeps all four backends even in the quick
            # profile — fault detection paths differ per record codec, so
            # dropping a backend drops coverage, not just runtime.  The
            # graph shrinks instead.
            chaos_graph=(60, 180),
            chaos_churn=16,
        )

    @classmethod
    def full(cls):
        """The default profile covering all ten datasets."""
        return cls()


def get_profile(name):
    """Resolve a profile by name ("quick" or "full")."""
    if name == "quick":
        return BenchConfig.quick()
    if name == "full":
        return BenchConfig.full()
    raise ValueError(f"unknown profile {name!r}; use 'quick' or 'full'")
