"""Timing utilities for the experiment harness."""

import time
from contextlib import contextmanager


class Timer:
    """A tiny perf_counter stopwatch usable as a context manager."""

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._start
        return False


@contextmanager
def timed(record, key):
    """Context manager that stores the elapsed seconds into record[key]."""
    start = time.perf_counter()
    yield
    record[key] = time.perf_counter() - start


def percentile(sorted_values, q):
    """Linear-interpolation percentile of a pre-sorted list (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def distribution_summary(values):
    """Return the paper's Figure 7 summary: median with p25/p75 plus extremes."""
    vals = sorted(values)
    return {
        "count": len(vals),
        "min": vals[0] if vals else 0.0,
        "p25": percentile(vals, 25),
        "median": percentile(vals, 50),
        "p75": percentile(vals, 75),
        "max": vals[-1] if vals else 0.0,
        "mean": sum(vals) / len(vals) if vals else 0.0,
    }


def format_seconds(seconds):
    """Human-readable seconds: 1.234 s / 12.3 ms / 45.6 us."""
    if seconds >= 1:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_bytes(n):
    """Human-readable byte count (KB/MB with paper-style decimal units)."""
    if n >= 1_000_000:
        return f"{n / 1_000_000:.2f} MB"
    if n >= 1_000:
        return f"{n / 1_000:.1f} KB"
    return f"{n} B"
