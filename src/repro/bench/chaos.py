"""repro.bench.chaos — the serving fleet under a disk-fault schedule.

One :func:`~repro.resilience.run_chaos_loadgen` per (fleet, backend):
kill / interior bit-flip / checkpoint-corrupt / torn-write-weld /
ENOSPC — plus a crash-loop-to-budget phase on cluster fleets — against a
:class:`~repro.resilience.Supervisor`-wrapped fleet with a shadow audit
tapping every routed answer.  Three verdicts, all judged strictly inside
the loadgen (a violation raises, failing the experiment):

* **every injected corruption is detected as a typed error** — the
  harness independently re-scans the damaged file and demands the typed
  refusal before relying on the fleet to trip over it;
* **the fleet self-heals with no manual ops** — recovery is the
  supervisor's work alone; the recorded numbers are each phase's MTTR;
* **zero shadow-audit divergences** — faults and repairs included.

A final run exercises the opt-in degraded mode (``degraded="stale"``)
on the shard fleet — the one place refusal-by-default actually bites,
since the cluster router can always fall back to a healthy primary:
bounded-staleness answers must be tagged, audited and divergence-free.

Timing (MTTR, read qps) is recorded, never judged.  Results land in
``bench_results/chaos.json`` via ``repro-bench chaos --save-dir
bench_results``.
"""

from repro.bench.tables import ExperimentResult, Table
from repro.resilience.loadgen import run_chaos_loadgen


def _loadgen_kwargs(config, backend, fleet, degraded="refuse"):
    n, m = config.chaos_graph
    return dict(
        backend=backend,
        fleet=fleet,
        replicas=config.chaos_replicas,
        shards=config.chaos_shards,
        readers=config.chaos_readers,
        duration=config.chaos_duration,
        n=n,
        m=m,
        churn=config.chaos_churn,
        sample_rate=config.chaos_sample_rate,
        heal_timeout=config.chaos_heal_timeout,
        restart_budget=config.chaos_restart_budget,
        budget_window=config.chaos_budget_window,
        degraded=degraded,
        seed=config.seed,
    )


def _mttr_ms(report, phase):
    mttr = report["mttr_s"]["per_phase"].get(phase)
    return round(mttr * 1e3, 1) if mttr is not None else "-"


def run(config):
    """Run the chaos benchmarks; returns an ExperimentResult."""
    n, m = config.chaos_graph
    result = ExperimentResult(
        name="chaos",
        description="disk-fault chaos schedule under self-healing "
                    "supervision: kill / bit-flip / checkpoint-corrupt / "
                    "torn-write / ENOSPC / crash-loop, every corruption "
                    "typed, zero divergences, per-phase MTTR",
    )

    heal_table = Table(
        f"supervised fleet under the fault schedule: ER({n}, {m}), "
        f"{config.chaos_readers} readers, per-phase MTTR in ms",
        ["fleet", "backend", "phases", "detected", "healed", "kill",
         "flip", "ckpt", "torn", "enospc", "crashloop", "audited",
         "divergences"],
    )
    result.extra["runs"] = {}
    planned = [
        ("cluster", backend) for backend in config.chaos_cluster_backends
    ] + [
        ("shard", backend) for backend in config.chaos_shard_backends
    ]
    for fleet, backend in planned:
        report = run_chaos_loadgen(**_loadgen_kwargs(config, backend, fleet))
        heal_table.add_row(
            fleet,
            backend,
            len(report["phases"]),
            report["phases_detected"],
            report["phases_healed"],
            _mttr_ms(report, "kill"),
            _mttr_ms(report, "flip"),
            _mttr_ms(report, "ckpt"),
            _mttr_ms(report, "torn"),
            _mttr_ms(report, "enospc"),
            _mttr_ms(report, "crashloop"),
            report["auditor"]["audited"],
            report["auditor"]["divergences"]["total"],
        )
        result.extra["runs"][f"{fleet}:{backend}"] = report

    degraded_table = Table(
        'opt-in degraded mode (degraded="stale", shard fleet): '
        "bounded-staleness answers must be tagged, audited and "
        "divergence-free",
        ["backend", "reads", "degraded_reads", "refusals", "audited",
         "divergences"],
    )
    result.extra["degraded"] = {}
    for backend in config.chaos_degraded_backends:
        kwargs = _loadgen_kwargs(config, backend, "shard", degraded="stale")
        kwargs.update(
            ring_size=config.chaos_degraded_window,
            degraded_max_lag=config.chaos_degraded_window,
        )
        report = run_chaos_loadgen(**kwargs)
        degraded_table.add_row(
            backend,
            report["reads"],
            report["degraded_reads"],
            report["refusals"],
            report["auditor"]["audited"],
            report["auditor"]["divergences"]["total"],
        )
        result.extra["degraded"][backend] = report

    result.tables.append(heal_table)
    result.tables.append(degraded_table)
    return result
