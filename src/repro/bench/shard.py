"""repro.bench.shard — the hub-partitioned fleet measured end to end.

Three questions, answered in one experiment:

* **Is the merge exact under load?**  One clean audited
  :func:`~repro.shard.run_shard_loadgen` per backend family, strict: the
  ShadowAuditor differentially verifies merged cross-shard answers at
  their consistent-cut seqs, and any divergence fails the experiment.
* **Does sharding actually buy the memory?**  Every run records each
  shard's peak materialized label entries against the unsharded
  primary's — the acceptance criterion is ``peak <= (1 + eps)/K`` with
  ``eps = shard_epsilon``, judged strictly by the loadgen.
* **Does a lost slice refuse instead of lying?**  One kill-mid-run run
  (core backend): shard-0 dies at 35% of the run, readers must observe
  :class:`~repro.exceptions.ShardError` refusals — with zero divergences
  before, during and after — and the fleet must serve again once the
  shard is restarted at 65%.

Consistency and the memory criterion are always judged (violations raise
out of the loadgen); timing numbers are recorded, never judged.  Results
land in ``bench_results/shard.json`` via ``repro-bench shard --save-dir
bench_results``.
"""

from repro.bench.tables import ExperimentResult, Table
from repro.shard.loadgen import run_shard_loadgen


def _loadgen_kwargs(config, backend, kill):
    n, m = config.shard_graph
    return dict(
        backend=backend,
        shards=config.shard_shards,
        partitioner=config.shard_partitioner,
        readers=config.shard_readers,
        duration=config.shard_duration,
        n=n,
        m=m,
        churn=config.shard_churn,
        sample_rate=config.shard_sample_rate,
        epsilon=config.shard_epsilon,
        seed=config.seed,
        kill=kill,
        telemetry=config.telemetry,
    )


def run(config):
    """Run the shard benchmarks; returns an ExperimentResult."""
    n, m = config.shard_graph
    k = config.shard_shards
    result = ExperimentResult(
        name="shard",
        description="hub-partitioned scatter-gather fleet: audited merge "
                    "exactness per backend, the per-shard (1+eps)/K "
                    "memory criterion, and kill-mid-run refusal/recovery",
    )

    clean_table = Table(
        f"clean sharded fleet: {k} shards "
        f"({config.shard_partitioner} partitioner), "
        f"{config.shard_readers} readers, {config.shard_duration}s, "
        f"ER({n}, {m})",
        ["backend", "read_qps", "p50_ms", "p99_ms", "audited",
         "divergences", "max_peak_ratio", "bound"],
    )
    result.extra["runs"] = {}
    for backend in config.shard_backends:
        report = run_shard_loadgen(**_loadgen_kwargs(config, backend, False))
        memory = report["memory"]
        clean_table.add_row(
            backend,
            report["read_qps"],
            report["read_latency_ms"]["p50"],
            report["read_latency_ms"]["p99"],
            report["auditor"]["audited"],
            report["auditor"]["divergences"]["total"],
            max(memory["peak_ratio"].values()),
            memory["bound"],
        )
        result.extra["runs"][backend] = report

    fault_table = Table(
        "kill shard-0 at 35% / restart at 65% (core backend): a missing "
        "hub slice must refuse, never answer wrong",
        ["refusals", "post_restart_reads", "divergences", "bootstraps"],
    )
    fault = run_shard_loadgen(**_loadgen_kwargs(config, "core", True))
    fault_table.add_row(
        fault["refusals"],
        fault["fault_injection"]["post_restart_reads"],
        fault["auditor"]["divergences"]["total"],
        sum(s["bootstraps"] for s in fault["shards"]),
    )
    result.extra["fault"] = fault
    result.tables.append(clean_table)
    result.tables.append(fault_table)
    return result
