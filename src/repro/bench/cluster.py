"""repro.bench.cluster — the replicated serving layer under fault injection.

Runs :func:`repro.cluster.loadgen.run_cluster_loadgen` once per backend
family: N readers route point/batch queries across the replica fleet
while one submitter feeds the primary and a fault controller kills
replica-0 mid-stream and crash-recovers it from checkpoint + WAL tail.
Consistency checking is always on — a bounded-staleness violation, a
per-target snapshot regression, a diverged or stuck replica, or a
replay-oracle mismatch (any served answer that does not equal progressive
WAL replay at its claimed seq) fails the run with
:class:`~repro.exceptions.ClusterError` — while the timing numbers are
recorded, never judged (CI's cluster-smoke job runs the quick profile and
fails on crash/inconsistency only).

Results land in ``bench_results/cluster.json`` via
``repro-bench cluster --save-dir bench_results``.
"""

from repro.bench.tables import ExperimentResult, Table
from repro.cluster.loadgen import run_cluster_loadgen


def run(config):
    """Run the cluster loadgen per backend; returns an ExperimentResult."""
    result = ExperimentResult(
        name="cluster",
        description="WAL-replicated fleet under routed load with "
                    "kill-and-catch-up fault injection (consistency-checked)",
    )
    n, m = config.cluster_graph
    table = Table(
        f"cluster loadgen: {config.cluster_replicas} replicas, "
        f"{config.cluster_readers} readers, {config.cluster_duration}s, "
        f"ER({n}, {m}), bounded staleness Δ={config.cluster_staleness_delta}",
        ["backend", "read_qps", "p50_ms", "p99_ms", "audited",
         "replica_share", "catch_up_ms", "converged"],
    )
    for backend in config.cluster_backends:
        report = run_cluster_loadgen(
            backend=backend,
            replicas=config.cluster_replicas,
            readers=config.cluster_readers,
            duration=config.cluster_duration,
            n=n,
            m=m,
            churn=config.cluster_churn,
            staleness_delta=config.cluster_staleness_delta,
            seed=config.seed,
            telemetry=config.telemetry,
        )
        replica_reads = sum(report["routed"].values())
        total = replica_reads + report["primary_reads"]
        fault = report["fault_injection"]
        table.add_row(
            backend,
            report["read_qps"],
            report["read_latency_ms"]["p50"],
            report["read_latency_ms"]["p99"],
            report["answers_audited"],
            round(replica_reads / total, 3) if total else 0.0,
            fault.get("catch_up_ms", ""),
            fault.get("converged", ""),
        )
        result.extra[backend] = report
    result.tables.append(table)
    return result
