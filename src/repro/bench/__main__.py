"""Entry point: ``python -m repro.bench table4 --profile quick``."""

import sys

from repro.bench.runner import main

if __name__ == "__main__":
    sys.exit(main())
