"""repro.bench.audit — the differential-audit stack measured end to end.

Three questions, answered in one experiment:

* **What does the tap cost?**  A tight single-threaded query loop against
  an :class:`~repro.serve.SPCService`, timed with and without an
  :class:`~repro.audit.AuditSampler` installed (min over repeats, so
  scheduler noise cannot manufacture overhead) — the acceptance bound is
  that sampling stays within a few percent of the untapped read path.
* **Does a clean fleet stay silent?**  One kill-only
  :func:`~repro.audit.run_audit_loadgen` per backend family, strict: any
  divergence on an honest run fails the experiment.
* **Is corruption caught, and classified right?**  One kill-and-corrupt
  run per configured corruption mode (core backend): the ShadowAuditor
  must report at least one divergence of exactly the mode's severity
  class, and the report records how far into the run the first tripwire
  fired.

Consistency is always judged (a missed detection or a false positive
raises :class:`~repro.exceptions.AuditDivergenceError` out of the
loadgen); timing numbers are recorded, never judged.  Results land in
``bench_results/audit.json`` via ``repro-bench audit --save-dir
bench_results``.
"""

import random
import time

from repro.audit.loadgen import EXPECTED_SEVERITY, run_audit_loadgen
from repro.audit.sampler import AuditSampler
from repro.bench.tables import ExperimentResult, Table
from repro.engine import EngineConfig, SPCEngine
from repro.graph.generators import erdos_renyi
from repro.serve.service import ServeConfig, SPCService


def _measure_tap_overhead(n, m, queries, repeats, sample_rate, seed=0):
    """Time the same single-threaded query loop untapped vs tapped.

    The two configurations are *interleaved* in many short windows
    (plain, tapped, plain, tapped, ...); the reported overhead is the
    **median of per-pair ratios** — each plain/tapped pair runs
    back-to-back within milliseconds, so machine-speed drift over the
    measurement cannot masquerade as tap overhead, and the median drops
    the pairs a scheduler hiccup landed on.  ``queries`` is the total
    per side, split across ``repeats * 8`` alternating windows.
    """
    graph = erdos_renyi(n, m, seed=seed)
    engine = SPCEngine(graph, config=EngineConfig(backend="core"))
    service = SPCService(engine, config=ServeConfig())
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(256)
    ]
    npairs = len(pairs)
    sampler = AuditSampler(rate=sample_rate, capacity=512, seed=seed + 2)
    windows = max(2, repeats * 8)
    per_window = max(200, queries // windows)

    def window_seconds():
        start = time.perf_counter()
        for i in range(per_window):
            s, t = pairs[i % npairs]
            service.query(s, t)
        return time.perf_counter() - start

    plain = tapped = float("inf")
    ratios = []
    try:
        for _ in range(windows):
            # Warm each code path before its timed window so neither
            # side pays first-call costs.
            service.set_answer_tap(None)
            service.query(*pairs[0])
            plain_w = window_seconds()
            service.set_answer_tap(sampler)
            service.query(*pairs[0])
            tapped_w = window_seconds()
            sampler.take()  # keep reservoir churn comparable per window
            plain = min(plain, plain_w)
            tapped = min(tapped, tapped_w)
            ratios.append(tapped_w / plain_w)
    finally:
        service.close()
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        median_ratio = ratios[mid]
    else:
        median_ratio = (ratios[mid - 1] + ratios[mid]) / 2
    return {
        "queries": per_window * windows,
        "windows": windows,
        "sample_rate": sample_rate,
        "plain_us_per_query": round(plain / per_window * 1e6, 4),
        "tapped_us_per_query": round(tapped / per_window * 1e6, 4),
        "overhead_pct": round((median_ratio - 1.0) * 100, 2),
    }


def run(config):
    """Run the audit benchmarks; returns an ExperimentResult."""
    result = ExperimentResult(
        name="audit",
        description="shadow-replica differential verification: tap "
                    "overhead, clean-fleet silence per backend, and "
                    "kill-and-corrupt detection per corruption mode",
    )
    n, m = config.audit_graph

    on, om = config.audit_overhead_graph
    overhead = _measure_tap_overhead(
        on, om,
        queries=config.audit_overhead_queries,
        repeats=config.audit_overhead_repeats,
        sample_rate=config.audit_sample_rate,
        seed=config.seed,
    )
    result.extra["overhead"] = overhead
    overhead_table = Table(
        f"answer-tap overhead: single-threaded query loop, "
        f"{overhead['queries']} queries over {overhead['windows']} "
        f"interleaved windows (min), sample rate "
        f"{config.audit_sample_rate}",
        ["plain_us", "tapped_us", "overhead_pct"],
    )
    overhead_table.add_row(
        overhead["plain_us_per_query"],
        overhead["tapped_us_per_query"],
        overhead["overhead_pct"],
    )
    result.tables.append(overhead_table)

    clean_table = Table(
        f"clean audited fleet (kill replica-0 mid-run): "
        f"{config.audit_replicas} replicas, {config.audit_readers} readers, "
        f"{config.audit_duration}s, ER({n}, {m})",
        ["backend", "read_qps", "p50_ms", "p99_ms", "sampled", "audited",
         "stale", "divergences"],
    )
    result.extra["runs"] = {}
    for backend in config.audit_backends:
        report = run_audit_loadgen(
            backend=backend,
            replicas=config.audit_replicas,
            readers=config.audit_readers,
            duration=config.audit_duration,
            n=n,
            m=m,
            churn=config.audit_churn,
            sample_rate=config.audit_sample_rate,
            seed=config.seed,
            corrupt=None,
            kill=True,
            telemetry=config.telemetry,
        )
        clean_table.add_row(
            backend,
            report["read_qps"],
            report["read_latency_ms"]["p50"],
            report["read_latency_ms"]["p99"],
            report["sampler"]["sampled"],
            report["auditor"]["audited"],
            report["auditor"]["skipped_stale"],
            report["auditor"]["divergences"]["total"],
        )
        result.extra["runs"][backend] = report

    detect_table = Table(
        "kill-and-corrupt detection (core backend): one byzantine replica "
        "per mode, exactly one severity class expected",
        ["mode", "expected", "seen", "divergences", "mid_run",
         "detect_after_s"],
    )
    result.extra["detection"] = {}
    for mode in config.audit_corrupt_modes:
        report = run_audit_loadgen(
            backend="core",
            replicas=config.audit_replicas,
            readers=config.audit_readers,
            duration=config.audit_duration,
            n=n,
            m=m,
            churn=config.audit_churn,
            sample_rate=config.audit_sample_rate,
            seed=config.seed,
            corrupt=mode,
            kill=True,
            telemetry=config.telemetry,
        )
        detection = report["detection"]
        detect_table.add_row(
            mode,
            EXPECTED_SEVERITY[mode],
            ",".join(report["severities_seen"]),
            report["auditor"]["divergences"]["total"],
            detection.get("detected_during_run", False),
            detection.get("detection_after_s", ""),
        )
        result.extra["detection"][mode] = report
    result.tables.append(clean_table)
    result.tables.append(detect_table)
    return result
