"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.config import BenchConfig, get_profile
from repro.bench.runner import EXPERIMENTS, PAPER_SET, run_experiment
from repro.bench.tables import ExperimentResult, Table
from repro.bench.timing import Timer, distribution_summary, percentile

__all__ = [
    "BenchConfig",
    "get_profile",
    "run_experiment",
    "EXPERIMENTS",
    "PAPER_SET",
    "ExperimentResult",
    "Table",
    "Timer",
    "percentile",
    "distribution_summary",
]
