"""Shard load harness: a hub-partitioned fleet under live shadow audit.

Drives concurrent scatter-gather reads and a cyclic update stream against
a :class:`~repro.shard.ShardedCluster`, with the audit stack attached end
to end: an :class:`~repro.audit.AuditSampler` tapped into the shard
router — so what gets differentially verified is the *merged cross-shard
answer*, tagged with its consistent-cut seq — and a
:class:`~repro.audit.ShadowAuditor` replaying the primary's WAL.

The strict contract is the package's two safety claims, checked exactly:

* **zero divergences** — merging per-shard partials at a consistent cut
  must reproduce the full index's answers, under whatever churn ran;
* **refusal, never wrong** — with ``kill`` the run hard-stops one shard
  mid-stream: readers must observe :class:`~repro.exceptions.ShardError`
  refusals (counted, not failed) while the slice is missing, the fleet
  must serve again after ``restart``, and the divergence count must
  still be zero.

The report also carries the **memory criterion**: each shard's peak
materialized slice must stay within ``(1 + epsilon) / K`` of the
unsharded primary's label entries (strict mode fails the run otherwise).
Wired into the benchmark CLI as ``repro-bench shard``.
"""

import random
import shutil
import tempfile
import threading
import time

from repro.audit.comparator import DivergenceReport
from repro.audit.sampler import AuditSampler
from repro.audit.shadow import ShadowAuditor
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import AuditDivergenceError, ShardError, ServeError
from repro.serve.loadgen import _percentile, make_workload
from repro.serve.service import ServeConfig
from repro.shard.shardcluster import ShardConfig, ShardedCluster


def _primary_entries(engine):
    """Total label entries in the unsharded primary index (the 1/K
    criterion's denominator).  Call only while the writer is quiesced."""
    backend = engine.backend
    total = 0
    for v in engine.graph.vertices():
        lp = backend.label_payload(v)
        if lp is None:
            continue
        if isinstance(lp, dict):
            total += sum(len(entries) for entries in lp.values())
        else:
            total += len(lp)
    return total


def _reader_loop(cluster, pairs, deadline, seed, record):
    """Scatter-gather point + batch reads until the deadline.

    A :class:`ShardError` is the *designed* degraded mode (a shard is
    down, or no consistent cut was reachable in time) — counted as a
    refusal and retried, never a reader failure.
    """
    rng = random.Random(seed)
    latencies = []
    problems = []
    reads = 0
    refusals = 0
    post_restart_reads = 0
    try:
        while time.time() < deadline:
            s, t = pairs[rng.randrange(len(pairs))]
            start = time.perf_counter()
            try:
                cluster.query_tagged(s, t)
            except ShardError:
                refusals += 1
                time.sleep(0.002)  # don't hot-spin against a down fleet
                continue
            latencies.append(time.perf_counter() - start)
            reads += 1
            if record.get("restarted_at") is not None:
                post_restart_reads += 1
            if reads % 64 == 0:
                batch = [pairs[rng.randrange(len(pairs))] for _ in range(8)]
                try:
                    cluster.query_many(batch)
                    reads += len(batch)
                except ShardError:
                    refusals += 1
    except Exception as exc:  # noqa: BLE001 — a dead reader fails the run
        problems.append(f"reader thread crashed: {exc!r}")
    record["reads"] = reads
    record["refusals"] = refusals
    record["post_restart_reads"] = post_restart_reads
    record["latencies"] = latencies
    record["problems"] = problems


def _submitter_loop(cluster, cycle, deadline, batch_size, pause, record):
    submitted = 0
    i = 0
    record["problems"] = problems = []
    try:
        while cycle and time.time() < deadline:
            chunk = cycle[i:i + batch_size]
            if not chunk:
                i = 0
                continue
            cluster.submit_many(chunk)
            submitted += len(chunk)
            i = (i + len(chunk)) % len(cycle)
            if pause:
                time.sleep(pause)
    except Exception as exc:  # noqa: BLE001 — surfaced as a run failure
        problems.append(f"submitter thread crashed: {exc!r}")
    record["submitted"] = submitted


def _fault_controller(cluster, deadline, duration, restart, shared, record):
    """Kill shard-0 at 0.35·T; optionally restart it at 0.65·T.

    Absolute scheduling against the run's start (killing a shard joins
    its applier thread, so relative sleeps would drift the restart past
    the deadline on short runs).
    """
    problems = []
    events = {}
    start = deadline - duration
    try:
        time.sleep(max(0.0, start + duration * 0.35 - time.time()))
        if time.time() < deadline:
            cluster.kill_shard(0)
            events["killed"] = "shard-0"
            events["killed_at_seq"] = cluster.primary.applied_seq
        if restart:
            time.sleep(max(0.0, start + duration * 0.65 - time.time()))
            if "killed" in events and time.time() < deadline:
                cluster.restart_shard(0)
                events["restarted"] = "shard-0"
                events["restarted_at_seq"] = cluster.primary.applied_seq
                for rec in shared:
                    rec["restarted_at"] = time.time()
            elif "killed" in events:
                problems.append(
                    f"restart missed its injection window (raise duration "
                    f"above {duration} s)"
                )
    except Exception as exc:  # noqa: BLE001 — a failed injection is a failure
        problems.append(f"fault controller crashed: {exc!r}")
    record["events"] = events
    record["problems"] = problems


def run_shard_loadgen(backend="core", shards=4, partitioner="balanced",
                      readers=3, duration=1.2, n=240, m=720, churn=30,
                      batch_size=6, pause=0.001, seed=0,
                      sample_rate=0.2, reservoir=512, history=1024,
                      kill=False, restart=True, epsilon=0.35,
                      drain_timeout=30.0, state_dir=None, telemetry=None,
                      strict=True):
    """Run one audited shard-fleet load; returns a report dict.

    ``kill`` hard-stops shard-0 mid-run (and ``restart`` recovers it);
    ``epsilon`` is the slack of the per-shard ``(1+ε)/K`` memory bound.
    See the module docstring for the strict-mode contract.  With
    ``telemetry`` set to a directory, the fleet + audit stack are
    instrumented end to end and the registry is written there as a
    ``shard-<backend>[-kill].prom``/``.json`` pair.
    """
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=churn)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    own_dir = state_dir is None
    state_dir = state_dir or tempfile.mkdtemp(prefix="repro-shard-")
    serve_config = ServeConfig(queue_capacity=4096)
    shard_config = ShardConfig(shards=shards, partitioner=partitioner)
    cluster = None
    auditor = None
    try:
        cluster = ShardedCluster(
            engine, state_dir, config=shard_config,
            serve_config=serve_config, overwrite=True,
        )
        entries_at_start = _primary_entries(engine)
        sampler = AuditSampler(
            rate=sample_rate, capacity=reservoir, seed=seed + 5
        )
        cluster.set_answer_tap(sampler)
        auditor = ShadowAuditor(
            sampler, state_dir,
            report=DivergenceReport(),
            history=history,
        )
        registry = tracer = None
        if telemetry is not None:
            from repro.obs import MetricsRegistry, Tracer

            registry = MetricsRegistry()
            tracer = Tracer()
            cluster.set_metrics(registry, tracer=tracer)
            engine.set_metrics(registry)
            sampler.set_metrics(registry)
            auditor.set_metrics(registry)
    except BaseException:
        if auditor is not None:
            try:
                auditor.close()
            except ServeError:
                pass
        if cluster is not None:
            try:
                cluster.close()
            except ShardError:
                pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise

    run_started = time.time()
    deadline = run_started + duration
    reader_records = [{"restarted_at": None} for _ in range(readers)]
    threads = [
        threading.Thread(
            target=_reader_loop,
            args=(cluster, pairs, deadline, seed + 30 + i, reader_records[i]),
            name=f"shard-reader-{i}",
        )
        for i in range(readers)
    ]
    submit_record = {}
    threads.append(threading.Thread(
        target=_submitter_loop,
        args=(cluster, cycle, deadline, batch_size, pause, submit_record),
        name="shard-submitter",
    ))
    fault_record = {"events": {}, "problems": []}
    if kill:
        threads.append(threading.Thread(
            target=_fault_controller,
            args=(cluster, deadline, duration, restart, reader_records,
                  fault_record),
            name="shard-fault-controller",
        ))

    problems = []
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        run_ended = time.time()
        recovered = True
        if kill and restart and "restarted" in fault_record["events"]:
            # Prove recovery explicitly: a synced fleet must answer again.
            try:
                cluster.sync(timeout=30.0)
                cluster.query(*pairs[0])
            except ShardError as exc:
                recovered = False
                problems.append(f"post-restart read failed: {exc}")
        else:
            cluster.primary.flush(timeout=30.0)
        if not auditor.drain(timeout=drain_timeout):
            problems.append(
                f"auditor failed to drain within {drain_timeout} s "
                f"(pending {auditor.stats()['pending']})"
            )
        elapsed = run_ended - run_started
        entries_at_end = _primary_entries(engine)
        sampler_stats = sampler.stats()
        auditor_stats = auditor.stats()
        router_stats = cluster.router.stats()
        partitioner_desc = cluster.partitioner.describe()
        if registry is not None:
            from repro.obs.export import write_files

            stem = f"shard-{backend}" + ("-kill" if kill else "")
            telemetry_paths = write_files(
                registry, telemetry, tracer=tracer, stem=stem,
            )
        try:
            auditor.close()
        except ServeError as exc:
            problems.append(f"auditor died: {exc}")
    except BaseException:
        try:
            auditor.close()
        except ServeError:
            pass
        try:
            cluster.close()
        except ShardError:
            pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise
    try:
        cluster.close()
    except ShardError as exc:
        problems.append(f"shutdown failure: {exc}")
    if own_dir:
        shutil.rmtree(state_dir, ignore_errors=True)

    for rec in reader_records:
        problems.extend(rec.get("problems", []))
    problems.extend(submit_record.get("problems", []))
    problems.extend(fault_record.get("problems", []))

    # -- memory criterion ------------------------------------------------
    # The primary's entry count moves with the churn; take the larger of
    # the start/end observations as the unsharded baseline.  Shard peaks
    # are tracked continuously by their stores.
    primary_entries = max(entries_at_start, entries_at_end)
    shard_peaks = {
        s["name"]: s["peak_entries"] for s in router_stats["shards"]
    }
    bound = (1.0 + epsilon) / shards
    ratios = {
        name: (peak / primary_entries if primary_entries else 0.0)
        for name, peak in shard_peaks.items()
    }
    memory = {
        "primary_entries": primary_entries,
        "shard_peak_entries": shard_peaks,
        "peak_ratio": {k: round(v, 4) for k, v in ratios.items()},
        "bound": round(bound, 4),
        "epsilon": epsilon,
        "within_bound": all(r <= bound for r in ratios.values()),
    }

    refusals = sum(rec.get("refusals", 0) for rec in reader_records)
    report = auditor.report
    if strict:
        if auditor_stats["audited"] == 0:
            problems.append(
                "auditor audited zero merged answers — the run proves "
                "nothing (raise duration, sample_rate or reservoir)"
            )
        if report.total:
            problems.append(
                f"cross-shard merge diverged {report.total} time(s): "
                f"{report.divergences[0].describe()}"
            )
        if kill and "killed" in fault_record["events"] and not refusals:
            problems.append(
                "shard-0 was killed but no reader observed a refusal — "
                "the router kept serving without a hub slice"
            )
        if kill and restart and "restarted" in fault_record["events"] \
                and not recovered:
            problems.append("fleet did not serve again after the restart")
        if not memory["within_bound"]:
            problems.append(
                f"memory criterion violated: peak shard ratios "
                f"{memory['peak_ratio']} exceed (1+{epsilon})/{shards} "
                f"= {bound:.3f}"
            )

    latencies = sorted(
        lat for rec in reader_records for lat in rec.get("latencies", [])
    )
    reads = sum(rec.get("reads", 0) for rec in reader_records)
    result = {
        "backend": backend,
        "shards": shards,
        "partitioner": partitioner_desc,
        "readers": readers,
        "duration_s": round(elapsed, 3),
        "graph": {"n": n, "m": m},
        "reads": reads,
        "read_qps": round(reads / elapsed) if elapsed else 0,
        "read_latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 4),
            "p99": round(_percentile(latencies, 99) * 1e3, 4),
        },
        "updates_submitted": submit_record.get("submitted", 0),
        "refusals": refusals,
        "sample_rate": sample_rate,
        "sampler": sampler_stats,
        "auditor": auditor_stats,
        "router": {
            "routed": router_stats["routed"],
            "refusals": router_stats["refusals"],
            "cut_waits": router_stats["cut_waits"],
        },
        "shards": router_stats["shards"],
        "memory": memory,
        "telemetry": list(telemetry_paths) if registry is not None else None,
        "fault_injection": dict(
            fault_record["events"],
            post_restart_reads=sum(
                rec.get("post_restart_reads", 0) for rec in reader_records
            ),
        ),
        "shard_problems": problems,
    }
    if strict and problems:
        preview = "; ".join(str(p) for p in problems[:5])
        first = report.divergences[0] if report.divergences else None
        raise AuditDivergenceError(
            f"shard loadgen observed {len(problems)} problem(s) "
            f"({backend} backend, {shards} shards): {preview}",
            seq=first.seq if first else None,
            divergences=report.divergences,
        )
    return result
