"""repro.shard: hub-partitioned index shards with a scatter-gather router.

The serving layers so far scale *reads* by full replication: every
:class:`~repro.cluster.Replica` holds the whole 2-hop label index.  This
package scales the *index itself*: the hub space (the label entries' rank
dimension) is partitioned across K shards, each materializing only the
label entries whose hub falls in its slice — roughly ``1/K`` of the
memory — while a :class:`ShardRouter` answers queries by fanning a
partial two-pointer probe to every shard and folding the per-shard
``(dist, count)`` partials with the shared associative combiner
(:func:`repro.audit.merge_partial_answers`).

Correctness rests on two facts:

* the primary runs the paper's full IncSPC/DecSPC maintenance (pruning
  needs the *whole* index, so shards never repair labels themselves);
  shards follow a per-batch **label-delta journal** the primary writes
  next to its WAL (``ServeConfig.label_journal``), and
* the hub slices *partition* the maintained index's hub set, so merging
  per-slice partials is exactly the full index's two-pointer merge: equal
  minimal distances add their counts, and nothing is ever double-counted.

A lost shard makes its hub slice unreachable, so the router **refuses**
(:class:`~repro.exceptions.ShardError`) rather than serving a silently
wrong merged answer; :class:`ShardedCluster` wires primary + shards +
router together with kill/restart fault operations.
"""

from repro.shard.journal import OP_LABEL, OP_NOP, OP_RESET, decode_label_op
from repro.shard.loadgen import run_shard_loadgen
from repro.shard.partitioner import (
    HashPartitioner,
    HubPartitioner,
    RangePartitioner,
    balanced_boundaries,
    hub_weights_from_payload,
    make_partitioner,
)
from repro.shard.planner import gather_chunks, split_batch
from repro.shard.scatter import ShardRouter
from repro.shard.shard import Shard, ShardStore, partial_answer
from repro.shard.shardcluster import ShardConfig, ShardedCluster, shard_cluster

__all__ = [
    "HashPartitioner",
    "HubPartitioner",
    "RangePartitioner",
    "Shard",
    "ShardConfig",
    "ShardRouter",
    "ShardStore",
    "ShardedCluster",
    "balanced_boundaries",
    "decode_label_op",
    "gather_chunks",
    "hub_weights_from_payload",
    "make_partitioner",
    "partial_answer",
    "run_shard_loadgen",
    "shard_cluster",
    "split_batch",
    "OP_LABEL",
    "OP_NOP",
    "OP_RESET",
]
