"""Hub partitioners: who owns which hub rank.

A partitioner is a *total* function from hub ranks (non-negative ints) to
shard ids — total because new vertices keep appending fresh ranks at the
tail of the vertex order, and a rank no shard owns would silently drop
label entries.  Three strategies:

* :class:`RangePartitioner` — contiguous rank ranges, the last one
  open-ended.  Ranges keep each shard's slice cache-friendly and make the
  assignment trivially auditable.
* :class:`HashPartitioner` — deterministic multiplicative hashing.  No
  locality, but new tail ranks spread evenly without re-balancing.
* *balanced* ranges (:func:`balanced_boundaries`) — contiguous ranges cut
  so each shard holds roughly the same number of label *entries*.  This
  matters: 2-hop labelings are extremely top-heavy (the highest-ranked
  hubs appear in nearly every vertex's label set), so equal-*width* rank
  ranges would give shard 0 most of the index and defeat the 1/K memory
  goal.
"""

import abc
from bisect import bisect_right

from repro.exceptions import ShardError


class HubPartitioner(abc.ABC):
    """Assigns every hub rank to exactly one of ``num_shards`` shards."""

    @property
    @abc.abstractmethod
    def num_shards(self):
        """How many shards this partitioner spreads the hub space over."""

    @abc.abstractmethod
    def shard_of(self, hub_rank):
        """The shard id owning ``hub_rank`` (total over rank >= 0)."""

    def keep(self, shard_id):
        """A predicate ``keep(hub_rank) -> bool`` for one shard's slice."""
        if not 0 <= shard_id < self.num_shards:
            raise ShardError(
                f"shard id {shard_id!r} out of range for "
                f"{self.num_shards} shards"
            )
        return lambda hub_rank: self.shard_of(hub_rank) == shard_id

    @abc.abstractmethod
    def describe(self):
        """JSON-safe description (bench results, stats)."""


class RangePartitioner(HubPartitioner):
    """Contiguous hub-rank ranges split at ``boundaries``.

    ``boundaries`` is a strictly increasing list of K-1 cut points: shard
    ``i`` owns ranks in ``[boundaries[i-1], boundaries[i])`` (with an
    implicit 0 on the left and +inf on the right).  The last range is
    open-ended on purpose — ranks appended for new vertices land in the
    tail shard instead of falling off the partition.
    """

    def __init__(self, boundaries):
        boundaries = list(boundaries)
        if any(b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise ShardError(
                f"range boundaries must be strictly increasing, "
                f"got {boundaries!r}"
            )
        if boundaries and boundaries[0] <= 0:
            raise ShardError(
                f"the first boundary must be > 0 (shard 0 owns the top "
                f"ranks), got {boundaries!r}"
            )
        self._boundaries = boundaries

    @classmethod
    def equal_width(cls, num_ranks, num_shards):
        """K equal-width rank ranges over ``num_ranks`` rank slots."""
        if num_shards < 1:
            raise ShardError(f"need >= 1 shard, got {num_shards!r}")
        width = max(1, num_ranks // num_shards)
        return cls([width * i for i in range(1, num_shards)])

    @property
    def num_shards(self):
        return len(self._boundaries) + 1

    @property
    def boundaries(self):
        return list(self._boundaries)

    def shard_of(self, hub_rank):
        return bisect_right(self._boundaries, hub_rank)

    def keep(self, shard_id):
        # Range slices get a closed-form predicate (no bisect per entry).
        if not 0 <= shard_id < self.num_shards:
            raise ShardError(
                f"shard id {shard_id!r} out of range for "
                f"{self.num_shards} shards"
            )
        bounds = self._boundaries
        lo = bounds[shard_id - 1] if shard_id > 0 else 0
        hi = bounds[shard_id] if shard_id < len(bounds) else None
        if hi is None:
            return lambda hub_rank: hub_rank >= lo
        return lambda hub_rank: lo <= hub_rank < hi

    def describe(self):
        return {"kind": "range", "boundaries": list(self._boundaries)}

    def __repr__(self):
        return f"RangePartitioner(boundaries={self._boundaries!r})"


class HashPartitioner(HubPartitioner):
    """Deterministic multiplicative-hash assignment of ranks to shards.

    Knuth's 32-bit multiplicative mix keeps adjacent ranks apart, so the
    top-heavy head of the rank space spreads across all shards without
    knowing the holder distribution up front.
    """

    _MIX = 2654435761  # 2^32 / phi, Knuth's multiplicative constant

    def __init__(self, num_shards, seed=0):
        if num_shards < 1:
            raise ShardError(f"need >= 1 shard, got {num_shards!r}")
        self._num_shards = num_shards
        self._seed = seed

    @property
    def num_shards(self):
        return self._num_shards

    def shard_of(self, hub_rank):
        mixed = ((hub_rank + self._seed) * self._MIX) & 0xFFFFFFFF
        return (mixed >> 16) % self._num_shards

    def describe(self):
        return {"kind": "hash", "shards": self._num_shards, "seed": self._seed}

    def __repr__(self):
        return (
            f"HashPartitioner(num_shards={self._num_shards}, "
            f"seed={self._seed})"
        )


def hub_weights_from_payload(payload):
    """Per-hub-rank label-entry counts from a checkpoint payload.

    Walks every vertex's label payload via the backend's
    ``iter_label_payloads`` (both families on directed graphs, since both
    cost memory), so it works for all registered backends — including the
    SD family, whose index keeps no reverse hub map to read holder counts
    from directly.  Returns ``{hub_rank: entries}``.
    """
    from repro.engine import get_backend

    backend_cls = get_backend(payload["backend"])
    weights = {}
    for _v, lp in backend_cls.iter_label_payloads(payload["index"]):
        families = lp.values() if isinstance(lp, dict) else (lp,)
        for entries in families:
            for entry in entries:
                h = entry[0]
                weights[h] = weights.get(h, 0) + 1
    return weights


def balanced_boundaries(weights, num_shards):
    """Greedy holder-balanced range cuts: K-1 boundaries over the ranks.

    Walks the ranks in order accumulating ``weights`` (label entries per
    rank) and cuts whenever the running total crosses the next ``1/K``
    quantile of the grand total — contiguous ranges, near-equal entry
    mass.  Degenerate inputs (fewer distinct ranks than shards) still
    return strictly increasing boundaries; the starved tail shards simply
    own empty ranges until new ranks grow into them.
    """
    if num_shards < 1:
        raise ShardError(f"need >= 1 shard, got {num_shards!r}")
    if num_shards == 1:
        return []
    total = sum(weights.values())
    if not total:
        return list(range(1, num_shards))
    cuts = []
    acc = 0
    for rank in sorted(weights):
        acc += weights[rank]
        if acc >= total * (len(cuts) + 1) / num_shards:
            cuts.append(rank + 1)
            if len(cuts) == num_shards - 1:
                break
    # Pad degenerate cases so the partitioner still has K ranges.
    while len(cuts) < num_shards - 1:
        cuts.append((cuts[-1] if cuts else 0) + 1)
    return cuts


def make_partitioner(kind, num_shards, payload=None, seed=0):
    """Build a partitioner by strategy name (``ShardConfig.partitioner``).

    ``"hash"`` needs no index knowledge; ``"range"`` (equal-width) and
    ``"balanced"`` read the checkpoint ``payload`` the shards will
    bootstrap from.
    """
    if kind == "hash":
        return HashPartitioner(num_shards, seed=seed)
    if kind not in ("range", "balanced"):
        raise ShardError(
            f"unknown partitioner strategy {kind!r}; "
            f"choose from 'range', 'hash', 'balanced'"
        )
    if payload is None:
        raise ShardError(
            f"partitioner strategy {kind!r} needs a checkpoint payload"
        )
    if kind == "range":
        return RangePartitioner.equal_width(
            len(payload["index"]["order"]), num_shards
        )
    return RangePartitioner(
        balanced_boundaries(hub_weights_from_payload(payload), num_shards)
    )
