"""ShardRouter: scatter-gather reads over hub-partitioned shards.

Every read needs *all* healthy shards (each owns part of the hub space),
at *one* journal sequence number (mixing seqs would merge partials that
never coexisted — an answer matching no prefix of the update log, which
the shadow auditor would rightly flag).  The router therefore acquires a
:class:`ShardCut` per read: the freshest seq for which every shard still
has a published view in its ring, waiting briefly for laggards.  Per-
shard partial answers are folded with the audit comparator's shared
combiner (:func:`repro.audit.merge_partial_answers`) — hub slices
partition the index's hub set, so the fold *is* the full two-pointer
merge, counts and all.

Failure semantics are deliberately asymmetric to replication: a cluster
of full replicas degrades gracefully (any survivor can answer), while a
shard fleet missing one slice cannot answer *anything* without risking a
wrong distance or count — so any unhealthy shard, or an unattainable
cut, raises :class:`~repro.exceptions.ShardError`.  Refusal over wrong
answers.
"""

import threading
import time
from functools import reduce

from repro.audit.comparator import merge_partial_answers
from repro.exceptions import ShardError
from repro.shard.planner import gather_chunks, split_batch


class ShardCut:
    """One consistent cross-shard read point: a seq + per-shard views."""

    __slots__ = ("seq", "views", "shards")

    def __init__(self, seq, shards, views):
        self.seq = seq
        self.shards = shards
        self.views = views

    def partials(self, s, t):
        """Every shard's partial answer for (s, t) at this cut."""
        return [
            shard.partial(s, t, view)
            for shard, view in zip(self.shards, self.views)
        ]


class ShardRouter:
    """Fan queries to every shard and merge the partial answers.

    Parameters
    ----------
    shards:
        The :class:`~repro.shard.Shard` fleet (one per partition slot).
    wait_timeout:
        How long a read may wait for a consistent cut before refusing.
    parallel_threshold:
        ``query_many`` batches at least this long are split into
        concurrent sub-batches (see :mod:`repro.shard.planner`).
    """

    def __init__(self, shards, wait_timeout=5.0, parallel_threshold=64):
        shards = list(shards)
        if not shards:
            raise ShardError("a shard router needs at least one shard")
        backends = {s.backend_name for s in shards}
        if len(backends) > 1:
            raise ShardError(
                f"shards must share one backend family, got {sorted(backends)}"
            )
        self._shards = shards
        self.wait_timeout = wait_timeout
        self.parallel_threshold = parallel_threshold
        self._counts = shards[0].counts
        self._lock = threading.Lock()
        self._answer_tap = None
        self._routed = 0
        self._refusals = 0
        self._cut_waits = 0

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    @property
    def num_shards(self):
        return len(self._shards)

    @property
    def shards(self):
        """The shard fleet, in partition-slot order (do not mutate)."""
        return list(self._shards)

    def set_shard(self, shard_id, shard):
        """Swap the shard in slot ``shard_id`` (a restarted shard)."""
        for i, existing in enumerate(self._shards):
            if existing.shard_id == shard_id:
                self._shards[i] = shard
                return
        raise ShardError(f"router knows no shard with id {shard_id!r}")

    # ------------------------------------------------------------------
    # Consistent cuts
    # ------------------------------------------------------------------

    def acquire(self, min_seq=0):
        """Pin a consistent cross-shard cut at ``seq >= min_seq``.

        Picks the freshest seq every shard has published, waiting for
        laggards up to ``wait_timeout``.  Refuses immediately — without
        waiting — when any shard is unhealthy: a dead shard's slice
        cannot catch up, and serving without it would be wrong, not
        stale.
        """
        deadline = time.monotonic() + self.wait_timeout
        while True:
            shards = self._shards
            down = [s.name for s in shards if not s.healthy]
            if down:
                with self._lock:
                    self._refusals += 1
                raise ShardError(
                    f"shard(s) {down} are down; refusing cross-shard reads "
                    f"(a missing hub slice cannot be merged around)"
                )
            hi = min(s.latest_seq for s in shards)
            lo = max(s.min_seq for s in shards)
            if hi >= max(lo, min_seq):
                views = [s.view_at(hi) for s in shards]
                if all(v is not None for v in views):
                    return ShardCut(hi, list(shards), views)
            if time.monotonic() >= deadline:
                with self._lock:
                    self._refusals += 1
                raise ShardError(
                    f"no consistent cross-shard cut at seq >= {min_seq} "
                    f"within {self.wait_timeout} s (shards at "
                    f"{[s.applied_seq for s in shards]}); refusing"
                )
            with self._lock:
                self._cut_waits += 1
            time.sleep(0.001)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def set_answer_tap(self, tap):
        """Install (or clear, with ``None``) the answer-tap hook.

        Same contract as ``SPCService.set_answer_tap`` / the cluster
        router: ``tap(answered, seq, target, epoch)`` fires after every
        *merged* read with the cut's journal seq — so an
        :class:`~repro.audit.AuditSampler` + shadow auditor replaying the
        primary's WAL to that seq differentially verifies the cross-shard
        merge itself.
        """
        self._answer_tap = tap

    def _tapped(self, cut, answered):
        tap = self._answer_tap
        if tap is not None:
            tap(answered, cut.seq, "shard-router", 0)

    def _merge(self, partials):
        answer = reduce(merge_partial_answers, partials)
        if not self._counts:
            # Distance-only families answer (inf, None), not (inf, 0).
            return (answer[0], None)
        return answer

    def query(self, s, t, min_seq=0):
        """Merged (dist, count) for one pair at one consistent cut."""
        cut = self.acquire(min_seq)
        answer = self._merge(cut.partials(s, t))
        with self._lock:
            self._routed += 1
        self._tapped(cut, [((s, t), answer)])
        return answer

    def query_tagged(self, s, t, min_seq=0):
        """Merged answer plus its consistency tag: (answer, seq)."""
        cut = self.acquire(min_seq)
        answer = self._merge(cut.partials(s, t))
        with self._lock:
            self._routed += 1
        self._tapped(cut, [((s, t), answer)])
        return answer, cut.seq

    def query_many(self, pairs, min_seq=0):
        """Answer a batch of pairs against one consistent cut.

        One cut serves the whole batch (every answer carries the same
        seq); large batches are split into concurrent sub-batches and
        reassembled in submission order (:mod:`repro.shard.planner`).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        cut = self.acquire(min_seq)
        chunks = split_batch(
            pairs, ways=len(self._shards),
            min_chunk=max(1, self.parallel_threshold // 2),
        )
        parallel = len(pairs) >= self.parallel_threshold

        def worker(_offset, chunk):
            return [self._merge(cut.partials(s, t)) for s, t in chunk]

        answers = gather_chunks(chunks, worker, parallel=parallel)
        with self._lock:
            self._routed += len(pairs)
        self._tapped(cut, list(zip(pairs, answers)))
        return answers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Router counters plus per-shard stats (JSON-safe)."""
        with self._lock:
            counters = {
                "routed": self._routed,
                "refusals": self._refusals,
                "cut_waits": self._cut_waits,
            }
        counters["shards"] = [s.stats() for s in self._shards]
        return counters

    def __repr__(self):
        return (
            f"ShardRouter(shards={[s.name for s in self._shards]}, "
            f"routed={self._routed}, refusals={self._refusals})"
        )
