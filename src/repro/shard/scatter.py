"""ShardRouter: scatter-gather reads over hub-partitioned shards.

Every read needs *all* healthy shards (each owns part of the hub space),
at *one* journal sequence number (mixing seqs would merge partials that
never coexisted — an answer matching no prefix of the update log, which
the shadow auditor would rightly flag).  The router therefore acquires a
:class:`ShardCut` per read: the freshest seq for which every shard still
has a published view in its ring, waiting briefly for laggards.  Per-
shard partial answers are folded with the audit comparator's shared
combiner (:func:`repro.audit.merge_partial_answers`) — hub slices
partition the index's hub set, so the fold *is* the full two-pointer
merge, counts and all.

Failure semantics are deliberately asymmetric to replication: a cluster
of full replicas degrades gracefully (any survivor can answer), while a
shard fleet missing one slice cannot answer *anything* without risking a
wrong distance or count — so any unhealthy shard, or an unattainable
cut, raises :class:`~repro.exceptions.ShardError`.  Refusal over wrong
answers.

Resilience hooks (same vocabulary as the cluster router):

* **Condition-variable waits** — cut waiters block on a condition
  notified by every shard publish (``ShardedCluster`` wires each shard's
  ``set_publish_listener`` to :meth:`notify_event`) instead of spinning
  at 1 ms, with a 50 ms poll cap as a safety net.
* **Per-shard circuit breakers** — a shard that keeps causing refusals
  (down, or the laggard at a cut timeout) trips its breaker, after which
  acquires refuse *instantly* instead of burning the full
  ``wait_timeout`` per request; the cooldown admits one probing acquire,
  and a successful cut closes every breaker.  Refusal semantics are
  unchanged — the breaker only makes refusal cheap while the supervisor
  heals the fleet.
* **Opt-in degraded mode** — with ``degraded="stale"``, a read that
  would refuse (and has no ``min_seq`` floor) is served from the newest
  *common historical cut*: the freshest seq at which every shard — dead
  or alive — still holds a ring view, bounded by ``degraded_max_lag``
  against the freshest shard.  Ring views are immutable and seq-aligned,
  so the merged answer is exactly the fleet's answer at that (stale)
  cut — bounded-stale, never wrong; the tap sees the target as
  ``"shard-router+degraded"``.  The default stays ``"refuse"``.
"""

import threading
import time
from functools import reduce

from repro.audit.comparator import merge_partial_answers
from repro.exceptions import ShardError
from repro.resilience.breaker import CircuitBreaker
from repro.shard.planner import gather_chunks, split_batch

#: degraded-mode vocabulary: refuse (default) or serve bounded-stale.
DEGRADED_MODES = ("refuse", "stale")

#: cap on each blocking wait slice — the safety net under lost wakeups.
_WAIT_SLICE = 0.05


class ShardCut:
    """One consistent cross-shard read point: a seq + per-shard views.

    ``wait_s`` / ``pin_s`` carry the acquire's stage timings (time spent
    waiting for a consistent seq vs. pinning the per-shard views) when
    the router is instrumented; they stay 0.0 otherwise.
    """

    __slots__ = ("seq", "views", "shards", "degraded", "wait_s", "pin_s")

    def __init__(self, seq, shards, views, degraded=False):
        self.seq = seq
        self.shards = shards
        self.views = views
        self.degraded = degraded
        self.wait_s = 0.0
        self.pin_s = 0.0

    def partials(self, s, t):
        """Every shard's partial answer for (s, t) at this cut."""
        return [
            shard.partial(s, t, view)
            for shard, view in zip(self.shards, self.views)
        ]


class _ShardObs:
    """Pre-created instruments for one shard router (see ``set_metrics``).

    The six acceptance stages — ``queue_wait``, ``snapshot_pin``,
    ``scatter``, ``shard_probe``, ``merge``, ``tap`` — each get a
    histogram under ``repro_shard_stage_seconds{stage=...}``, plus an
    explicit ``unattributed`` stage holding whatever end-to-end time no
    stage claimed, so the per-stage sums reconcile exactly with
    ``repro_shard_read_latency_seconds``.
    """

    __slots__ = ("tracer", "reads", "fanout", "latency", "refusals",
                 "s_wait", "s_pin", "s_scatter", "s_probe", "s_merge",
                 "s_tap", "s_unattributed", "transitions")

    def __init__(self, registry, tracer):
        self.tracer = tracer
        self.reads = registry.counter("repro_shard_reads")
        self.fanout = registry.counter("repro_shard_fanout")
        # "repro_shard_refusals" is the promoted stats() gauge (which
        # also counts refusals converted to degraded serves); this
        # counter counts only reads actually refused with an error.
        self.refusals = registry.counter("repro_shard_read_refusals")
        self.latency = registry.histogram("repro_shard_read_latency_seconds")
        stage = registry.histogram
        self.s_wait = stage("repro_shard_stage_seconds", stage="queue_wait")
        self.s_pin = stage("repro_shard_stage_seconds", stage="snapshot_pin")
        self.s_scatter = stage("repro_shard_stage_seconds", stage="scatter")
        self.s_probe = stage("repro_shard_stage_seconds", stage="shard_probe")
        self.s_merge = stage("repro_shard_stage_seconds", stage="merge")
        self.s_tap = stage("repro_shard_stage_seconds", stage="tap")
        self.s_unattributed = stage("repro_shard_stage_seconds",
                                    stage="unattributed")
        self.transitions = {
            state: registry.counter(
                "repro_shard_breaker_transitions", to=state
            )
            for state in ("closed", "open", "half_open")
        }

    def on_breaker_transition(self, _old, new):
        counter = self.transitions.get(new)
        if counter is not None:
            counter.inc()


class ShardRouter:
    """Fan queries to every shard and merge the partial answers.

    Parameters
    ----------
    shards:
        The :class:`~repro.shard.Shard` fleet (one per partition slot).
    wait_timeout:
        How long a read may wait for a consistent cut before refusing.
    parallel_threshold:
        ``query_many`` batches at least this long are split into
        concurrent sub-batches (see :mod:`repro.shard.planner`).
    degraded:
        ``"refuse"`` (default) or ``"stale"`` — see the module docstring.
    degraded_max_lag:
        Bound (in journal seqs, against the freshest shard) on how stale
        a degraded cut may be.
    breaker_threshold / breaker_cooldown:
        Per-shard :class:`~repro.resilience.CircuitBreaker` tuning —
        consecutive refusal-causing failures before acquires start
        refusing instantly, and how long until a probe is admitted.
    """

    def __init__(self, shards, wait_timeout=5.0, parallel_threshold=64,
                 degraded="refuse", degraded_max_lag=64,
                 breaker_threshold=3, breaker_cooldown=0.25):
        shards = list(shards)
        if not shards:
            raise ShardError("a shard router needs at least one shard")
        backends = {s.backend_name for s in shards}
        if len(backends) > 1:
            raise ShardError(
                f"shards must share one backend family, got {sorted(backends)}"
            )
        if degraded not in DEGRADED_MODES:
            raise ShardError(
                f"unknown degraded mode {degraded!r}; "
                f"choose from {DEGRADED_MODES}"
            )
        if degraded_max_lag < 0:
            raise ShardError(
                f"degraded_max_lag must be >= 0, got {degraded_max_lag!r}"
            )
        self._shards = shards
        self.wait_timeout = wait_timeout
        self.parallel_threshold = parallel_threshold
        self.degraded = degraded
        self.degraded_max_lag = degraded_max_lag
        self._counts = shards[0].counts
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._breakers = {
            s.shard_id: CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
            )
            for s in shards
        }
        self._answer_tap = None
        self._obs = None
        self._routed = 0
        self._refusals = 0
        self._fast_refusals = 0
        self._degraded_serves = 0
        self._cut_waits = 0

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    @property
    def num_shards(self):
        return len(self._shards)

    @property
    def shards(self):
        """The shard fleet, in partition-slot order (do not mutate)."""
        return list(self._shards)

    def set_shard(self, shard_id, shard):
        """Swap the shard in slot ``shard_id`` (a restarted shard).

        Resets the slot's circuit breaker and wakes cut waiters so the
        fresh member is examined immediately.
        """
        for i, existing in enumerate(self._shards):
            if existing.shard_id == shard_id:
                self._shards[i] = shard
                breaker = self._breakers.get(shard_id)
                if breaker is not None:
                    breaker.reset()
                self.notify_event()
                return
        raise ShardError(f"router knows no shard with id {shard_id!r}")

    def notify_event(self, *_args, **_kwargs):
        """Wake blocked cut waiters (publish / health-change seam).

        Wired to every shard's ``set_publish_listener`` and usable as a
        :class:`~repro.resilience.HealthMonitor` listener (extra
        arguments are accepted and ignored).
        """
        with self._wakeup:
            self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # Consistent cuts
    # ------------------------------------------------------------------

    def acquire(self, min_seq=0):
        """Pin a consistent cross-shard cut at ``seq >= min_seq``.

        Picks the freshest seq every shard has published, waiting for
        laggards up to ``wait_timeout``.  Refuses immediately — without
        waiting — when any shard is unhealthy (a dead shard's slice
        cannot catch up, and serving without it would be wrong, not
        stale) or when a tripped breaker says the last refusals are
        still being healed.  Under ``degraded="stale"`` a floorless
        refusal is converted into a bounded-stale historical cut when
        one exists (see the module docstring).

        When instrumented, the returned cut carries its stage timings
        (``wait_s`` = time until a consistent seq existed, ``pin_s`` =
        the final view-pinning pass).
        """
        obs = self._obs
        t0 = time.perf_counter() if obs is not None else 0.0
        # The breaker gate runs once per acquire: an open breaker means
        # recent acquires kept refusing on this shard, so refuse fast
        # instead of burning wait_timeout; an admitted probe makes this
        # acquire the one that re-tests the fleet.
        blocked = [
            shard.name
            for shard in self._shards
            if not self._breakers[shard.shard_id].allow()
        ]
        if blocked:
            with self._lock:
                self._fast_refusals += 1
                self._refusals += 1
            return self._stamped(t0, self._refuse_or_degrade(
                min_seq, ShardError(
                    f"circuit open for shard(s) {blocked}: recent reads "
                    f"kept refusing there; failing fast while the fleet "
                    f"heals"
                )))
        deadline = time.monotonic() + self.wait_timeout
        while True:
            shards = self._shards
            down = [s.name for s in shards if not s.healthy]
            if down:
                for s in shards:
                    if not s.healthy:
                        self._breakers[s.shard_id].record_failure()
                with self._lock:
                    self._refusals += 1
                return self._stamped(t0, self._refuse_or_degrade(
                    min_seq, ShardError(
                        f"shard(s) {down} are down; refusing cross-shard "
                        f"reads (a missing hub slice cannot be merged "
                        f"around)"
                    )))
            hi = min(s.latest_seq for s in shards)
            lo = max(s.min_seq for s in shards)
            if hi >= max(lo, min_seq):
                t_pin = time.perf_counter() if obs is not None else 0.0
                views = [s.view_at(hi) for s in shards]
                if all(v is not None for v in views):
                    for breaker in self._breakers.values():
                        breaker.record_success()
                    cut = ShardCut(hi, list(shards), views)
                    if obs is not None:
                        cut.wait_s = t_pin - t0
                        cut.pin_s = time.perf_counter() - t_pin
                    return cut
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Blame the laggard(s): the shard(s) pinning `hi` down.
                for s in shards:
                    if s.latest_seq <= hi:
                        self._breakers[s.shard_id].record_failure()
                with self._lock:
                    self._refusals += 1
                return self._stamped(t0, self._refuse_or_degrade(
                    min_seq, ShardError(
                        f"no consistent cross-shard cut at seq >= "
                        f"{min_seq} within {self.wait_timeout} s (shards "
                        f"at {[s.applied_seq for s in shards]}); refusing"
                    )))
            with self._wakeup:
                self._cut_waits += 1
                self._wakeup.wait(min(_WAIT_SLICE, remaining))

    def _stamped(self, t0, cut):
        """Attribute a degraded cut's whole acquire time to queue_wait."""
        if self._obs is not None:
            cut.wait_s = time.perf_counter() - t0
        return cut

    def _refuse_or_degrade(self, min_seq, error):
        """Raise ``error`` — or, under opt-in degraded mode, serve the
        newest bounded-stale common cut instead (floorless reads only:
        read-your-writes never degrades)."""
        if self.degraded == "stale" and min_seq == 0:
            cut = self._degraded_cut()
            if cut is not None:
                with self._lock:
                    self._degraded_serves += 1
                return cut
        obs = self._obs
        if obs is not None:
            obs.refusals.inc()
        raise error

    def _degraded_cut(self):
        """The newest seq at which *every* shard still holds a ring view,
        health ignored, bounded by ``degraded_max_lag`` vs the freshest
        shard; ``None`` when the rings no longer intersect in bound."""
        shards = self._shards
        hi = min(s.latest_seq for s in shards)
        lo = max(s.min_seq for s in shards)
        freshest = max(s.latest_seq for s in shards)
        lo = max(lo, freshest - self.degraded_max_lag)
        for seq in range(hi, lo - 1, -1):
            views = [s.view_at(seq) for s in shards]
            if all(v is not None for v in views):
                return ShardCut(seq, list(shards), views, degraded=True)
        return None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def set_answer_tap(self, tap):
        """Install (or clear, with ``None``) the answer-tap hook.

        Same contract as ``SPCService.set_answer_tap`` / the cluster
        router: ``tap(answered, seq, target, epoch)`` fires after every
        *merged* read with the cut's journal seq — so an
        :class:`~repro.audit.AuditSampler` + shadow auditor replaying the
        primary's WAL to that seq differentially verifies the cross-shard
        merge itself.  Degraded cuts report ``"shard-router+degraded"``.
        """
        self._answer_tap = tap

    def set_metrics(self, registry, tracer=None):
        """Install (or clear, with ``None``) the telemetry seam.

        Promotes ``stats()`` into ``registry`` as callback gauges, arms
        the six-stage read breakdown (``queue_wait`` / ``snapshot_pin`` /
        ``scatter`` / ``shard_probe`` / ``merge`` / ``tap``, plus an
        explicit ``unattributed`` remainder so stage sums reconcile with
        end-to-end latency), counts breaker transitions and refusals,
        and — with a :class:`~repro.obs.Tracer` — retains span trees for
        sampled scatter-gather reads.
        """
        if registry is None:
            for breaker in self._breakers.values():
                breaker.set_listener(None)
            self._obs = None
            return
        from repro.obs.bind import bind_shard_router

        bind_shard_router(registry, self)
        obs = _ShardObs(registry, tracer)
        for breaker in self._breakers.values():
            breaker.set_listener(obs.on_breaker_transition)
        self._obs = obs

    def _tapped(self, cut, answered):
        tap = self._answer_tap
        if tap is not None:
            name = "shard-router+degraded" if cut.degraded else "shard-router"
            tap(answered, cut.seq, name, 0)

    def _merge(self, partials):
        answer = reduce(merge_partial_answers, partials)
        if not self._counts:
            # Distance-only families answer (inf, None), not (inf, 0).
            return (answer[0], None)
        return answer

    def query(self, s, t, min_seq=0):
        """Merged (dist, count) for one pair at one consistent cut."""
        obs = self._obs
        if obs is None:
            cut = self.acquire(min_seq)
            answer = self._merge(cut.partials(s, t))
            with self._lock:
                self._routed += 1
            self._tapped(cut, [((s, t), answer)])
            return answer
        tracer = obs.tracer
        trace = tracer.maybe_begin("shard_query") if tracer else None
        t0 = time.perf_counter()
        cut = self.acquire(min_seq)
        # Scatter = the fan-out loop's own overhead; each shard's probe
        # is timed individually so scatter never absorbs probe time.
        t_sc = time.perf_counter()
        partials = []
        probe_s = 0.0
        for shard, view in zip(cut.shards, cut.views):
            p0 = time.perf_counter()
            partials.append(shard.partial(s, t, view))
            p1 = time.perf_counter()
            probe_s += p1 - p0
            if trace is not None:
                trace.add("shard_probe", p1 - p0,
                          meta={"shard": shard.name})
        t_gathered = time.perf_counter()
        scatter_s = (t_gathered - t_sc) - probe_s
        answer = self._merge(partials)
        t_merged = time.perf_counter()
        with self._lock:
            self._routed += 1
        self._tapped(cut, [((s, t), answer)])
        t_end = time.perf_counter()
        total_s = t_end - t0
        merge_s = t_merged - t_gathered
        tap_s = t_end - t_merged
        unattributed_s = total_s - (
            cut.wait_s + cut.pin_s + scatter_s + probe_s + merge_s + tap_s
        )
        obs.reads.inc()
        obs.fanout.inc(len(cut.shards))
        obs.latency.observe(total_s)
        obs.s_wait.observe(cut.wait_s)
        obs.s_pin.observe(cut.pin_s)
        obs.s_scatter.observe(scatter_s)
        obs.s_probe.observe(probe_s)
        obs.s_merge.observe(merge_s)
        obs.s_tap.observe(tap_s)
        obs.s_unattributed.observe(unattributed_s)
        if trace is not None:
            trace.add("queue_wait", cut.wait_s, meta={"seq": cut.seq})
            trace.add("snapshot_pin", cut.pin_s)
            trace.add("scatter", scatter_s)
            trace.add("merge", merge_s)
            trace.add("tap", tap_s)
            trace.add("unattributed", unattributed_s)
            trace.finish(total_s)
        return answer

    def query_tagged(self, s, t, min_seq=0):
        """Merged answer plus its provenance: (answer, seq, target).

        ``target`` matches what the answer tap sees — ``"shard-router"``
        for a healthy cut, ``"shard-router+degraded"`` for a
        bounded-stale one — so callers can observe degraded serves
        without registering a tap (same contract as the cluster
        router's ``query_tagged``).
        """
        cut = self.acquire(min_seq)
        answer = self._merge(cut.partials(s, t))
        with self._lock:
            self._routed += 1
        self._tapped(cut, [((s, t), answer)])
        name = "shard-router+degraded" if cut.degraded else "shard-router"
        return answer, cut.seq, name

    def query_many(self, pairs, min_seq=0):
        """Answer a batch of pairs against one consistent cut.

        One cut serves the whole batch (every answer carries the same
        seq); large batches are split into concurrent sub-batches and
        reassembled in submission order (:mod:`repro.shard.planner`).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        obs = self._obs
        t0 = time.perf_counter() if obs is not None else 0.0
        cut = self.acquire(min_seq)
        t_sc = time.perf_counter() if obs is not None else 0.0
        chunks = split_batch(
            pairs, ways=len(self._shards),
            min_chunk=max(1, self.parallel_threshold // 2),
        )
        parallel = len(pairs) >= self.parallel_threshold

        def worker(_offset, chunk):
            return [self._merge(cut.partials(s, t)) for s, t in chunk]

        answers = gather_chunks(chunks, worker, parallel=parallel)
        t_gathered = time.perf_counter() if obs is not None else 0.0
        with self._lock:
            self._routed += len(pairs)
        self._tapped(cut, list(zip(pairs, answers)))
        if obs is not None:
            # Batch path: probe and merge run inside the gather workers
            # (possibly concurrently), so their time is attributed to the
            # scatter stage as a whole rather than split per shard.
            t_end = time.perf_counter()
            total_s = t_end - t0
            scatter_s = t_gathered - t_sc
            tap_s = t_end - t_gathered
            unattributed_s = total_s - (
                cut.wait_s + cut.pin_s + scatter_s + tap_s
            )
            obs.reads.inc()
            obs.fanout.inc(len(cut.shards))
            obs.latency.observe(total_s)
            obs.s_wait.observe(cut.wait_s)
            obs.s_pin.observe(cut.pin_s)
            obs.s_scatter.observe(scatter_s)
            obs.s_tap.observe(tap_s)
            obs.s_unattributed.observe(unattributed_s)
            tracer = obs.tracer
            trace = (tracer.maybe_begin("shard_query_many",
                                        meta={"pairs": len(pairs)})
                     if tracer else None)
            if trace is not None:
                trace.add("queue_wait", cut.wait_s, meta={"seq": cut.seq})
                trace.add("snapshot_pin", cut.pin_s)
                trace.add("scatter", scatter_s)
                trace.add("tap", tap_s)
                trace.add("unattributed", unattributed_s)
                trace.finish(total_s)
        return answers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Router counters plus per-shard stats (JSON-safe)."""
        with self._lock:
            counters = {
                "routed": self._routed,
                "refusals": self._refusals,
                "fast_refusals": self._fast_refusals,
                "degraded_serves": self._degraded_serves,
                "degraded_mode": self.degraded,
                "cut_waits": self._cut_waits,
            }
        counters["breakers"] = {
            str(shard_id): breaker.stats()
            for shard_id, breaker in self._breakers.items()
        }
        counters["shards"] = [s.stats() for s in self._shards]
        return counters

    def __repr__(self):
        return (
            f"ShardRouter(shards={[s.name for s in self._shards]}, "
            f"routed={self._routed}, refusals={self._refusals})"
        )
