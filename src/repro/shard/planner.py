"""Batch planning shared by the replica and shard routers.

Both ``query_many`` paths face the same shape of work: a list of query
pairs, several independent serving targets, and answers that must come
back in submission order.  The planner keeps the deterministic part —
how to split a batch and how to reassemble ordered results — in one
place, so :class:`~repro.cluster.ClusterRouter` (split across healthy
replicas) and :class:`~repro.shard.ShardRouter` (split into concurrent
sub-batches over one consistent cut) cannot drift apart.

Splits are *contiguous*: chunk boundaries preserve submission order, so
reassembly is a positional write, and a sub-batch maps back to a
contiguous range of the caller's pairs when something needs reporting.
"""

from concurrent.futures import ThreadPoolExecutor


def split_batch(items, ways, min_chunk=1):
    """Split ``items`` into at most ``ways`` contiguous chunks.

    Returns ``[(offset, chunk), ...]`` with near-equal chunk sizes, no
    chunk smaller than ``min_chunk`` (except a final short remainder when
    the batch itself is shorter) and never an empty chunk.  ``ways <= 1``
    or a too-small batch degrades to a single chunk — the callers' signal
    to keep their cheap single-target path.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    if min_chunk > 0:
        ways = min(ways, n // min_chunk or 1)
    ways = max(1, min(ways, n))
    base, extra = divmod(n, ways)
    chunks = []
    offset = 0
    for i in range(ways):
        size = base + (1 if i < extra else 0)
        chunks.append((offset, items[offset:offset + size]))
        offset += size
    return chunks


def gather_chunks(chunks, worker, parallel=True):
    """Run ``worker(offset, chunk) -> [result, ...]`` over every chunk and
    reassemble one flat, submission-ordered result list.

    With ``parallel`` the chunks run on a transient thread pool (one
    worker per chunk — the chunk count is already bounded by the target
    count); the first worker exception propagates after the pool drains,
    so a failed sub-batch fails the whole batch instead of returning a
    silently shorter answer list.
    """
    if not chunks:
        return []
    total = sum(len(chunk) for _off, chunk in chunks)
    out = [None] * total
    if len(chunks) == 1 or not parallel:
        for offset, chunk in chunks:
            out[offset:offset + len(chunk)] = worker(offset, chunk)
        return out
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            (offset, len(chunk), pool.submit(worker, offset, chunk))
            for offset, chunk in chunks
        ]
        for offset, size, future in futures:
            results = future.result()
            if len(results) != size:
                raise ValueError(
                    f"batch worker returned {len(results)} answers for a "
                    f"chunk of {size}"
                )
            out[offset:offset + size] = results
    return out
