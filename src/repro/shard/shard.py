"""Shard: one hub slice of the index, kept fresh by tailing the journal.

A :class:`Shard` is a *materialized view*, not an engine: it holds no
graph and runs no maintenance algorithm (the paper's pruning rules need
the whole index — a slice would under-prune and corrupt counts; see
DESIGN.md §13).  Its state is a :class:`ShardStore` mapping every vertex
to the label entries whose hub falls in this shard's slice, bootstrapped
by filtering the primary's checkpoint
(:func:`repro.serve.persist.checkpoint_label_slice`) and advanced by one
applier thread tailing the primary's label-delta journal — the same
bootstrap / tail / re-bootstrap-on-gap state machine as a
:class:`~repro.cluster.Replica`, down to the stalled-bootstrap suicide.

For reads the applier *publishes* an immutable view (a shallow copy of
the store — entry lists are shared structurally, so a view costs O(V)
references, not a label copy) per applied journal record into a bounded
seq-indexed ring.  Rings are what make cross-shard consistency cheap:
because every shard publishes at every journal seq, the router can pick
one seq and read each shard's view *at exactly that seq* — a consistent
cut — instead of coordinating the appliers.
"""

import os
import threading
import time
import warnings
from collections import OrderedDict

from repro.engine import get_backend
from repro.exceptions import ShardError, VertexNotFound
from repro.serve.persist import (
    checkpoint_label_slice,
    filter_label_payload,
    load_checkpoint,
)
from repro.serve.service import JOURNAL_FILENAME, SNAPSHOT_FILENAME
from repro.serve.wal import WalTailer
from repro.shard.journal import OP_LABEL, OP_NOP, OP_RESET, decode_label_op

INF = float("inf")

#: nominal bytes per label entry — the accounting unit bench reports use
#: to turn entry counts into comparable "index memory" figures.
ENTRY_BYTES = 8


def partial_answer(s_entries, t_entries, counts=True):
    """Two-pointer merge of two hub-sliced label entry lists.

    Exactly the full index's query merge (entries are sorted by hub
    rank), restricted to whatever hubs survived this shard's filter: the
    minimal ``d(s,h) + d(h,t)`` over the slice's common hubs, with path
    counts multiplied per hub and summed over minimal-distance hubs.
    Returns the partial ``(dist, count)`` — ``(inf, 0)`` when the slice
    contributes nothing, ``(dist, None)`` for distance-only families —
    ready for :func:`repro.audit.merge_partial_answers`.
    """
    best = INF
    total = 0
    i = j = 0
    ns, nt = len(s_entries), len(t_entries)
    while i < ns and j < nt:
        es = s_entries[i]
        et = t_entries[j]
        hs, ht = es[0], et[0]
        if hs < ht:
            i += 1
        elif ht < hs:
            j += 1
        else:
            d = es[1] + et[1]
            if counts:
                if d < best:
                    best = d
                    total = es[2] * et[2]
                elif d == best:
                    total += es[2] * et[2]
            elif d < best:
                best = d
            i += 1
            j += 1
    if not counts:
        return (best, None)
    return (best, total if best != INF else 0)


class ShardStore:
    """{vertex: hub-sliced label payload} with entry accounting.

    Every vertex the primary knows is present — an empty slice still
    records *existence*, which is how shards distinguish "no in-range
    labels" from "unknown vertex" (and how the router keeps
    :class:`~repro.exceptions.VertexNotFound` parity with an engine).
    ``num_entries`` / ``peak_entries`` count label entries in the slice;
    the bench's 1/K memory criterion reads them.
    """

    __slots__ = ("directed", "_labels", "num_entries", "peak_entries")

    def __init__(self, directed=False):
        self.directed = directed
        self._labels = {}
        self.num_entries = 0
        self.peak_entries = 0

    def _size(self, lp):
        if self.directed:
            return len(lp["in"]) + len(lp["out"])
        return len(lp)

    def put(self, v, lp):
        old = self._labels.get(v)
        if old is not None:
            self.num_entries -= self._size(old)
        self._labels[v] = lp
        self.num_entries += self._size(lp)
        if self.num_entries > self.peak_entries:
            self.peak_entries = self.num_entries

    def drop(self, v):
        old = self._labels.pop(v, None)
        if old is not None:
            self.num_entries -= self._size(old)

    def reset(self, items):
        self._labels = {}
        self.num_entries = 0
        for v, lp in items:
            self._labels[v] = lp
            self.num_entries += self._size(lp)
        if self.num_entries > self.peak_entries:
            self.peak_entries = self.num_entries

    def view(self):
        """A read-consistent shallow copy (entry lists shared)."""
        return dict(self._labels)

    def __len__(self):
        return len(self._labels)

    def __contains__(self, v):
        return v in self._labels

    def __repr__(self):
        return (
            f"ShardStore(vertices={len(self._labels)}, "
            f"entries={self.num_entries}, peak={self.peak_entries})"
        )


class Shard:
    """One hub slice of the primary's index, following its label journal.

    Parameters
    ----------
    primary_dir:
        The primary's ``durability_dir`` — checkpoint, WAL and the label
        journal (``labels.jsonl``) all live there.
    shard_id:
        This shard's slot in the partitioner.
    partitioner:
        A :class:`~repro.shard.HubPartitioner`; this shard keeps hubs
        with ``partitioner.shard_of(h) == shard_id``.
    ring_size:
        How many recent per-seq views to retain for consistent cuts.
    stall_budget:
        Consecutive no-progress re-bootstraps before the applier dies
        (``None`` uses :attr:`MAX_STALLED_BOOTSTRAPS`); the chaos harness
        shortens it so a corrupted journal is declared dead quickly.
    """

    #: consecutive no-progress re-bootstraps before the applier gives up
    #: (same contract as Replica.MAX_STALLED_BOOTSTRAPS).
    MAX_STALLED_BOOTSTRAPS = 3

    def __init__(self, primary_dir, shard_id, partitioner, name=None,
                 poll_interval=0.002, ring_size=64, stall_budget=None):
        self.shard_id = shard_id
        self.name = name or f"shard-{shard_id}"
        self._dir = primary_dir
        self._keep = partitioner.keep(shard_id)
        self._poll_interval = poll_interval
        self._stall_budget = (
            self.MAX_STALLED_BOOTSTRAPS if stall_budget is None else stall_budget
        )
        self._ring_size = max(2, ring_size)
        self._views = OrderedDict()   # seq -> published view, oldest first
        self._lock = threading.Lock()
        self._publish_listener = None
        self._store = None
        self._tailer = None
        self._corruptions_base = 0
        self._applied_seq = 0
        self._fatal = None
        self._alive = True
        self._bootstraps = 0
        self._records_applied = 0
        self._stop = threading.Event()
        self._bootstrap()  # constructor fails loudly on a bad checkpoint
        self._thread = threading.Thread(
            target=self._apply_loop, name=f"spc-{self.name}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Read path (router threads, lock only for ring lookups)
    # ------------------------------------------------------------------

    def view_at(self, seq):
        """The published view for ``seq``, or ``None`` if not in the ring."""
        with self._lock:
            return self._views.get(seq)

    @property
    def latest_seq(self):
        """Seq of the freshest published view."""
        with self._lock:
            return next(reversed(self._views)) if self._views else 0

    @property
    def min_seq(self):
        """Oldest seq still in the ring (consistent cuts can't go below)."""
        with self._lock:
            return next(iter(self._views)) if self._views else 0

    def partial(self, s, t, view):
        """This slice's partial ``(dist, count)`` for (s, t) on ``view``.

        Vertex-set parity with an engine: every shard holds *every*
        vertex (with a possibly empty slice), so any shard can — and
        must — raise :class:`~repro.exceptions.VertexNotFound` for a
        vertex the primary does not know at this cut.
        """
        try:
            ls = view[s]
        except KeyError:
            raise VertexNotFound(s) from None
        try:
            lt = view[t]
        except KeyError:
            raise VertexNotFound(t) from None
        if self.directed:
            s_entries, t_entries = ls["out"], lt["in"]
        else:
            s_entries, t_entries = ls, lt
        return partial_answer(s_entries, t_entries, counts=self.counts)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def applied_seq(self):
        """Seq of the last journal record folded into the store."""
        return self._applied_seq

    @property
    def healthy(self):
        """True while the applier thread runs without a fatal error."""
        return self._alive and self._fatal is None

    @property
    def fatal(self):
        """The exception that killed the applier, or ``None``."""
        return self._fatal

    @property
    def bootstraps(self):
        """How many times this shard (re-)bootstrapped from a checkpoint."""
        return self._bootstraps

    @property
    def stream_corruptions(self):
        """Typed corruption events the journal stream raised so far
        (accumulated across re-bootstraps, same contract as
        :attr:`repro.cluster.Replica.stream_corruptions`)."""
        tailer = self._tailer
        return self._corruptions_base + (
            tailer.corruptions if tailer is not None else 0
        )

    def set_publish_listener(self, listener):
        """Install (or clear, with ``None``) a publication hook.

        ``listener()`` runs on the applier thread after every published
        view — the router's condition-variable wakeup seam.  Must be
        cheap and must never raise (a raising listener kills the applier).
        """
        self._publish_listener = listener

    def catch_up(self, target_seq, timeout=10.0):
        """Block until ``applied_seq >= target_seq``; True on success."""
        deadline = time.monotonic() + timeout
        while self._applied_seq < target_seq:
            if not self.healthy:
                raise ShardError(
                    f"shard {self.name!r} died at seq {self._applied_seq} "
                    f"while catching up to {target_seq}: {self._fatal!r}"
                )
            if time.monotonic() >= deadline:
                return False
            time.sleep(min(self._poll_interval, 0.005))
        return True

    def stats(self):
        """JSON-safe counters (monitoring, bench results)."""
        store = self._store
        with self._lock:
            ring = len(self._views)
        return {
            "name": self.name,
            "shard_id": self.shard_id,
            "backend": self.backend_name,
            "applied_seq": self._applied_seq,
            "vertices": len(store),
            "entries": store.num_entries,
            "peak_entries": store.peak_entries,
            "ring": ring,
            "records_applied": self._records_applied,
            "bootstraps": self._bootstraps,
            "stream_corruptions": self.stream_corruptions,
            "healthy": self.healthy,
        }

    def kill(self):
        """Hard-stop the applier mid-stream (fault injection).

        Published views stay readable, but the shard stops following the
        journal and reports unhealthy — which makes the router *refuse*
        queries, since a missing hub slice cannot be merged around.
        Idempotent.  A join that times out (the applier is wedged) marks
        the shard fatal and issues a warning instead of silently leaking
        a live thread under whatever replaces this member.
        """
        self._stop.set()
        self._thread.join(timeout=10.0)
        if self._thread.is_alive():
            stuck = ShardError(
                f"shard {self.name!r} applier thread failed to stop "
                f"within 10.0 s; the thread has leaked and the member "
                f"must not be reused"
            )
            if self._fatal is None:
                self._fatal = stuck
            warnings.warn(str(stuck), RuntimeWarning, stacklevel=2)
        self._alive = False

    def close(self):
        """Stop the applier; raises if it had died of an unexpected error."""
        self.kill()
        if self._fatal is not None:
            raise ShardError(
                f"shard {self.name!r} applier died: {self._fatal!r}"
            ) from self._fatal

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            f"Shard(name={self.name!r}, backend={self.backend_name!r}, "
            f"applied_seq={self._applied_seq}, "
            f"entries={self._store.num_entries}, healthy={self.healthy})"
        )

    # ------------------------------------------------------------------
    # Applier thread
    # ------------------------------------------------------------------

    def _bootstrap(self):
        """(Re)build the slice from the primary's current checkpoint."""
        payload = load_checkpoint(os.path.join(self._dir, SNAPSHOT_FILENAME))
        backend_cls = get_backend(payload["backend"])
        self.backend_name = backend_cls.name
        self.directed = backend_cls.directed
        self.counts = backend_cls.counts
        store = ShardStore(directed=backend_cls.directed)
        store.reset(checkpoint_label_slice(payload, self._keep).items())
        if self._store is not None:
            # A re-bootstrap continues the lifetime peak across stores.
            store.peak_entries = max(
                store.peak_entries, self._store.peak_entries
            )
        self._store = store
        self._applied_seq = payload.get("applied_seq", 0)
        if self._tailer is not None:
            self._corruptions_base += self._tailer.corruptions
        self._tailer = WalTailer(
            os.path.join(self._dir, JOURNAL_FILENAME),
            after_seq=self._applied_seq,
            expect_backend=payload["backend"],
            decode=decode_label_op,
        )
        self._bootstraps += 1
        with self._lock:
            self._views.clear()
        self._publish(self._applied_seq)

    def _publish(self, seq):
        view = self._store.view()
        with self._lock:
            self._views[seq] = view
            while len(self._views) > self._ring_size:
                self._views.popitem(last=False)
        listener = self._publish_listener
        if listener is not None:
            listener()

    def _apply_ops(self, ops):
        store = self._store
        keep = self._keep
        for op in ops:
            kind = op[0]
            if kind == OP_LABEL:
                v, lp = op[1], op[2]
                if lp is None:
                    store.drop(v)
                else:
                    store.put(v, filter_label_payload(lp, keep))
            elif kind == OP_RESET:
                store.reset(
                    (v, filter_label_payload(lp, keep)) for v, lp in op[1]
                )
            elif kind != OP_NOP:  # decode_label_op already screened these
                raise ShardError(f"unknown label-journal op kind {kind!r}")

    def _apply_loop(self):
        stalled = 0
        # Progress means advancing past the furthest seq ever reached —
        # a corruption-forced re-bootstrap re-reads the journal head and
        # re-applies the same prefix every round, and counting that as
        # progress would hot-loop a poisoned stream forever (see the
        # replica applier for the full rationale).
        high_water = self._applied_seq
        try:
            while not self._stop.is_set():
                records, gap = self._tailer.poll()
                for seq, ops in records:
                    self._apply_ops(ops)
                    self._applied_seq = seq
                    self._records_applied += 1
                    # One view per seq: the aligned rings are what give
                    # the router its consistent cross-shard cuts.
                    self._publish(seq)
                if records and self._applied_seq > high_water:
                    high_water = self._applied_seq
                    stalled = 0
                if gap:
                    # The primary compacted the journal beneath us: the
                    # missing deltas live only in the new checkpoint now.
                    self._bootstrap()
                    if self._applied_seq > high_water:
                        high_water = self._applied_seq
                        stalled = 0
                        continue
                    stalled += 1
                    if stalled >= self._stall_budget:
                        raise ShardError(
                            f"shard {self.name!r} cannot advance past a "
                            f"label-journal gap at seq {self._applied_seq}: "
                            f"{stalled} consecutive re-bootstraps made no "
                            f"progress (corrupt or incompatible journal at "
                            f"{self._tailer.path})"
                        )
                    self._stop.wait(self._poll_interval)
                    continue
                if not records:
                    self._stop.wait(self._poll_interval)
        except BaseException as exc:  # noqa: BLE001 — surfaced via healthy/fatal
            self._fatal = exc
        finally:
            self._alive = False
