"""The label-delta journal's op vocabulary and codec.

The primary (:class:`~repro.serve.SPCService` with
``ServeConfig.label_journal``) writes one journal record per applied WAL
batch — same framing, same seq numbers, same compaction markers as the
WAL itself, which is why shards tail it with the stock
:class:`~repro.serve.wal.WalTailer` and this module only supplies the
per-op decoder.  Three op kinds:

* ``["lb", v, payload]`` — vertex ``v``'s complete post-batch label
  state (``None`` = the vertex is gone).  *Replacement* semantics: ops
  are idempotent and order-independent within a record.
* ``["reset", [[v, payload], ...]]`` — a full label dump; emitted when
  the primary replaced its index object (engine rebuild policy, the SD
  family's rebuild-on-delete) or re-anchored after a restore, since a
  rebuild may reshuffle every label without touching most vertices.
* ``["nop"]`` — the batch applied but moved no labels; keeps the seq
  stream contiguous (an *empty* ops list is the compaction marker).
"""

from repro.exceptions import ShardError

OP_LABEL = "lb"
OP_RESET = "reset"
OP_NOP = "nop"

_KINDS = (OP_LABEL, OP_RESET, OP_NOP)


def decode_label_op(op):
    """Validate one journal op (the WalTailer ``decode`` hook).

    Light-weight on purpose — the hot path is a tag check; payload shapes
    are the backends' business.  Raising :class:`ShardError` here turns a
    corrupt journal into a visible shard death (routers then refuse)
    instead of a silently wrong slice.
    """
    if not isinstance(op, list) or not op or op[0] not in _KINDS:
        raise ShardError(f"malformed label-journal op: {op!r}")
    if op[0] == OP_LABEL and len(op) != 3:
        raise ShardError(f"malformed label op (want ['lb', v, payload]): {op!r}")
    if op[0] == OP_RESET and (len(op) != 2 or not isinstance(op[1], list)):
        raise ShardError(f"malformed reset op (want ['reset', dump]): {op!r}")
    return op
