"""ShardedCluster: one primary, K hub-partitioned shards, one router.

The sharded counterpart of :class:`~repro.cluster.SPCCluster`: a single
writer (:class:`~repro.serve.SPCService` with ``label_journal`` forced
on) runs the paper's full maintenance and journals per-batch label
deltas; each :class:`~repro.shard.Shard` materializes one hub slice of
that index from the checkpoint + journal; a
:class:`~repro.shard.ShardRouter` scatter-gathers reads over the fleet.

Fault injection mirrors the cluster layer — :meth:`kill_shard` /
:meth:`restart_shard` — but the degraded mode differs by design: a
cluster with a dead replica keeps serving from the survivors, while a
sharded fleet with a dead shard *refuses* reads until the slice is back
(a merged answer missing one hub range would be wrong, not stale).
"""

import dataclasses
import os
from dataclasses import dataclass

from repro.engine import SPCEngine
from repro.exceptions import ShardError
from repro.serve.persist import load_checkpoint
from repro.serve.service import SNAPSHOT_FILENAME, ServeConfig, SPCService
from repro.shard.partitioner import make_partitioner
from repro.shard.scatter import ShardRouter
from repro.shard.shard import Shard


@dataclass(frozen=True)
class ShardConfig:
    """All tunables of a :class:`ShardedCluster`.

    Parameters
    ----------
    shards:
        How many hub slices to run (ignored when an explicit partitioner
        instance is passed to the cluster — its slot count wins).
    partitioner:
        Strategy name: ``"balanced"`` (holder-weighted contiguous ranges
        — the default, since equal-width ranges collapse under the
        top-heavy hub distribution), ``"range"`` (equal-width) or
        ``"hash"``.
    poll_interval:
        Seconds a shard applier sleeps between empty journal polls.
    ring_size:
        Per-shard depth of the published-view ring (bounds how far the
        router can look back for a consistent cut).
    wait_timeout:
        How long a read may wait for a consistent cut before refusing.
    parallel_threshold:
        Batch length at which ``query_many`` goes concurrent.
    seed:
        Seed for the hash partitioner's mixing.
    degraded:
        Router behavior at the cut deadline: ``"refuse"`` (default) or
        ``"stale"`` (serve the newest *historical* consistent cut still
        covered by every shard's ring, tagged degraded, when it is
        within ``degraded_max_lag`` of the freshest shard).
    degraded_max_lag:
        Staleness bound (in batches) a degraded-mode cut must meet.
    breaker_threshold / breaker_cooldown:
        Per-shard circuit breaker: consecutive cut failures that trip it
        open, and seconds before a half-open recovery probe.
    stall_budget:
        Re-bootstraps without progress a shard tolerates before dying
        (``None`` = the shard's own default).
    """

    shards: int = 4
    partitioner: str = "balanced"
    poll_interval: float = 0.002
    ring_size: int = 64
    wait_timeout: float = 5.0
    parallel_threshold: int = 64
    seed: int = 0
    degraded: str = "refuse"
    degraded_max_lag: int = 64
    breaker_threshold: int = 3
    breaker_cooldown: float = 0.25
    stall_budget: int = None

    def __post_init__(self):
        if self.shards < 1:
            raise ShardError(
                f"a sharded cluster needs at least one shard, "
                f"got {self.shards!r}"
            )
        if self.ring_size < 2:
            raise ShardError(
                f"ring_size must be >= 2 to leave any cut overlap, "
                f"got {self.ring_size!r}"
            )

    def replace(self, **changes):
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


class ShardedCluster:
    """A hub-partitioned serving fleet over one engine's label journal.

    Example
    -------
    >>> import repro, tempfile
    >>> from repro.shard import ShardedCluster
    >>> from repro.workloads import InsertEdge
    >>> engine = repro.open(repro.Graph.from_edges([(0, 1), (1, 2)]))
    >>> with ShardedCluster(engine, tempfile.mkdtemp(), shards=2) as sc:
    ...     sc.submit(InsertEdge(0, 2))
    ...     _ = sc.sync()
    ...     sc.query(0, 2)
    (1, 1)
    """

    def __init__(self, engine, state_dir, config=None, serve_config=None,
                 partitioner=None, overwrite=False, **overrides):
        if isinstance(partitioner, str):
            # Strategy *name*: fold it into the config; an explicit
            # HubPartitioner instance bypasses the config entirely.
            overrides["partitioner"] = partitioner
            partitioner = None
        if config is None:
            config = ShardConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self._config = config
        if serve_config is None:
            serve_config = ServeConfig()
        # The journal is not optional here — it *is* the replication feed.
        serve_config = serve_config.replace(
            durability_dir=state_dir, label_journal=True
        )
        self._state_dir = state_dir
        self._closed = False
        self.primary = SPCService(
            engine, config=serve_config, overwrite=overwrite
        )
        self._shards = {}
        try:
            payload = load_checkpoint(
                os.path.join(state_dir, SNAPSHOT_FILENAME)
            )
            if partitioner is None:
                partitioner = make_partitioner(
                    config.partitioner, config.shards,
                    payload=payload, seed=config.seed,
                )
            self.partitioner = partitioner
            for shard_id in range(partitioner.num_shards):
                self._shards[shard_id] = Shard(
                    state_dir, shard_id, partitioner,
                    poll_interval=config.poll_interval,
                    ring_size=config.ring_size,
                    stall_budget=config.stall_budget,
                )
            self.router = ShardRouter(
                [self._shards[i] for i in sorted(self._shards)],
                wait_timeout=config.wait_timeout,
                parallel_threshold=config.parallel_threshold,
                degraded=config.degraded,
                degraded_max_lag=config.degraded_max_lag,
                breaker_threshold=config.breaker_threshold,
                breaker_cooldown=config.breaker_cooldown,
            )
            # Publish events wake blocked cut acquires instead of letting
            # them sleep out their wait slice.
            for shard in self._shards.values():
                shard.set_publish_listener(self.router.notify_event)
        except BaseException:
            # A shard that failed to bootstrap must not leak the ones
            # that did, nor the primary's writer thread.
            self._teardown()
            raise

    # ------------------------------------------------------------------
    # Write path (primary only)
    # ------------------------------------------------------------------

    def submit(self, update):
        """Enqueue one update on the primary."""
        self.primary.submit(update)

    def submit_many(self, updates):
        """Enqueue a batch (kept whole) on the primary."""
        self.primary.submit_many(updates)

    def flush(self, timeout=30.0):
        """Apply + journal everything submitted on the primary so far."""
        return self.primary.flush(timeout=timeout)

    def checkpoint(self, truncate_wal=False, timeout=30.0):
        """Durable checkpoint on the primary (shards re-bootstrap if the
        journal is compacted beneath their tail)."""
        return self.primary.checkpoint(
            truncate_wal=truncate_wal, timeout=timeout
        )

    # ------------------------------------------------------------------
    # Read path (scatter-gather)
    # ------------------------------------------------------------------

    def query(self, s, t):
        """Merged (dist, count) assembled from every shard's hub slice."""
        return self.router.query(s, t)

    def query_tagged(self, s, t):
        """Merged answer plus its provenance: (answer, seq, target)."""
        return self.router.query_tagged(s, t)

    def query_many(self, pairs):
        """Answer a batch of pairs against one consistent cut."""
        return self.router.query_many(pairs)

    def set_answer_tap(self, tap):
        """Tap merged answers (shadow audit of the cross-shard merge)."""
        self.router.set_answer_tap(tap)

    def set_metrics(self, registry, tracer=None):
        """Install (or clear, with ``None``) telemetry across the fleet:
        the primary's serve instruments + writer spans, and the router's
        six-stage scatter-gather breakdown (see
        :meth:`ShardRouter.set_metrics`)."""
        self.primary.set_metrics(registry, tracer=tracer)
        self.router.set_metrics(registry, tracer=tracer)

    # ------------------------------------------------------------------
    # Fleet operations
    # ------------------------------------------------------------------

    @property
    def shards(self):
        """Mapping shard_id -> :class:`Shard` (live view, do not mutate)."""
        return self._shards

    @property
    def config(self):
        """The cluster's :class:`ShardConfig` (frozen)."""
        return self._config

    @property
    def state_dir(self):
        """The primary's durability directory (= the replication feed)."""
        return self._state_dir

    def sync(self, timeout=30.0):
        """Flush the primary, then block until every healthy shard has
        applied up to the primary's seq.  Returns that seq.

        Raises :class:`ShardError` when a shard cannot catch up in time —
        with sharding a lagging follower blocks fresh cuts, so the caller
        must see it.
        """
        self.primary.flush(timeout=timeout)
        target = self.primary.applied_seq
        for shard_id, shard in self._shards.items():
            if not shard.healthy:
                continue
            if not shard.catch_up(target, timeout=timeout):
                raise ShardError(
                    f"shard {shard_id} is stuck at seq {shard.applied_seq}, "
                    f"primary at {target}"
                )
        return target

    def kill_shard(self, shard_id):
        """Hard-stop one shard mid-stream (fault injection).

        Until :meth:`restart_shard` replaces it the router *refuses* all
        reads — a missing hub slice degrades to refusal, never to wrong
        answers.
        """
        self._shard(shard_id).kill()

    def restart_shard(self, shard_id):
        """Crash-recover a shard: bootstrap a fresh slice under the same
        partition slot from the *current* checkpoint + journal tail and
        swap it into the router.  Returns the new :class:`Shard`.
        """
        old = self._shard(shard_id)
        old.kill()
        shard = Shard(
            self._state_dir, shard_id, self.partitioner,
            poll_interval=self._config.poll_interval,
            ring_size=self._config.ring_size,
            stall_budget=self._config.stall_budget,
        )
        shard.set_publish_listener(self.router.notify_event)
        self._shards[shard_id] = shard
        self.router.set_shard(shard_id, shard)
        return shard

    def stats(self):
        """One dict tying together primary, shard and router counters."""
        return {
            "primary": self.primary.stats(),
            "partitioner": self.partitioner.describe(),
            "router": self.router.stats(),
        }

    def close(self, timeout=30.0):
        """Stop every shard and the primary.  Idempotent.

        Shard applier failures surface as :class:`ShardError` after
        everything has been torn down.
        """
        if self._closed:
            return
        self._closed = True
        failures = self._teardown(timeout=timeout)
        if failures:
            raise ShardError(
                f"sharded-cluster shutdown found {len(failures)} failed "
                f"component(s): " + "; ".join(failures)
            )

    def _teardown(self, timeout=30.0):
        failures = []
        for shard_id, shard in self._shards.items():
            try:
                shard.close()
            except ShardError as exc:
                failures.append(str(exc))
        try:
            self.primary.close(timeout=timeout)
        except Exception as exc:  # noqa: BLE001 — reported, not masked
            failures.append(f"primary: {exc!r}")
        return failures

    def _shard(self, shard_id):
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ShardError(
                f"no shard with id {shard_id!r}; have {sorted(self._shards)}"
            ) from None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            f"ShardedCluster(shards={sorted(self._shards)}, "
            f"partitioner={self.partitioner.describe()['kind']!r}, "
            f"primary_seq={self.primary.applied_seq})"
        )


def shard_cluster(graph_or_engine, state_dir, config=None, serve_config=None,
                  engine_config=None, partitioner=None, overwrite=False,
                  **overrides):
    """Open a :class:`ShardedCluster` over a graph or an existing engine.

    Convenience entry point mirroring :func:`repro.cluster.cluster`.
    """
    if isinstance(graph_or_engine, SPCEngine):
        engine = graph_or_engine
    else:
        engine = SPCEngine(graph_or_engine, config=engine_config)
    return ShardedCluster(
        engine, state_dir, config=config, serve_config=serve_config,
        partitioner=partitioner, overwrite=overwrite, **overrides
    )
