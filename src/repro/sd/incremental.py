"""Incremental maintenance of the SD-Index, and the SD-style failure mode.

``inc_sd`` is the WWW'14 algorithm of Akiba, Iwata and Yoshida [4] that the
paper's §2.3 discusses: resume a pruned BFS from the far endpoint of the new
edge for every hub of the near endpoint, pruning (non-strictly) whenever the
current index already covers the tentative distance.  Distances stay exact;
the index merely loses minimality.

``inc_spc_sd_pruning`` is the same idea transplanted verbatim onto the
SPC-Index — i.e. what §2.3 warns about: "their algorithm lacks the
capability to update the SPC-Index ... due to the inadequate pruning
condition that fails to detect the presence of new shortest paths with the
same length as the pre-existing ones."  It is intentionally *wrong* for
counting and exists for the failure-injection tests and the pruning-rule
ablation bench, which measure how often it corrupts counts.
"""

from collections import deque

from repro.core.stats import UpdateStats

INF = float("inf")


def inc_sd(graph, index, a, b):
    """Insert edge (a, b) and repair the SD-Index (Akiba et al. 2014)."""
    order = index.order
    rank = order.rank_map()
    hubs_a = list(index.label_arrays(a)[0])
    hubs_b = list(index.label_arrays(b)[0])

    graph.add_edge(a, b)

    for h in sorted(set(hubs_a) | set(hubs_b)):
        if h in hubs_a and h <= rank[b]:
            _resume_bfs(graph, index, h, a, b)
        if h in hubs_b and h <= rank[a]:
            _resume_bfs(graph, index, h, b, a)


def _resume_bfs(graph, index, h, va, vb):
    order = index.order
    rank = order.rank_map()
    hubs, dists = index.label_arrays(va)
    d0 = None
    for i, hub in enumerate(hubs):
        if hub == h:
            d0 = dists[i]
            break
    if d0 is None:
        return
    hub_vertex = order.vertex(h)
    rhubs, rdists = index.label_arrays(hub_vertex)
    root_dist = dict(zip(rhubs, rdists))

    sink = index._dirty
    dist = {vb: d0 + 1}
    queue = deque([vb])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        vhubs, vdists = index.label_arrays(v)
        dl = INF
        for i in range(len(vhubs)):
            rd = root_dist.get(vhubs[i])
            if rd is not None:
                cand = rd + vdists[i]
                if cand < dl:
                    dl = cand
        # Non-strict pruning: for distances, an equal-length cover suffices.
        if dl <= dv:
            continue
        _upsert(vhubs, vdists, h, dv)
        if sink is not None:
            sink.add(v)
        dnext = dv + 1
        for w in graph.neighbors(v):
            if w not in dist and h <= rank[w]:
                dist[w] = dnext
                queue.append(w)


def _upsert(hubs, dists, h, d):
    from bisect import bisect_left

    i = bisect_left(hubs, h)
    if i < len(hubs) and hubs[i] == h:
        dists[i] = d
    else:
        hubs.insert(i, h)
        dists.insert(i, d)


def inc_spc_sd_pruning(graph, index, a, b, stats=None):
    """DELIBERATELY BROKEN IncSPC variant using SD-style non-strict pruning.

    Identical to :func:`repro.core.incremental.inc_spc` except the BFS
    prunes on ``d_L <= D[v]``.  New shortest paths whose length ties the old
    distance are never visited, so their counts are silently lost.  Used
    only by failure-injection tests and the pruning ablation bench.
    """
    if stats is None:
        stats = UpdateStats(kind="insert", edge=(a, b))
    order = index.order
    rank = order.rank_map()
    la = index.label_set(a)
    lb = index.label_set(b)
    aff_a = list(la.hubs)
    aff_b = list(lb.hubs)
    in_a, in_b = set(aff_a), set(aff_b)
    aff = sorted(in_a | in_b)
    stats.affected_hubs = len(aff)

    graph.add_edge(a, b)

    for h in aff:
        if h in in_a and h <= rank[b]:
            _broken_inc_update(graph, index, h, a, b, stats)
        if h in in_b and h <= rank[a]:
            _broken_inc_update(graph, index, h, b, a, stats)
    return stats


def _broken_inc_update(graph, index, h, va, vb, stats):
    order = index.order
    rank = order.rank_map()
    label_of = index.label_set
    entry = label_of(va).get(h)
    if entry is None:
        return
    d0, c0 = entry
    hub_vertex = order.vertex(h)
    hub_labels = label_of(hub_vertex)
    root_dist = dict(zip(hub_labels.hubs, hub_labels.dists))

    dist = {vb: d0 + 1}
    count = {vb: c0}
    queue = deque([vb])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        stats.bfs_visits += 1
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        dl = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < dl:
                    dl = cand
        if dl <= dv:  # <-- the inadequate SD pruning rule
            continue
        existing = ls.get(h)
        if existing is not None:
            d_i, c_i = existing
            if dv == d_i:
                ls.set(h, dv, count[v] + c_i)
                stats.renew_count += 1
            else:
                ls.set(h, dv, count[v])
                stats.renew_dist += 1
        else:
            ls.set(h, dv, count[v])
            stats.inserted += 1
        cv = count[v]
        dnext = dv + 1
        for w in graph.neighbors(v):
            dw = dist.get(w)
            if dw is None:
                if h <= rank[w]:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv
