"""SD-Index: Pruned Landmark Labeling for shortest *distances* (§2.3, [3]).

The SD-Index is the distance-only sibling of the SPC-Index: it keeps only
the hubs of *canonical* labels with their distances — enough to answer
sd(s, t) but not spc(s, t).  We implement it for two reasons the paper makes
explicit:

1.  §2.3 compares the two schemas (e.g. "(v0, 2) belongs to L(v5) in
    SD-Index, but v2 is no longer a hub of v8") — tests pin that behaviour;
2.  the ablation benchmark demonstrates *why* SD-style maintenance cannot
    be transplanted to counting (see repro.sd.incremental).

Construction differs from HP-SPC in exactly one place: the pruned BFS stops
when the existing index matches the tentative distance (d_L <= D, not
d_L < D), which is what drops the non-canonical labels.
"""

from collections import deque

from repro.exceptions import VertexNotFound
from repro.order import VertexOrder, make_order

INF = float("inf")


class SDIndex:
    """Distance-only 2-hop labeling (hub, distance) per vertex."""

    __slots__ = ("_order", "_labels")

    def __init__(self, order):
        if not isinstance(order, VertexOrder):
            order = VertexOrder(order)
        self._order = order
        self._labels = {v: ([], []) for v in order}  # hubs, dists

    @property
    def order(self):
        """The total order the index was built under."""
        return self._order

    def label_arrays(self, v):
        """Return the internal (hubs, dists) parallel lists of ``v``."""
        try:
            return self._labels[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def labels(self, v):
        """Return L(v) as [(hub_vertex_id, dist)] in rank order."""
        hubs, dists = self.label_arrays(v)
        return [(self._order.vertex(h), d) for h, d in zip(hubs, dists)]

    def hubs(self, v):
        """Return the set of hub vertex ids of L(v)."""
        hubs, _ = self.label_arrays(v)
        return {self._order.vertex(h) for h in hubs}

    def distance(self, s, t):
        """Return sd(s, t) by merging L(s) and L(t); inf if disconnected."""
        hubs_s, dists_s = self.label_arrays(s)
        hubs_t, dists_t = self.label_arrays(t)
        i, j = 0, 0
        best = INF
        while i < len(hubs_s) and j < len(hubs_t):
            hs, ht = hubs_s[i], hubs_t[j]
            if hs == ht:
                d = dists_s[i] + dists_t[j]
                if d < best:
                    best = d
                i += 1
                j += 1
            elif hs < ht:
                i += 1
            else:
                j += 1
        return best

    @property
    def num_entries(self):
        """Total number of (hub, dist) entries."""
        return sum(len(h) for h, _ in self._labels.values())

    def __repr__(self):
        return f"SDIndex(n={len(self._labels)}, entries={self.num_entries})"


def build_sd_index(graph, order=None, strategy="degree"):
    """Construct the SD-Index by classic pruned landmark labeling."""
    if order is None:
        order = make_order(graph, strategy)
    elif not isinstance(order, VertexOrder):
        order = VertexOrder(order)
    index = SDIndex(order)
    rank = order.rank_map()

    for root in order:
        r = rank[root]
        if root not in graph:
            _append(index, root, r, 0)
            continue
        root_hubs, root_dists = index.label_arrays(root)
        root_dist = dict(zip(root_hubs, root_dists))
        _append(index, root, r, 0)

        dist = {root: 0}
        queue = deque()
        for w in graph.neighbors(root):
            if rank[w] > r:
                dist[w] = 1
                queue.append(w)
        while queue:
            v = queue.popleft()
            dv = dist[v]
            hubs, dists = index.label_arrays(v)
            pruned = False
            for i in range(len(hubs)):
                rd = root_dist.get(hubs[i])
                # SD pruning is non-strict: equality means the pair is
                # already covered by a higher hub, and for pure distances
                # that is enough.
                if rd is not None and rd + dists[i] <= dv:
                    pruned = True
                    break
            if pruned:
                continue
            _append(index, v, r, dv)
            dnext = dv + 1
            for w in graph.neighbors(v):
                if w not in dist and rank[w] > r:
                    dist[w] = dnext
                    queue.append(w)
    return index


def _append(index, v, hub, d):
    hubs, dists = index.label_arrays(v)
    hubs.append(hub)
    dists.append(d)
