"""SD-Index: Pruned Landmark Labeling for shortest *distances* (§2.3, [3]).

The SD-Index is the distance-only sibling of the SPC-Index: it keeps only
the hubs of *canonical* labels with their distances — enough to answer
sd(s, t) but not spc(s, t).  We implement it for two reasons the paper makes
explicit:

1.  §2.3 compares the two schemas (e.g. "(v0, 2) belongs to L(v5) in
    SD-Index, but v2 is no longer a hub of v8") — tests pin that behaviour;
2.  the ablation benchmark demonstrates *why* SD-style maintenance cannot
    be transplanted to counting (see repro.sd.incremental).

Construction differs from HP-SPC in exactly one place: the pruned BFS stops
when the existing index matches the tentative distance (d_L <= D, not
d_L < D), which is what drops the non-canonical labels.
"""

from bisect import bisect_left
from collections import deque

from repro.exceptions import VertexNotFound
from repro.order import VertexOrder, make_order

INF = float("inf")


class SDIndex:
    """Distance-only 2-hop labeling (hub, distance) per vertex."""

    __slots__ = ("_order", "_labels", "_dirty")

    def __init__(self, order):
        if not isinstance(order, VertexOrder):
            order = VertexOrder(order)
        self._order = order
        self._labels = {v: ([], []) for v in order}  # hubs, dists
        self._dirty = None

    @property
    def order(self):
        """The total order the index was built under."""
        return self._order

    def label_arrays(self, v):
        """Return the internal (hubs, dists) parallel lists of ``v``."""
        try:
            return self._labels[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def labels(self, v):
        """Return L(v) as [(hub_vertex_id, dist)] in rank order."""
        hubs, dists = self.label_arrays(v)
        return [(self._order.vertex(h), d) for h, d in zip(hubs, dists)]

    def hubs(self, v):
        """Return the set of hub vertex ids of L(v)."""
        hubs, _ = self.label_arrays(v)
        return {self._order.vertex(h) for h in hubs}

    def distance(self, s, t):
        """Return sd(s, t) by merging L(s) and L(t); inf if disconnected."""
        hubs_s, dists_s = self.label_arrays(s)
        hubs_t, dists_t = self.label_arrays(t)
        i, j = 0, 0
        best = INF
        while i < len(hubs_s) and j < len(hubs_t):
            hs, ht = hubs_s[i], hubs_t[j]
            if hs == ht:
                d = dists_s[i] + dists_t[j]
                if d < best:
                    best = d
                i += 1
                j += 1
            elif hs < ht:
                i += 1
            else:
                j += 1
        return best

    def query(self, s, t):
        """Return (sd(s, t), None) — the engine-facing answer shape.

        The SD-Index carries no counts, so the spc slot is ``None``; this
        lets the SD backend serve distance-only traffic through the same
        :class:`~repro.engine.SPCEngine` API as the counting backends.
        """
        return self.distance(s, t), None

    def source_probe(self, s, hub_filter=None):
        """Return ``probe(t) -> (sd, None)`` sharing one scan of L(s).

        ``hub_filter`` restricts the merge to a hub-rank subset, yielding
        shard-mergeable partial answers (distance-only).
        """
        hubs_s, dists_s = self.label_arrays(s)
        if hub_filter is None:
            s_entry = dict(zip(hubs_s, dists_s))
        else:
            s_entry = {h: d for h, d in zip(hubs_s, dists_s) if hub_filter(h)}
        label_of = self.label_arrays

        def probe(t):
            hubs, dists = label_of(t)
            best = INF
            get = s_entry.get
            for i in range(len(hubs)):
                rd = get(hubs[i])
                if rd is not None:
                    d = rd + dists[i]
                    if d < best:
                        best = d
            return best, None

        return probe

    def set_dirty_sink(self, sink):
        """Install (or clear) a dirty-vertex sink.

        The SD-Index has no :class:`LabelSet` seam, so the mutation points
        (``add_vertex``, ``drop_vertex_labels``, ``inc_sd``'s upserts)
        report into the sink directly.
        """
        self._dirty = sink

    def add_vertex(self, v):
        """Register a new (isolated) vertex with the lowest rank."""
        r = self._order.append(v)
        self._labels[v] = ([r], [0])
        if self._dirty is not None:
            self._dirty.add(v)
        return r

    def drop_vertex_labels(self, v):
        """Forget ``v``'s labels and tombstone its rank slot.

        Entries elsewhere referencing ``v`` as hub are purged too —
        leaving them would answer finite distances through a vertex that
        no longer exists.  The SD-Index keeps no reverse hub map (the SD
        backend rebuilds on deletions rather than repairing), so this is
        an O(n) sweep, acceptable for the rare direct-library use.
        """
        if v not in self._labels:
            raise VertexNotFound(v)
        rv = self._order.rank(v)
        sink = self._dirty
        if sink is not None:
            sink.add(v)
        del self._labels[v]
        for u, (hubs, dists) in self._labels.items():
            i = bisect_left(hubs, rv)
            if i < len(hubs) and hubs[i] == rv:
                del hubs[i]
                del dists[i]
                if sink is not None:
                    sink.add(u)
        self._order.remove(v)

    @property
    def num_entries(self):
        """Total number of (hub, dist) entries."""
        return sum(len(h) for h, _ in self._labels.values())

    # ------------------------------------------------------------------
    # Serialization — same shape as SPCIndex.to_dict, minus the counts
    # ------------------------------------------------------------------

    def to_dict(self):
        """Return a JSON-serializable snapshot of the index.

        Tombstoned rank slots serialize as null so ranks survive roundtrips.
        """
        return {
            "order": self._order.as_raw_list(),
            "labels": {
                str(v): [[h, d] for h, d in zip(hubs, dists)]
                for v, (hubs, dists) in self._labels.items()
            },
        }

    @classmethod
    def from_dict(cls, payload, vertex_type=int):
        """Rebuild an index from :meth:`to_dict` output."""
        index = cls(VertexOrder(payload["order"]))
        for key, entries in payload["labels"].items():
            hubs, dists = index.label_arrays(vertex_type(key))
            for h, d in entries:
                hubs.append(h)
                dists.append(d)
        return index

    def copy(self):
        """Return an independent deep copy (order copied, labels duplicated)."""
        clone = SDIndex(VertexOrder(self._order.as_raw_list()))
        clone._labels = {
            v: (list(hubs), list(dists))
            for v, (hubs, dists) in self._labels.items()
        }
        return clone

    def __repr__(self):
        return f"SDIndex(n={len(self._labels)}, entries={self.num_entries})"


def build_sd_index(graph, order=None, strategy="degree"):
    """Construct the SD-Index by classic pruned landmark labeling."""
    if order is None:
        order = make_order(graph, strategy)
    elif not isinstance(order, VertexOrder):
        order = VertexOrder(order)
    index = SDIndex(order)
    rank = order.rank_map()

    for root in order:
        r = rank[root]
        if root not in graph:
            _append(index, root, r, 0)
            continue
        root_hubs, root_dists = index.label_arrays(root)
        root_dist = dict(zip(root_hubs, root_dists))
        _append(index, root, r, 0)

        dist = {root: 0}
        queue = deque()
        for w in graph.neighbors(root):
            if rank[w] > r:
                dist[w] = 1
                queue.append(w)
        while queue:
            v = queue.popleft()
            dv = dist[v]
            hubs, dists = index.label_arrays(v)
            pruned = False
            for i in range(len(hubs)):
                rd = root_dist.get(hubs[i])
                # SD pruning is non-strict: equality means the pair is
                # already covered by a higher hub, and for pure distances
                # that is enough.
                if rd is not None and rd + dists[i] <= dv:
                    pruned = True
                    break
            if pruned:
                continue
            _append(index, v, r, dv)
            dnext = dv + 1
            for w in graph.neighbors(v):
                if w not in dist and rank[w] > r:
                    dist[w] = dnext
                    queue.append(w)
    return index


def _append(index, v, hub, d):
    hubs, dists = index.label_arrays(v)
    hubs.append(hub)
    dists.append(d)
