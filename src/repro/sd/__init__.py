"""SD-Index: distance-only pruned landmark labeling and its maintenance."""

from repro.sd.incremental import inc_sd, inc_spc_sd_pruning
from repro.sd.pll import SDIndex, build_sd_index

__all__ = ["SDIndex", "build_sd_index", "inc_sd", "inc_spc_sd_pruning"]
