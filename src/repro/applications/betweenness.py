"""Betweenness analytics from shortest-path counting (the paper's §1).

Group betweenness of a vertex set C (Puzis et al., the paper's [23]):

    B(C) = sum over s, t in V \\ C, s != t of  delta_st(C) / delta_st

where delta_st = spc(s, t) and delta_st(C) counts the shortest s-t paths
intersecting C.  Both are SPC queries: delta_st on G, and the surviving
count on G with C removed (delta_st(C) = delta_st − survivors).  The
dynamic index makes the "remove C" step a handful of vertex deletions
instead of a rebuild — exactly the workload DSPC accelerates.

``vertex_betweenness`` (pair-dependency form, unnormalized, undirected
convention: each unordered pair counted once) cross-checks against
networkx in the test suite.
"""

import itertools

from repro.engine import SPCEngine

INF = float("inf")


def pair_dependency(index, s, t, v):
    """delta_st(v) / delta_st — the fraction of shortest s-t paths via v."""
    d_st, c_st = index.query(s, t)
    if c_st == 0 or v == s or v == t:
        return 0.0
    d_sv, c_sv = index.query(s, v)
    d_vt, c_vt = index.query(v, t)
    if d_sv + d_vt != d_st:
        return 0.0
    return (c_sv * c_vt) / c_st


def vertex_betweenness(index, vertices=None):
    """Unnormalized betweenness centrality of every vertex via SPC queries.

    Sums pair dependencies over unordered pairs (s, t), matching networkx's
    ``betweenness_centrality(normalized=False)`` on undirected graphs.
    """
    if vertices is None:
        vertices = sorted(index.vertices())
    scores = {v: 0.0 for v in vertices}
    for s, t in itertools.combinations(vertices, 2):
        d_st, c_st = index.query(s, t)
        if c_st == 0:
            continue
        for v in vertices:
            if v == s or v == t:
                continue
            d_sv, c_sv = index.query(s, v)
            if d_sv >= d_st:
                continue
            d_vt, c_vt = index.query(v, t)
            if d_sv + d_vt == d_st:
                scores[v] += (c_sv * c_vt) / c_st
    return scores


def group_betweenness(graph, index, group, pairs=None):
    """B(group): summed fraction of shortest paths intersecting ``group``.

    ``graph``/``index`` describe G; the removal of ``group`` runs on a
    scratch copy through SPCEngine vertex deletions.  ``pairs`` restricts
    the sum to specific (s, t) pairs (default: all unordered outside pairs).
    """
    group = set(group)
    scratch = SPCEngine(graph.copy(), index=index.copy())
    for v in group:
        scratch.delete_vertex(v)

    if pairs is None:
        outside = [v for v in sorted(graph.vertices()) if v not in group]
        pairs = itertools.combinations(outside, 2)

    total = 0.0
    for s, t in pairs:
        if s in group or t in group:
            continue
        d_full, c_full = index.query(s, t)
        if c_full == 0:
            continue
        d_cut, c_cut = scratch.query(s, t)
        survivors = c_cut if d_cut == d_full else 0
        total += (c_full - survivors) / c_full
    return total


def top_k_betweenness(index, k=5, vertices=None):
    """The k vertices with the highest betweenness, with their scores."""
    scores = vertex_betweenness(index, vertices=vertices)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]
