"""Applications built on the SPC oracle: betweenness and recommendation."""

from repro.applications.betweenness import (
    group_betweenness,
    pair_dependency,
    top_k_betweenness,
    vertex_betweenness,
)
from repro.applications.recommendation import (
    mutual_friend_candidates,
    rank_pairs_by_affinity,
    recommend_friends,
)

__all__ = [
    "pair_dependency",
    "vertex_betweenness",
    "group_betweenness",
    "top_k_betweenness",
    "mutual_friend_candidates",
    "recommend_friends",
    "rank_pairs_by_affinity",
]
