"""Link recommendation by shortest-path counting (the paper's §1 example).

Distance ties are everywhere in small-world graphs; the *count* of shortest
paths breaks them: more distance-2 paths means more mutual friends.  This
module productizes the intro's example as a reusable recommender over a
(dynamic) SPC oracle.
"""

INF = float("inf")


def mutual_friend_candidates(graph, oracle, user, radius=2):
    """All non-neighbors of ``user`` at exactly ``radius``, with path counts.

    Returns a list of (candidate, count) pairs, unsorted.
    """
    out = []
    for other in graph.vertices():
        if other == user or graph.has_edge(user, other):
            continue
        d, c = oracle.query(user, other)
        if d == radius:
            out.append((other, c))
    return out


def recommend_friends(graph, oracle, user, k=5, radius=2):
    """Top-k recommendations, ranked by shortest-path count descending.

    Ties break by candidate id for determinism, like a production ranking
    with a stable sort key.
    """
    candidates = mutual_friend_candidates(graph, oracle, user, radius=radius)
    candidates.sort(key=lambda pair: (-pair[1], pair[0]))
    return candidates[:k]


def rank_pairs_by_affinity(oracle, pairs):
    """Order (s, t) pairs by affinity: closer first, more paths first.

    The ranking key is (distance, -count) — the paper's search-ranking use
    case ("the most relevant results are displayed first").
    """
    def key(pair):
        d, c = oracle.query(*pair)
        return (d, -c, pair)

    return sorted(pairs, key=key)
