"""Sticky sessions: read-your-writes on top of the cluster router.

A cluster serves reads from replicas that trail the primary, so a plain
``submit`` followed by a routed ``query`` can read *around* your own
write.  A :class:`ClusterSession` closes that hole with a sequence-number
watermark instead of pinning a server: every acknowledged write records
the primary sequence number it was applied under (``submit(...).ack()``),
and every session read passes that watermark as the router's ``min_seq``
floor — any replica that has replayed past your write may serve you, and
one always exists because the primary's own published snapshot covers
every acked seq (``flush`` waits for apply *and* publish).

The session is "sticky" to a position in the replication stream, not to a
machine: that keeps load spread across the fleet while still guaranteeing
a session never observes a state older than its own last acked write.
"""

class WriteTicket:
    """Handle for one submitted update (or batch); ``ack`` makes it
    durable-visible and advances the session's read floor."""

    __slots__ = ("_session", "acked_seq")

    def __init__(self, session):
        self._session = session
        self.acked_seq = None

    def ack(self, timeout=30.0):
        """Block until the write is applied *and published*, then raise the
        session's read floor to that sequence number.  Returns the seq.

        Idempotent: re-acking returns the original seq without waiting.
        """
        if self.acked_seq is None:
            self.acked_seq = self._session._ack(timeout)
        return self.acked_seq


class ClusterSession:
    """One submitter's read-your-writes view over an SPCCluster."""

    def __init__(self, cluster):
        self._cluster = cluster
        self.last_acked_seq = 0

    # ------------------------------------------------------------------
    # Write path — submissions go to the primary, acks move the floor
    # ------------------------------------------------------------------

    def submit(self, update):
        """Enqueue one update on the primary; returns a :class:`WriteTicket`."""
        self._cluster.primary.submit(update)
        return WriteTicket(self)

    def submit_many(self, updates):
        """Enqueue a batch (kept whole) on the primary; returns a ticket."""
        self._cluster.primary.submit_many(updates)
        return WriteTicket(self)

    def _ack(self, timeout):
        snapshot = self._cluster.primary.flush(timeout=timeout)
        self.last_acked_seq = max(self.last_acked_seq, snapshot.seq)
        return self.last_acked_seq

    # ------------------------------------------------------------------
    # Read path — routed, floored at the session's last acked write
    # ------------------------------------------------------------------

    def query(self, s, t):
        """Answer (sd, spc), never older than the last acked write."""
        return self._cluster.router.query(s, t, min_seq=self.last_acked_seq)

    def query_tagged(self, s, t):
        """Like :meth:`query` but returns ``(answer, seq, target_name)``."""
        return self._cluster.router.query_tagged(
            s, t, min_seq=self.last_acked_seq
        )

    def query_many(self, pairs):
        """Answer a batch against one snapshot covering every acked write."""
        return self._cluster.router.query_many(
            pairs, min_seq=self.last_acked_seq
        )

    def __repr__(self):
        return f"ClusterSession(last_acked_seq={self.last_acked_seq})"
