"""ClusterRouter: policy-driven read routing across a replica fleet.

The router fronts one primary :class:`~repro.serve.SPCService` and K
:class:`~repro.cluster.replica.Replica` followers.  Every read acquires a
*lease*: the router picks a target under the configured policy, pins that
target's current snapshot (eligibility is evaluated on the exact snapshot
the caller will read — never on a counter that could move between check
and use), bumps the target's in-flight counter, and hands back a
:class:`RoutedRead` whose release decrements the counter.

Policies (``policy=`` name):

* ``round_robin`` — rotate across the healthy replicas.
* ``least_loaded`` — pick the healthy replica with the fewest in-flight
  leases (ties broken round-robin so idle fleets still spread).
* ``bounded_staleness`` — serve only from snapshots whose sequence number
  is within ``staleness_delta`` of the primary's applied seq at selection
  time: an answer tagged ``seq`` is never handed out with
  ``seq < primary_seq - delta``.  Selection among the fresh-enough
  replicas rotates round-robin.

Every policy also honours a per-read ``min_seq`` floor — the hook sticky
sessions use for read-your-writes (see
:class:`~repro.cluster.session.ClusterSession`).  When no replica
qualifies the router falls back to the primary's own snapshot if *it*
qualifies, and otherwise briefly waits for the fleet to catch up before
raising :class:`~repro.exceptions.ClusterError` — returning a stale
answer instead would silently break the policy's promise.
"""

import threading
import time

from repro.exceptions import ClusterError

#: policy registry — name -> nothing but validation; selection is shared.
POLICIES = ("round_robin", "least_loaded", "bounded_staleness")


class _Target:
    """Router-side bookkeeping for one queryable backend (replica/primary)."""

    __slots__ = ("name", "handle", "inflight", "routed")

    def __init__(self, name, handle):
        self.name = name
        self.handle = handle
        self.inflight = 0
        self.routed = 0

    def healthy(self):
        return getattr(self.handle, "healthy", True)


class RoutedRead:
    """A leased (target, pinned snapshot) pair; use as a context manager.

    ``snapshot`` is immutable, so the lease may be held for a whole batch
    of queries; releasing only returns the in-flight slot used by the
    ``least_loaded`` policy.
    """

    __slots__ = ("name", "snapshot", "_router", "_target", "_released")

    def __init__(self, router, target, snapshot):
        self.name = target.name
        self.snapshot = snapshot
        self._router = router
        self._target = target
        self._released = False

    def release(self):
        """Return the in-flight slot (idempotent)."""
        if not self._released:
            self._released = True
            self._router._release(self._target)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False


class ClusterRouter:
    """Route reads across one primary and its replicas under a policy."""

    def __init__(self, primary, replicas, policy="round_robin",
                 staleness_delta=8, wait_timeout=5.0, parallel_threshold=64):
        if policy not in POLICIES:
            raise ClusterError(
                f"unknown routing policy {policy!r}; choose from {POLICIES}"
            )
        if staleness_delta < 0:
            raise ClusterError(
                f"staleness_delta must be >= 0, got {staleness_delta!r}"
            )
        if parallel_threshold < 2:
            raise ClusterError(
                f"parallel_threshold must be >= 2, got {parallel_threshold!r}"
            )
        self.policy = policy
        self.staleness_delta = staleness_delta
        self.wait_timeout = wait_timeout
        self.parallel_threshold = parallel_threshold
        self._primary = _Target("primary", primary)
        self._replicas = [_Target(r.name, r) for r in replicas]
        self._lock = threading.Lock()
        self._rr = 0
        self._fallbacks = 0
        self._waits = 0
        self._answer_tap = None

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    def add_replica(self, replica):
        """Register a new follower with the router."""
        with self._lock:
            self._replicas.append(_Target(replica.name, replica))

    def set_replica(self, name, replica):
        """Swap the handle behind ``name`` (a restarted replica)."""
        with self._lock:
            for t in self._replicas:
                if t.name == name:
                    t.handle = replica
                    return
        raise ClusterError(f"router knows no replica named {name!r}")

    def replica_names(self):
        """The registered replica names, in registration order."""
        with self._lock:
            return [t.name for t in self._replicas]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def acquire(self, min_seq=0):
        """Lease a target under the policy; returns a :class:`RoutedRead`.

        Guarantees: the leased snapshot is from a healthy target,
        ``snapshot.seq >= min_seq``, and — under ``bounded_staleness`` —
        ``snapshot.seq >= primary_applied_seq - staleness_delta`` as of
        selection.  Raises :class:`ClusterError` when nothing qualifies
        within ``wait_timeout`` seconds.
        """
        deadline = time.monotonic() + self.wait_timeout
        while True:
            lease = self._try_acquire(min_seq)
            if lease is not None:
                return lease
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"no routing target reached seq >= {min_seq} within "
                    f"{self.wait_timeout} s (policy {self.policy!r}, "
                    f"delta {self.staleness_delta}, primary at seq "
                    f"{self._primary_seq()}); the fleet is lagging or down"
                )
            with self._lock:
                self._waits += 1
            time.sleep(0.001)

    def set_answer_tap(self, tap):
        """Install (or clear, with ``None``) the answer-tap hook.

        Same contract as :meth:`repro.serve.SPCService.set_answer_tap`:
        ``tap(answered, seq, target, epoch)`` fires after every routed
        read — point, tagged and batch paths alike — with the leased
        snapshot's sequence number and the serving target's name, so an
        :class:`~repro.audit.AuditSampler` observes answers from every
        replica the policy touches.
        """
        self._answer_tap = tap

    def _tapped(self, lease, answered):
        tap = self._answer_tap
        if tap is not None:
            snap = lease.snapshot
            tap(answered, snap.seq, lease.name, snap.epoch)

    def query(self, s, t, min_seq=0):
        """Answer one pair through the policy; returns (sd, spc)."""
        with self.acquire(min_seq) as lease:
            answer = lease.snapshot.query(s, t)
            self._tapped(lease, [((s, t), answer)])
            return answer

    def query_tagged(self, s, t, min_seq=0):
        """Answer one pair; returns ``(answer, seq, target_name)``.

        The seq is the claimed consistency point of the answer — the
        harness checks every tagged answer against a progressive WAL
        replay at exactly that sequence number.
        """
        with self.acquire(min_seq) as lease:
            answer = lease.snapshot.query(s, t)
            self._tapped(lease, [((s, t), answer)])
            return answer, lease.snapshot.seq, lease.name

    def query_many(self, pairs, min_seq=0):
        """Answer a batch of pairs, spreading large batches over the fleet.

        Batches shorter than ``parallel_threshold`` — or when fewer than
        two healthy replicas are up — take the classic path: one lease,
        one snapshot, one pass.  Larger batches are split into contiguous
        sub-batches (:func:`repro.shard.planner.split_batch`), each
        answered under its *own* lease on whatever target the policy
        picks, and reassembled in submission order.  Each sub-batch fires
        the answer tap with its own (seq, target), so every answer is
        still attributed to the exact snapshot that served it — sub-
        batches may land on different seqs, which is why
        :meth:`query_many_tagged` (one claimed seq for the whole batch)
        never splits.
        """
        pairs = list(pairs)
        if len(pairs) >= self.parallel_threshold:
            # Deferred import: repro.shard's package init reaches back
            # into repro.cluster through the audit harness, so a top-
            # level import here would be circular.
            from repro.shard.planner import gather_chunks, split_batch

            with self._lock:
                ways = sum(1 for t in self._replicas if t.healthy())
            if ways >= 2:
                chunks = split_batch(
                    pairs, ways, min_chunk=self.parallel_threshold // 2
                )
                if len(chunks) >= 2:
                    def worker(_offset, chunk):
                        with self.acquire(min_seq) as lease:
                            answers = lease.snapshot.query_many(chunk)
                            self._tapped(lease, list(zip(chunk, answers)))
                            return answers

                    return gather_chunks(chunks, worker, parallel=True)
        with self.acquire(min_seq) as lease:
            answers = lease.snapshot.query_many(pairs)
            self._tapped(lease, list(zip(pairs, answers)))
            return answers

    def query_many_tagged(self, pairs, min_seq=0):
        """Batch variant of :meth:`query_tagged`: (answers, seq, name).

        Always a single lease: the returned seq is a claim about *every*
        answer in the batch, so the batch is never split across
        snapshots (use :meth:`query_many` for replica-spread batches).
        """
        pairs = list(pairs)
        with self.acquire(min_seq) as lease:
            answers = lease.snapshot.query_many(pairs)
            self._tapped(lease, list(zip(pairs, answers)))
            return answers, lease.snapshot.seq, lease.name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Routing counters per target plus fallback/wait totals."""
        with self._lock:
            return {
                "policy": self.policy,
                "staleness_delta": self.staleness_delta,
                "routed": {t.name: t.routed for t in self._replicas},
                "primary_reads": self._primary.routed,
                "fallbacks": self._fallbacks,
                "waits": self._waits,
            }

    def __repr__(self):
        return (
            f"ClusterRouter(policy={self.policy!r}, "
            f"replicas={[t.name for t in self._replicas]}, "
            f"delta={self.staleness_delta})"
        )

    # ------------------------------------------------------------------
    # Selection internals
    # ------------------------------------------------------------------

    def _primary_seq(self):
        return self._primary.handle.applied_seq

    def _try_acquire(self, min_seq):
        """One selection attempt; returns a lease or None (nothing fresh)."""
        if self.policy == "bounded_staleness":
            floor = self._primary_seq() - self.staleness_delta
        else:
            floor = None
        candidates = []  # (target, pinned snapshot)
        with self._lock:
            replicas = list(self._replicas)
        for target in replicas:
            if not target.healthy():
                continue
            snap = target.handle.snapshot()
            if snap is None or snap.seq < min_seq:
                continue
            if floor is not None and snap.seq < floor:
                continue
            candidates.append((target, snap))
        if candidates:
            return self._lease(*self._pick(candidates))
        # No replica qualifies: the primary's own snapshot is the fallback,
        # held to the same freshness bar (its snapshot can trail its
        # applied seq by up to publish_every, so it must be checked too).
        snap = self._primary.handle.snapshot()
        if snap is not None and snap.seq >= min_seq and (
            floor is None or snap.seq >= floor
        ):
            with self._lock:
                self._fallbacks += 1
            return self._lease(self._primary, snap)
        return None

    def _pick(self, candidates):
        """Choose among eligible (target, snapshot) pairs under the policy."""
        with self._lock:
            if self.policy == "least_loaded":
                lightest = min(c[0].inflight for c in candidates)
                candidates = [
                    c for c in candidates if c[0].inflight == lightest
                ]
            self._rr += 1
            return candidates[self._rr % len(candidates)]

    def _lease(self, target, snapshot):
        with self._lock:
            target.inflight += 1
            target.routed += 1
        return RoutedRead(self, target, snapshot)

    def _release(self, target):
        with self._lock:
            target.inflight -= 1
