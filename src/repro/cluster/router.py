"""ClusterRouter: policy-driven, failure-aware read routing over replicas.

The router fronts one primary :class:`~repro.serve.SPCService` and K
:class:`~repro.cluster.replica.Replica` followers.  Every read acquires a
*lease*: the router picks a target under the configured policy, pins that
target's current snapshot (eligibility is evaluated on the exact snapshot
the caller will read — never on a counter that could move between check
and use), bumps the target's in-flight counter, and hands back a
:class:`RoutedRead` whose release decrements the counter.

Policies (``policy=`` name):

* ``round_robin`` — rotate across the healthy replicas.
* ``least_loaded`` — pick the healthy replica with the fewest in-flight
  leases (ties broken round-robin so idle fleets still spread).
* ``bounded_staleness`` — serve only from snapshots whose sequence number
  is within ``staleness_delta`` of the primary's applied seq at selection
  time: an answer tagged ``seq`` is never handed out with
  ``seq < primary_seq - delta``.  Selection among the fresh-enough
  replicas rotates round-robin.

Every policy also honours a per-read ``min_seq`` floor — the hook sticky
sessions use for read-your-writes (see
:class:`~repro.cluster.session.ClusterSession`).  When no replica
qualifies the router falls back to the primary's own snapshot if *it*
qualifies, and otherwise waits for the fleet to catch up before raising
:class:`~repro.exceptions.ClusterError` — returning a stale answer
instead would silently break the policy's promise.

Resilience (all per-target, selection-time):

* **Retry-with-failover under a deadline** — an acquire is a loop over
  selection attempts until ``wait_timeout``; a target that fails the
  health/snapshot probe is simply skipped this attempt, so the read
  fails over to whichever sibling qualifies instead of erroring on the
  first dead replica.
* **Circuit breakers** — each replica carries a
  :class:`~repro.resilience.CircuitBreaker`: consecutive lease failures
  (dead handle, no published snapshot) trip it open and the router stops
  probing that member until the cooldown admits a half-open probe.  A
  supervisor restart resets the breaker.  Staleness misses are *not*
  failures — a lagging replica is healthy, just behind.
* **Condition-variable waits** — instead of a 1 ms hot spin, waiters
  block on a condition notified by every publish (the cluster wires
  ``set_publish_listener`` to :meth:`notify_event`) and every health
  transition, with a 50 ms poll cap as a safety net.
* **Opt-in degraded mode** — with ``degraded="stale"``, a read that
  would time out (and carries no ``min_seq`` floor — read-your-writes
  never degrades) is served from the freshest snapshot any registered
  target ever published, dead or alive, provided it is within
  ``degraded_max_lag`` of the primary's applied seq.  The lease is
  tagged ``degraded=True`` and the answer tap sees the target as
  ``"<name>+degraded"``, so the staleness is visible end to end.  A
  snapshot is immutable and consistent *at its own seq* — degraded
  answers are bounded-stale, never wrong, which is why the shadow
  auditor verifies them unchanged.  The default stays ``"refuse"``.
"""

import threading
import time

from repro.exceptions import ClusterError
from repro.resilience.breaker import CircuitBreaker

#: policy registry — name -> nothing but validation; selection is shared.
POLICIES = ("round_robin", "least_loaded", "bounded_staleness")

#: degraded-mode vocabulary: refuse (default) or serve bounded-stale.
DEGRADED_MODES = ("refuse", "stale")

#: cap on each blocking wait slice — the safety net under lost wakeups.
_WAIT_SLICE = 0.05


class _Target:
    """Router-side bookkeeping for one queryable backend (replica/primary)."""

    __slots__ = ("name", "handle", "inflight", "routed", "breaker")

    def __init__(self, name, handle, breaker=None):
        self.name = name
        self.handle = handle
        self.inflight = 0
        self.routed = 0
        self.breaker = breaker

    def healthy(self):
        return getattr(self.handle, "healthy", True)


class RoutedRead:
    """A leased (target, pinned snapshot) pair; use as a context manager.

    ``snapshot`` is immutable, so the lease may be held for a whole batch
    of queries; releasing only returns the in-flight slot used by the
    ``least_loaded`` policy.  ``degraded`` marks a bounded-stale lease
    served under the router's opt-in degraded mode.
    """

    __slots__ = ("name", "snapshot", "degraded", "_router", "_target",
                 "_released")

    def __init__(self, router, target, snapshot, degraded=False):
        self.name = target.name
        self.snapshot = snapshot
        self.degraded = degraded
        self._router = router
        self._target = target
        self._released = False

    def release(self):
        """Return the in-flight slot (idempotent)."""
        if not self._released:
            self._released = True
            self._router._release(self._target)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False


class _RouterObs:
    """Pre-created instruments for one router (see ``set_metrics``)."""

    __slots__ = ("tracer", "leases", "wait", "refusals", "transitions")

    def __init__(self, registry, tracer, layer):
        self.tracer = tracer
        self.leases = registry.counter(f"repro_{layer}_leases")
        self.wait = registry.histogram(f"repro_{layer}_lease_wait_seconds")
        self.refusals = registry.counter(f"repro_{layer}_refusals")
        self.transitions = {
            state: registry.counter(
                f"repro_{layer}_breaker_transitions", to=state
            )
            for state in ("closed", "open", "half_open")
        }

    def on_breaker_transition(self, _old, new):
        counter = self.transitions.get(new)
        if counter is not None:
            counter.inc()


class ClusterRouter:
    """Route reads across one primary and its replicas under a policy."""

    def __init__(self, primary, replicas, policy="round_robin",
                 staleness_delta=8, wait_timeout=5.0, parallel_threshold=64,
                 degraded="refuse", degraded_max_lag=64,
                 breaker_threshold=3, breaker_cooldown=0.25):
        if policy not in POLICIES:
            raise ClusterError(
                f"unknown routing policy {policy!r}; choose from {POLICIES}"
            )
        if staleness_delta < 0:
            raise ClusterError(
                f"staleness_delta must be >= 0, got {staleness_delta!r}"
            )
        if parallel_threshold < 2:
            raise ClusterError(
                f"parallel_threshold must be >= 2, got {parallel_threshold!r}"
            )
        if degraded not in DEGRADED_MODES:
            raise ClusterError(
                f"unknown degraded mode {degraded!r}; "
                f"choose from {DEGRADED_MODES}"
            )
        if degraded_max_lag < 0:
            raise ClusterError(
                f"degraded_max_lag must be >= 0, got {degraded_max_lag!r}"
            )
        self.policy = policy
        self.staleness_delta = staleness_delta
        self.wait_timeout = wait_timeout
        self.parallel_threshold = parallel_threshold
        self.degraded = degraded
        self.degraded_max_lag = degraded_max_lag
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._primary = _Target("primary", primary)
        self._replicas = [
            _Target(r.name, r, self._new_breaker()) for r in replicas
        ]
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._rr = 0
        self._fallbacks = 0
        self._waits = 0
        self._breaker_skips = 0
        self._degraded_serves = 0
        self._answer_tap = None
        self._obs = None

    def _new_breaker(self):
        return CircuitBreaker(
            failure_threshold=self._breaker_threshold,
            cooldown=self._breaker_cooldown,
        )

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    def set_metrics(self, registry, tracer=None):
        """Install (or clear, with ``None``) the telemetry seam.

        Promotes ``stats()`` into ``registry`` as callback gauges, arms
        lease counters and a lease-wait histogram on the acquire path,
        counts every circuit-breaker state transition (via
        :meth:`~repro.resilience.CircuitBreaker.set_listener`), and —
        with a :class:`~repro.obs.Tracer` — retains span trees for
        sampled routed reads.
        """
        if registry is None:
            with self._lock:
                targets = list(self._replicas)
            for target in targets:
                if target.breaker is not None:
                    target.breaker.set_listener(None)
            self._obs = None
            return
        from repro.obs.bind import bind_cluster_router

        bind_cluster_router(registry, self)
        obs = _RouterObs(registry, tracer, "cluster")
        with self._lock:
            targets = list(self._replicas)
        for target in targets:
            if target.breaker is not None:
                target.breaker.set_listener(obs.on_breaker_transition)
        self._obs = obs

    def add_replica(self, replica):
        """Register a new follower with the router."""
        breaker = self._new_breaker()
        obs = self._obs
        if obs is not None:
            breaker.set_listener(obs.on_breaker_transition)
        with self._lock:
            self._replicas.append(_Target(replica.name, replica, breaker))
        self.notify_event()

    def set_replica(self, name, replica):
        """Swap the handle behind ``name`` (a restarted replica).

        The target's circuit breaker is reset — the new member deserves
        a clean slate — and lease waiters are woken to re-examine it.
        """
        with self._lock:
            for t in self._replicas:
                if t.name == name:
                    t.handle = replica
                    if t.breaker is not None:
                        t.breaker.reset()
                    break
            else:
                raise ClusterError(f"router knows no replica named {name!r}")
        self.notify_event()

    def replica_names(self):
        """The registered replica names, in registration order."""
        with self._lock:
            return [t.name for t in self._replicas]

    def notify_event(self, *_args, **_kwargs):
        """Wake blocked lease waiters (publish / health-change seam).

        Wired to every member's ``set_publish_listener`` and to the
        supervisor's :class:`~repro.resilience.HealthMonitor` listener —
        extra positional arguments (the monitor passes its event) are
        accepted and ignored so one callable fits both seams.
        """
        with self._wakeup:
            self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def acquire(self, min_seq=0):
        """Lease a target under the policy; returns a :class:`RoutedRead`.

        Guarantees: the leased snapshot is from a healthy target,
        ``snapshot.seq >= min_seq``, and — under ``bounded_staleness`` —
        ``snapshot.seq >= primary_applied_seq - staleness_delta`` as of
        selection.  When nothing qualifies within ``wait_timeout``
        seconds: raises :class:`ClusterError` (the default), or — under
        ``degraded="stale"`` and only for floorless reads — serves the
        freshest bounded-stale snapshot any target published, tagged
        ``degraded=True``.
        """
        obs = self._obs
        t0 = time.perf_counter() if obs is not None else 0.0
        deadline = time.monotonic() + self.wait_timeout
        while True:
            lease = self._try_acquire(min_seq)
            if lease is not None:
                if obs is not None:
                    obs.leases.inc()
                    obs.wait.observe(time.perf_counter() - t0)
                return lease
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            with self._wakeup:
                self._waits += 1
                self._wakeup.wait(min(_WAIT_SLICE, remaining))
        if self.degraded == "stale" and min_seq == 0:
            lease = self._degraded_acquire()
            if lease is not None:
                if obs is not None:
                    obs.leases.inc()
                    obs.wait.observe(time.perf_counter() - t0)
                return lease
        if obs is not None:
            obs.refusals.inc()
        raise ClusterError(
            f"no routing target reached seq >= {min_seq} within "
            f"{self.wait_timeout} s (policy {self.policy!r}, "
            f"delta {self.staleness_delta}, primary at seq "
            f"{self._primary_seq()}); the fleet is lagging or down"
        )

    def set_answer_tap(self, tap):
        """Install (or clear, with ``None``) the answer-tap hook.

        Same contract as :meth:`repro.serve.SPCService.set_answer_tap`:
        ``tap(answered, seq, target, epoch)`` fires after every routed
        read — point, tagged and batch paths alike — with the leased
        snapshot's sequence number and the serving target's name, so an
        :class:`~repro.audit.AuditSampler` observes answers from every
        replica the policy touches.  Degraded leases report their target
        as ``"<name>+degraded"``.
        """
        self._answer_tap = tap

    def _tapped(self, lease, answered):
        tap = self._answer_tap
        if tap is not None:
            snap = lease.snapshot
            name = f"{lease.name}+degraded" if lease.degraded else lease.name
            tap(answered, snap.seq, name, snap.epoch)

    def query(self, s, t, min_seq=0):
        """Answer one pair through the policy; returns (sd, spc)."""
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        trace = tracer.maybe_begin("cluster_query") if tracer else None
        if trace is None:
            with self.acquire(min_seq) as lease:
                answer = lease.snapshot.query(s, t)
                self._tapped(lease, [((s, t), answer)])
                return answer
        t0 = time.perf_counter()
        with self.acquire(min_seq) as lease:
            t1 = time.perf_counter()
            answer = lease.snapshot.query(s, t)
            t2 = time.perf_counter()
            self._tapped(lease, [((s, t), answer)])
            t3 = time.perf_counter()
            trace.add("queue_wait", t1 - t0, meta={"target": lease.name})
            trace.add("probe", t2 - t1)
            trace.add("tap", t3 - t2)
            trace.finish(t3 - t0)
            return answer

    def query_tagged(self, s, t, min_seq=0):
        """Answer one pair; returns ``(answer, seq, target_name)``.

        The seq is the claimed consistency point of the answer — the
        harness checks every tagged answer against a progressive WAL
        replay at exactly that sequence number.
        """
        with self.acquire(min_seq) as lease:
            answer = lease.snapshot.query(s, t)
            self._tapped(lease, [((s, t), answer)])
            name = f"{lease.name}+degraded" if lease.degraded else lease.name
            return answer, lease.snapshot.seq, name

    def query_many(self, pairs, min_seq=0):
        """Answer a batch of pairs, spreading large batches over the fleet.

        Batches shorter than ``parallel_threshold`` — or when fewer than
        two healthy replicas are up — take the classic path: one lease,
        one snapshot, one pass.  Larger batches are split into contiguous
        sub-batches (:func:`repro.shard.planner.split_batch`), each
        answered under its *own* lease on whatever target the policy
        picks, and reassembled in submission order.  Each sub-batch fires
        the answer tap with its own (seq, target), so every answer is
        still attributed to the exact snapshot that served it — sub-
        batches may land on different seqs, which is why
        :meth:`query_many_tagged` (one claimed seq for the whole batch)
        never splits.
        """
        pairs = list(pairs)
        if len(pairs) >= self.parallel_threshold:
            # Deferred import: repro.shard's package init reaches back
            # into repro.cluster through the audit harness, so a top-
            # level import here would be circular.
            from repro.shard.planner import gather_chunks, split_batch

            with self._lock:
                ways = sum(1 for t in self._replicas if t.healthy())
            if ways >= 2:
                chunks = split_batch(
                    pairs, ways, min_chunk=self.parallel_threshold // 2
                )
                if len(chunks) >= 2:
                    def worker(_offset, chunk):
                        with self.acquire(min_seq) as lease:
                            answers = lease.snapshot.query_many(chunk)
                            self._tapped(lease, list(zip(chunk, answers)))
                            return answers

                    return gather_chunks(chunks, worker, parallel=True)
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        trace = tracer.maybe_begin("cluster_query_many") if tracer else None
        if trace is None:
            with self.acquire(min_seq) as lease:
                answers = lease.snapshot.query_many(pairs)
                self._tapped(lease, list(zip(pairs, answers)))
                return answers
        t0 = time.perf_counter()
        with self.acquire(min_seq) as lease:
            t1 = time.perf_counter()
            answers = lease.snapshot.query_many(pairs)
            t2 = time.perf_counter()
            self._tapped(lease, list(zip(pairs, answers)))
            t3 = time.perf_counter()
            trace.add("queue_wait", t1 - t0, meta={"target": lease.name})
            trace.add("probe", t2 - t1, meta={"pairs": len(pairs)})
            trace.add("tap", t3 - t2)
            trace.finish(t3 - t0)
            return answers

    def query_many_tagged(self, pairs, min_seq=0):
        """Batch variant of :meth:`query_tagged`: (answers, seq, name).

        Always a single lease: the returned seq is a claim about *every*
        answer in the batch, so the batch is never split across
        snapshots (use :meth:`query_many` for replica-spread batches).
        """
        pairs = list(pairs)
        with self.acquire(min_seq) as lease:
            answers = lease.snapshot.query_many(pairs)
            self._tapped(lease, list(zip(pairs, answers)))
            name = f"{lease.name}+degraded" if lease.degraded else lease.name
            return answers, lease.snapshot.seq, name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Routing counters per target plus fallback/wait totals."""
        with self._lock:
            return {
                "policy": self.policy,
                "staleness_delta": self.staleness_delta,
                "degraded_mode": self.degraded,
                "routed": {t.name: t.routed for t in self._replicas},
                "primary_reads": self._primary.routed,
                "fallbacks": self._fallbacks,
                "waits": self._waits,
                "breaker_skips": self._breaker_skips,
                "degraded_serves": self._degraded_serves,
                "breakers": {
                    t.name: t.breaker.stats()
                    for t in self._replicas if t.breaker is not None
                },
            }

    def __repr__(self):
        return (
            f"ClusterRouter(policy={self.policy!r}, "
            f"replicas={[t.name for t in self._replicas]}, "
            f"delta={self.staleness_delta}, degraded={self.degraded!r})"
        )

    # ------------------------------------------------------------------
    # Selection internals
    # ------------------------------------------------------------------

    def _primary_seq(self):
        return self._primary.handle.applied_seq

    def _try_acquire(self, min_seq):
        """One selection attempt; returns a lease or None (nothing fresh)."""
        if self.policy == "bounded_staleness":
            floor = self._primary_seq() - self.staleness_delta
        else:
            floor = None
        candidates = []  # (target, pinned snapshot)
        skips = 0
        with self._lock:
            replicas = list(self._replicas)
        for target in replicas:
            breaker = target.breaker
            if not target.healthy():
                # A dead handle is a lease failure the breaker counts —
                # once open, the router skips the member without even
                # reading it until a half-open probe is due.
                if breaker is not None and breaker.allow():
                    breaker.record_failure()
                else:
                    skips += 1
                continue
            if breaker is not None and not breaker.allow():
                skips += 1
                continue
            snap = target.handle.snapshot()
            if snap is None:
                if breaker is not None:
                    breaker.record_failure()
                continue
            if breaker is not None:
                breaker.record_success()
            # Staleness misses are not target failures: the member is
            # healthy, merely behind — the supervisor's lag tracking owns
            # that signal, not the breaker.
            if snap.seq < min_seq:
                continue
            if floor is not None and snap.seq < floor:
                continue
            candidates.append((target, snap))
        if skips:
            with self._lock:
                self._breaker_skips += skips
        if candidates:
            return self._lease(*self._pick(candidates))
        # No replica qualifies: the primary's own snapshot is the fallback,
        # held to the same freshness bar (its snapshot can trail its
        # applied seq by up to publish_every, so it must be checked too).
        snap = self._primary.handle.snapshot()
        if snap is not None and snap.seq >= min_seq and (
            floor is None or snap.seq >= floor
        ):
            with self._lock:
                self._fallbacks += 1
            return self._lease(self._primary, snap)
        return None

    def _degraded_acquire(self):
        """Serve the freshest bounded-stale snapshot from *any* target.

        Health, breakers and the staleness policy are deliberately
        ignored — a dead replica's last published snapshot is still an
        immutable, internally consistent view at its own seq.  The only
        bar is ``degraded_max_lag`` against the primary's applied seq:
        past it, bounded staleness can no longer be claimed and the
        refusal stands.
        """
        floor = self._primary_seq() - self.degraded_max_lag
        with self._lock:
            targets = [self._primary] + list(self._replicas)
        best = None
        for target in targets:
            try:
                snap = target.handle.snapshot()
            except Exception:  # noqa: BLE001 — a torn-down handle yields
                continue       # nothing; degraded mode scavenges, not insists
            if snap is None or snap.seq < floor:
                continue
            if best is None or snap.seq > best[1].seq:
                best = (target, snap)
        if best is None:
            return None
        with self._lock:
            self._degraded_serves += 1
        return self._lease(*best, degraded=True)

    def _pick(self, candidates):
        """Choose among eligible (target, snapshot) pairs under the policy."""
        with self._lock:
            if self.policy == "least_loaded":
                lightest = min(c[0].inflight for c in candidates)
                candidates = [
                    c for c in candidates if c[0].inflight == lightest
                ]
            self._rr += 1
            return candidates[self._rr % len(candidates)]

    def _lease(self, target, snapshot, degraded=False):
        with self._lock:
            target.inflight += 1
            target.routed += 1
        return RoutedRead(self, target, snapshot, degraded=degraded)

    def _release(self, target):
        with self._lock:
            target.inflight -= 1
