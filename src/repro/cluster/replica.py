"""Replica: one follower service kept in sync by tailing the primary's WAL.

A :class:`Replica` owns a full :class:`~repro.engine.SPCEngine` of its own
— bootstrapped from the primary's durable checkpoint — and an applier
thread that tails the primary's write-ahead log as a replication stream:
every WAL record is applied in sequence order through the engine's logged
apply path (one ``begin/end_update_batch`` bracket per polled tail, so
e.g. an SD replica rebuilds once per tail, not once per record) and a
fresh immutable :class:`~repro.serve.SnapshotView` is published, tagged
with the replica's applied sequence number.  Readers query the replica
exactly like they query the primary service: lock-free, against the
current snapshot.

Bootstrap and catch-up form a small state machine:

* **bootstrap** — load the checkpoint; if the replica runs the same
  backend family as the primary the index is rehydrated warm (no
  rebuild); a different family of the *same graph type* (core ⇄ sd) cold
  starts by rebuilding its own index from the checkpointed graph; a
  different graph family raises
  :class:`~repro.exceptions.CheckpointMismatchError`.
* **tail** — poll the WAL for contiguous new records and apply them.
* **re-bootstrap** — when the tailer reports a gap (the primary
  compacted the WAL under an auto-checkpoint policy, or truncation raced
  regrowth), discard the engine and bootstrap again from the *new*
  checkpoint; the replica's applied seq jumps forward to the checkpoint's.

A replica never writes: it keeps no WAL and no checkpoint of its own, and
its engine is reached only through published snapshots.
"""

import os
import threading
import time
import warnings

from repro.engine import EngineConfig, SPCEngine, get_backend
from repro.exceptions import CheckpointMismatchError, ClusterError
from repro.serve.persist import (
    engine_from_payload,
    graph_from_payload,
    load_checkpoint,
)
from repro.serve.service import SNAPSHOT_FILENAME, WAL_FILENAME
from repro.serve.snapshot import SnapshotView
from repro.serve.wal import WalTailer


class Replica:
    """A read-only follower of one primary's durability directory.

    Parameters
    ----------
    primary_dir:
        The primary service's ``durability_dir`` — the checkpoint +
        WAL pair that is both the bootstrap source and the replication
        stream.
    name:
        Identifier used by the router and in error messages.
    backend:
        Backend family for this replica's engine; ``None`` follows the
        checkpoint's family (warm bootstrap).  A different family must
        share the checkpoint's graph type.
    poll_interval:
        Seconds the applier sleeps between empty polls of the WAL.
    stall_budget:
        Consecutive no-progress re-bootstraps before the applier dies
        (``None`` uses :attr:`MAX_STALLED_BOOTSTRAPS`).  The chaos
        harness shortens it so a corrupted stream is declared dead — and
        the supervisor's repair kicks in — within the fault window.
    """

    def __init__(self, primary_dir, name="replica", backend=None,
                 poll_interval=0.002, stall_budget=None):
        self.name = name
        self._dir = primary_dir
        self.backend_override = backend
        self._poll_interval = poll_interval
        self._stall_budget = (
            self.MAX_STALLED_BOOTSTRAPS if stall_budget is None else stall_budget
        )
        self._snapshot = None
        self._honest_snapshot = None
        self._snapshot_wrapper = None
        self._publish_listener = None
        self._engine = None
        self._tailer = None
        self._corruptions_base = 0
        self._applied_seq = 0
        self._fatal = None
        self._alive = True
        self._bootstraps = 0
        self._batches_applied = 0
        self._stop = threading.Event()
        self._bootstrap()  # constructor fails loudly on a bad checkpoint
        self._thread = threading.Thread(
            target=self._apply_loop, name=f"spc-replica-{name}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Read path (any thread, lock-free — same contract as SPCService)
    # ------------------------------------------------------------------

    def snapshot(self):
        """The current :class:`SnapshotView` (pin it for a consistent batch)."""
        return self._snapshot

    def set_snapshot_wrapper(self, wrapper):
        """Install (or clear, with ``None``) a publication wrapper.

        ``wrapper(snapshot)`` receives every :class:`SnapshotView` this
        replica is about to publish and returns what readers will see —
        a fault-injection seam (see :mod:`repro.audit.faults`): wrapping
        the published view in a corrupting proxy simulates a replica whose
        *serving* state was tampered with after an honest bootstrap, while
        the engine, WAL tail and checkpoints stay clean.  The current
        snapshot is re-published immediately so the tamper takes effect
        without waiting for the next applied batch.

        The re-publish re-wraps the last *honest* published view rather
        than rebuilding one from the engine: this method runs on the
        caller's thread, and snapshotting the engine here would race the
        applier mid-batch — a torn view pairing a half-applied index
        with the pre-batch seq.  Worst case the re-publish briefly
        shadows a newer snapshot the applier raced in; that is ordinary
        staleness, repaired at the next applied batch.
        """
        self._snapshot_wrapper = wrapper
        honest = self._honest_snapshot
        self._snapshot = wrapper(honest) if wrapper is not None else honest

    def set_publish_listener(self, listener):
        """Install (or clear, with ``None``) a publication hook.

        ``listener()`` runs on the applier thread after every published
        snapshot — the router's condition-variable wakeup seam.  Must be
        cheap and must never raise (a raising listener kills the applier).
        """
        self._publish_listener = listener

    def query(self, s, t):
        """Answer (sd, spc) from the freshest replicated snapshot."""
        return self._snapshot.query(s, t)

    def query_many(self, pairs):
        """Answer a batch of pairs against one single snapshot."""
        return self._snapshot.query_many(pairs)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def applied_seq(self):
        """Sequence number of the last replicated batch this replica holds."""
        return self._applied_seq

    @property
    def healthy(self):
        """True while the applier thread is running without a fatal error."""
        return self._alive and self._fatal is None

    @property
    def fatal(self):
        """The exception that killed the applier, or ``None``."""
        return self._fatal

    @property
    def bootstraps(self):
        """How many times this replica (re-)bootstrapped from a checkpoint."""
        return self._bootstraps

    @property
    def stream_corruptions(self):
        """Typed corruption events the replication stream raised so far
        (accumulated across re-bootstraps — each fresh tailer re-reads the
        log from the head, so a poisoned interior record keeps counting
        until the supervisor's repair rewrites the stream)."""
        tailer = self._tailer
        return self._corruptions_base + (
            tailer.corruptions if tailer is not None else 0
        )

    @property
    def backend_name(self):
        """The registry name of this replica's backend."""
        return self._engine.backend_name

    def catch_up(self, target_seq, timeout=10.0):
        """Block until ``applied_seq >= target_seq``; True on success.

        Returns False on timeout; raises :class:`ClusterError` if the
        applier died while waiting (it can never catch up).
        """
        deadline = time.monotonic() + timeout
        while self._applied_seq < target_seq:
            if not self.healthy:
                raise ClusterError(
                    f"replica {self.name!r} died at seq {self._applied_seq} "
                    f"while catching up to {target_seq}: {self._fatal!r}"
                )
            if time.monotonic() >= deadline:
                return False
            time.sleep(min(self._poll_interval, 0.005))
        return True

    def check_invariants(self):
        """Validate the replica engine's structural label invariants."""
        self._engine.check_invariants()
        return True

    def stats(self):
        """A dict snapshot of the replica counters (monitoring only)."""
        snap = self._snapshot
        return {
            "name": self.name,
            "backend": self._engine.backend_name,
            "applied_seq": self._applied_seq,
            "snapshot_seq": snap.seq if snap is not None else None,
            "batches_applied": self._batches_applied,
            "bootstraps": self._bootstraps,
            "stream_corruptions": self.stream_corruptions,
            "healthy": self.healthy,
        }

    def kill(self):
        """Hard-stop the applier mid-stream (fault injection).

        The last published snapshot stays readable, but the replica stops
        following the primary and reports unhealthy so routers skip it.
        Idempotent; does not raise on an already-dead replica.  A join
        that times out (the applier is wedged inside a poll or apply) is
        *detected*: the replica is marked fatal and a warning is issued —
        a silently leaked live thread would keep mutating the engine
        under whatever replaces this member.
        """
        self._stop.set()
        self._thread.join(timeout=10.0)
        if self._thread.is_alive():
            stuck = ClusterError(
                f"replica {self.name!r} applier thread failed to stop "
                f"within 10.0 s; the thread has leaked and the member "
                f"must not be reused"
            )
            if self._fatal is None:
                self._fatal = stuck
            warnings.warn(str(stuck), RuntimeWarning, stacklevel=2)
        self._alive = False

    def close(self):
        """Stop the applier; raises if it had died of an unexpected error."""
        self.kill()
        if self._fatal is not None:
            raise ClusterError(
                f"replica {self.name!r} applier died: {self._fatal!r}"
            ) from self._fatal

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            f"Replica(name={self.name!r}, backend={self._engine.backend_name!r}, "
            f"applied_seq={self._applied_seq}, healthy={self.healthy})"
        )

    # ------------------------------------------------------------------
    # Applier thread
    # ------------------------------------------------------------------

    def _bootstrap(self):
        """(Re)build the engine from the primary's current checkpoint."""
        payload = load_checkpoint(os.path.join(self._dir, SNAPSHOT_FILENAME))
        ckpt_backend = payload.get("backend")
        want = self.backend_override or ckpt_backend
        if want == ckpt_backend:
            engine = engine_from_payload(payload)
        else:
            engine = self._cold_bootstrap(payload, want)
        self._engine = engine
        self._applied_seq = payload.get("applied_seq", 0)
        # The replication stream must match the *primary's* family (the
        # WAL is stamped by the writer), not this replica's — a core WAL
        # drives an sd replica just fine.
        if self._tailer is not None:
            self._corruptions_base += self._tailer.corruptions
        self._tailer = WalTailer(
            os.path.join(self._dir, WAL_FILENAME),
            after_seq=self._applied_seq,
            expect_backend=ckpt_backend,
        )
        self._bootstraps += 1
        self._publish()

    def _cold_bootstrap(self, payload, want):
        """Build a fresh index of a different family over the checkpointed
        graph — only families sharing the graph type can follow the WAL."""
        want_cls = get_backend(want)
        ckpt_cls = get_backend(payload["backend"])
        if want_cls.graph_type is not ckpt_cls.graph_type:
            raise CheckpointMismatchError(
                f"replica {self.name!r} wants backend {want!r} "
                f"({want_cls.graph_type.__name__}) but the primary "
                f"checkpoint is {payload['backend']!r} "
                f"({ckpt_cls.graph_type.__name__}); a replica can only "
                f"follow a WAL written over the same graph family"
            )
        graph = graph_from_payload(payload["graph"], want_cls.graph_type)
        engine = SPCEngine(graph, config=EngineConfig(backend=want))
        engine.seed_epoch(payload.get("epoch", 0))
        return engine

    def _publish(self):
        backend = self._engine.backend
        snapshot = SnapshotView(
            backend.snapshot_index(),
            backend.name,
            self._engine.epoch,
            self._applied_seq,
            time.time(),
        )
        self._honest_snapshot = snapshot
        if self._snapshot_wrapper is not None:
            snapshot = self._snapshot_wrapper(snapshot)
        self._snapshot = snapshot
        listener = self._publish_listener
        if listener is not None:
            listener()

    #: consecutive no-progress re-bootstraps before the applier gives up —
    #: a gap that a fresh checkpoint cannot advance past (corruption in
    #: the middle of the log) would otherwise hot-loop forever while the
    #: replica still reported healthy.
    MAX_STALLED_BOOTSTRAPS = 3

    def _apply_loop(self):
        stalled = 0
        # Progress is measured against the furthest seq ever reached, not
        # against "did this poll return records": after a corruption-forced
        # re-bootstrap the fresh tailer re-reads the log head and re-applies
        # the same prefix every round — ground re-covered is not progress,
        # and counting it as such would hot-loop a poisoned stream forever
        # while the replica still reported healthy.
        high_water = self._applied_seq
        try:
            while not self._stop.is_set():
                records, gap = self._tailer.poll()
                if records:
                    self._applied_seq = self._engine.apply_logged_batches(
                        records
                    )
                    self._batches_applied += len(records)
                    self._publish()
                    if self._applied_seq > high_water:
                        high_water = self._applied_seq
                        stalled = 0
                if gap:
                    # The primary compacted the WAL beneath us: the missing
                    # records live only in the new checkpoint now.
                    self._bootstrap()
                    if self._applied_seq > high_water:
                        high_water = self._applied_seq
                        stalled = 0
                        continue
                    # Neither the tail nor the fresh checkpoint moved us
                    # past where we have already been: the stream is stuck
                    # (corrupt record, incompatible rewrite), not
                    # compacting.  Back off, and after a few fruitless
                    # rounds die visibly instead of spinning while routers
                    # keep trusting an ever-staler replica.
                    stalled += 1
                    if stalled >= self._stall_budget:
                        raise ClusterError(
                            f"replica {self.name!r} cannot advance past a "
                            f"replication-stream gap at seq "
                            f"{self._applied_seq}: {stalled} consecutive "
                            f"re-bootstraps made no progress (corrupt or "
                            f"incompatible WAL at {self._tailer.path})"
                        )
                    self._stop.wait(self._poll_interval)
                    continue
                if not records:
                    self._stop.wait(self._poll_interval)
        except BaseException as exc:  # noqa: BLE001 — surfaced via healthy/fatal
            self._fatal = exc
        finally:
            self._alive = False
