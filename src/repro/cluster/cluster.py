"""SPCCluster: one primary, K WAL-replicated replicas, one router.

The scale-out shape the ROADMAP calls for: a single writer
(:class:`~repro.serve.SPCService` with durability on) keeps the
authoritative engine and the WAL; each :class:`~repro.cluster.Replica`
bootstraps from the primary's checkpoint and tails that WAL as its
replication stream; a :class:`~repro.cluster.ClusterRouter` spreads reads
across the fleet under a pluggable policy.  Writes always go to the
primary — the cluster is single-writer by construction, which is what
keeps every replica a deterministic replay of one totally-ordered log.

Fault injection is a first-class operation, not a test hack:
:meth:`SPCCluster.kill_replica` hard-stops a follower mid-stream and
:meth:`SPCCluster.restart_replica` brings a fresh one up under the same
name from the *current* checkpoint + WAL tail — exactly the crash/recover
path an operator would take — while the router routes around the outage.
"""

import dataclasses
from dataclasses import dataclass

from repro.engine import SPCEngine
from repro.exceptions import ClusterError
from repro.serve.service import ServeConfig, SPCService
from repro.cluster.replica import Replica
from repro.cluster.router import ClusterRouter
from repro.cluster.session import ClusterSession


@dataclass(frozen=True)
class ClusterConfig:
    """All tunables of an :class:`SPCCluster`.

    Parameters
    ----------
    replicas:
        How many followers to run.
    policy:
        Routing policy name (see :mod:`repro.cluster.router`).
    staleness_delta:
        The Δ of ``bounded_staleness``: never serve an answer whose seq
        lags the primary's applied seq by more than this many batches.
    poll_interval:
        Seconds a replica sleeps between empty WAL polls.
    replica_backends:
        Optional per-replica backend family overrides (a tuple indexed by
        replica slot; ``None`` entries — and a ``None`` tuple — follow
        the primary's family).  Overrides must share the primary's graph
        type (core ⇄ sd).
    wait_timeout:
        How long a routed read may wait for a fresh-enough target before
        raising :class:`~repro.exceptions.ClusterError`.
    parallel_threshold:
        ``query_many`` batches at least this long are split across the
        healthy replicas (each sub-batch under its own lease) instead of
        running on a single snapshot.
    degraded:
        Router behavior at the read deadline: ``"refuse"`` (default —
        raise :class:`~repro.exceptions.ClusterError`) or ``"stale"``
        (serve the freshest available snapshot, tagged degraded, when it
        is within ``degraded_max_lag`` of the primary).
    degraded_max_lag:
        Staleness bound (in batches) a degraded-mode answer must meet.
    breaker_threshold / breaker_cooldown:
        Per-replica circuit breaker: consecutive lease failures that trip
        it open, and seconds before a half-open recovery probe.
    stall_budget:
        Re-bootstraps without progress a replica tolerates before dying
        (``None`` = the replica's own default).
    """

    replicas: int = 2
    policy: str = "round_robin"
    staleness_delta: int = 8
    poll_interval: float = 0.002
    replica_backends: tuple = None
    wait_timeout: float = 5.0
    parallel_threshold: int = 64
    degraded: str = "refuse"
    degraded_max_lag: int = 64
    breaker_threshold: int = 3
    breaker_cooldown: float = 0.25
    stall_budget: int = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ClusterError(
                f"a cluster needs at least one replica, got {self.replicas!r}"
            )
        if self.replica_backends is not None and (
            len(self.replica_backends) != self.replicas
        ):
            raise ClusterError(
                f"replica_backends names {len(self.replica_backends)} "
                f"families for {self.replicas} replicas"
            )

    def replace(self, **changes):
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


class SPCCluster:
    """A replicated serving fleet over one engine's WAL.

    Example
    -------
    >>> import repro, tempfile
    >>> from repro.cluster import SPCCluster
    >>> from repro.workloads import InsertEdge
    >>> engine = repro.open(repro.Graph.from_edges([(0, 1), (1, 2)]))
    >>> with SPCCluster(engine, tempfile.mkdtemp()) as c:
    ...     session = c.session()
    ...     _ = session.submit(InsertEdge(0, 2)).ack()
    ...     session.query(0, 2)
    (1, 1)
    """

    def __init__(self, engine, state_dir, config=None, serve_config=None,
                 overwrite=False, **overrides):
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self._config = config
        if serve_config is None:
            serve_config = ServeConfig()
        serve_config = serve_config.replace(durability_dir=state_dir)
        self._state_dir = state_dir
        self._closed = False
        self.primary = SPCService(
            engine, config=serve_config, overwrite=overwrite
        )
        self._replicas = {}
        try:
            for slot in range(config.replicas):
                name = f"replica-{slot}"
                backend = None
                if config.replica_backends is not None:
                    backend = config.replica_backends[slot]
                self._replicas[name] = Replica(
                    state_dir,
                    name=name,
                    backend=backend,
                    poll_interval=config.poll_interval,
                    stall_budget=config.stall_budget,
                )
            self.router = ClusterRouter(
                self.primary,
                list(self._replicas.values()),
                policy=config.policy,
                staleness_delta=config.staleness_delta,
                wait_timeout=config.wait_timeout,
                parallel_threshold=config.parallel_threshold,
                degraded=config.degraded,
                degraded_max_lag=config.degraded_max_lag,
                breaker_threshold=config.breaker_threshold,
                breaker_cooldown=config.breaker_cooldown,
            )
            # Publish events wake blocked routed reads instead of letting
            # them sleep out their wait slice.
            self.primary.set_publish_listener(self.router.notify_event)
            for replica in self._replicas.values():
                replica.set_publish_listener(self.router.notify_event)
        except BaseException:
            # A replica that failed to bootstrap must not leak the ones
            # that did, nor the primary's writer thread.
            self._teardown()
            raise

    # ------------------------------------------------------------------
    # Write path (primary only)
    # ------------------------------------------------------------------

    def submit(self, update):
        """Enqueue one update on the primary."""
        self.primary.submit(update)

    def submit_many(self, updates):
        """Enqueue a batch (kept whole) on the primary."""
        self.primary.submit_many(updates)

    def flush(self, timeout=30.0):
        """Apply + publish everything submitted on the primary so far."""
        return self.primary.flush(timeout=timeout)

    def checkpoint(self, truncate_wal=False, timeout=30.0):
        """Durable checkpoint on the primary (replicas re-bootstrap if the
        WAL is truncated beneath their tail)."""
        return self.primary.checkpoint(
            truncate_wal=truncate_wal, timeout=timeout
        )

    # ------------------------------------------------------------------
    # Read path (routed)
    # ------------------------------------------------------------------

    def query(self, s, t):
        """Answer (sd, spc) from whichever target the policy picks."""
        return self.router.query(s, t)

    def query_tagged(self, s, t):
        """Routed answer plus its consistency tag: (answer, seq, target)."""
        return self.router.query_tagged(s, t)

    def query_many(self, pairs):
        """Answer a batch of pairs against one routed snapshot."""
        return self.router.query_many(pairs)

    def session(self):
        """A sticky :class:`ClusterSession` (read-your-writes)."""
        return ClusterSession(self)

    def set_metrics(self, registry, tracer=None):
        """Install (or clear, with ``None``) telemetry across the fleet:
        the primary's serve instruments + writer spans, and the router's
        lease/breaker accounting (see :meth:`ClusterRouter.set_metrics`)."""
        self.primary.set_metrics(registry, tracer=tracer)
        self.router.set_metrics(registry, tracer=tracer)

    # ------------------------------------------------------------------
    # Fleet operations
    # ------------------------------------------------------------------

    @property
    def replicas(self):
        """Mapping name -> :class:`Replica` (live view, do not mutate)."""
        return self._replicas

    @property
    def config(self):
        """The cluster's :class:`ClusterConfig` (frozen)."""
        return self._config

    @property
    def state_dir(self):
        """The primary's durability directory (= the replication stream)."""
        return self._state_dir

    def sync(self, timeout=30.0):
        """Flush the primary, then block until every healthy replica has
        replayed up to the primary's applied seq.  Returns that seq.

        Raises :class:`ClusterError` when a replica cannot catch up in
        time (or died trying) — a lagging fleet is an operational fact
        the caller must see, not average away.
        """
        self.primary.flush(timeout=timeout)
        target = self.primary.applied_seq
        for name, replica in self._replicas.items():
            if not replica.healthy:
                continue
            if not replica.catch_up(target, timeout=timeout):
                raise ClusterError(
                    f"replica {name!r} is stuck at seq "
                    f"{replica.applied_seq}, primary at {target}"
                )
        return target

    def kill_replica(self, name):
        """Hard-stop one follower mid-stream (fault injection).

        The dead replica stays registered (and unhealthy, so the router
        skips it) until :meth:`restart_replica` replaces it.
        """
        self._replica(name).kill()

    def restart_replica(self, name):
        """Crash-recover a follower: bootstrap a fresh replica under the
        same name from the *current* checkpoint + WAL tail and swap it
        into the router.  Returns the new :class:`Replica`.
        """
        old = self._replica(name)
        old.kill()
        replica = Replica(
            self._state_dir,
            name=name,
            backend=old.backend_override,
            poll_interval=self._config.poll_interval,
            stall_budget=self._config.stall_budget,
        )
        replica.set_publish_listener(self.router.notify_event)
        self._replicas[name] = replica
        self.router.set_replica(name, replica)
        return replica

    def check_invariants(self):
        """Validate label invariants on the primary engine and every
        healthy replica engine."""
        self.primary.engine.check_invariants()
        for replica in self._replicas.values():
            if replica.healthy:
                replica.check_invariants()
        return True

    def stats(self):
        """One dict tying together primary, replica and router counters."""
        return {
            "primary": self.primary.stats(),
            "replicas": {
                name: r.stats() for name, r in self._replicas.items()
            },
            "router": self.router.stats(),
        }

    def close(self, timeout=30.0):
        """Stop every replica and the primary.  Idempotent.

        Replica applier failures surface as :class:`ClusterError` after
        everything has been torn down — a dead replica must not leave the
        primary's writer thread running.
        """
        if self._closed:
            return
        self._closed = True
        failures = self._teardown(timeout=timeout)
        if failures:
            raise ClusterError(
                f"cluster shutdown found {len(failures)} failed component(s): "
                + "; ".join(failures)
            )

    def _teardown(self, timeout=30.0):
        failures = []
        for name, replica in self._replicas.items():
            try:
                replica.close()
            except ClusterError as exc:
                failures.append(str(exc))
        try:
            self.primary.close(timeout=timeout)
        except Exception as exc:  # noqa: BLE001 — reported, not masked
            failures.append(f"primary: {exc!r}")
        return failures

    def _replica(self, name):
        try:
            return self._replicas[name]
        except KeyError:
            raise ClusterError(
                f"no replica named {name!r}; have {sorted(self._replicas)}"
            ) from None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            f"SPCCluster(replicas={sorted(self._replicas)}, "
            f"policy={self._config.policy!r}, "
            f"primary_seq={self.primary.applied_seq})"
        )


def cluster(graph_or_engine, state_dir, config=None, serve_config=None,
            engine_config=None, overwrite=False, **overrides):
    """Open an :class:`SPCCluster` over a graph or an existing engine.

    Convenience entry point mirroring :func:`repro.serve.serve`:
    ``repro.cluster.cluster(graph, dir)`` builds the engine (auto-selected
    backend, ``engine_config`` forwarded), wraps it in a durable primary
    in ``state_dir``, and boots the replica fleet; keyword overrides patch
    individual :class:`ClusterConfig` fields.
    """
    if isinstance(graph_or_engine, SPCEngine):
        engine = graph_or_engine
    else:
        engine = SPCEngine(graph_or_engine, config=engine_config)
    return SPCCluster(
        engine, state_dir, config=config, serve_config=serve_config,
        overwrite=overwrite, **overrides
    )
