"""Fault-injection load harness for the replicated serving layer.

Drives mixed traffic against an :class:`~repro.cluster.SPCCluster` — N
reader threads issuing routed point and batch queries, one submitter
feeding the primary a cyclic update stream — while a fault controller
kills one replica mid-stream and later crash-recovers it from the current
checkpoint + WAL tail.  Like :mod:`repro.serve.loadgen`, the harness
checks *consistency*, never timing (CI's cluster-smoke job trips only on
violations):

* **staleness violations** — under ``bounded_staleness``, an answer
  tagged with a seq below ``primary_seq − Δ`` (primary seq sampled
  *before* routing, so the bound is conservative);
* **per-target snapshot regression** — one target handing a reader a
  lower seq than it already served that reader (publication per replica
  must be monotone; hopping between replicas may lower the seq, which is
  exactly what the staleness bound prices in);
* **malformed answers** — finite distance with no paths, or an infinite
  distance with a path count;
* **divergence** — a killed-and-restarted replica failing to converge
  back to the primary's seq, or any replica ending unhealthy;
* **the replay oracle** — after the run, every recorded
  ``(seq, pair, answer)`` from *any* target is checked against a
  progressive WAL replay at exactly that seq: the initial checkpoint
  payload is captured up front, then records are replayed batch by batch
  and each served answer must equal the reference index's.  An answer
  matching no replayable prefix of the log is a torn or diverged read,
  caught after the fact no matter which replica served it.

Wired into the benchmark CLI as ``repro-bench cluster`` (results land in
``bench_results/cluster.json``); importable via :func:`run_cluster_loadgen`.
"""

import os
import random
import shutil
import tempfile
import threading
import time

from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ClusterError
from repro.cluster.cluster import ClusterConfig, SPCCluster
from repro.serve.loadgen import (
    _check_answer,
    _next_pair,
    _percentile,
    make_pair_picker,
    make_workload,
)
from repro.serve.persist import engine_from_payload, load_checkpoint
from repro.serve.service import SNAPSHOT_FILENAME, WAL_FILENAME, ServeConfig
from repro.serve.wal import read_wal


def _audit_read(target, seq, floor, answered, bounded, delta,
                last_seq_by_target, served, problems):
    """Apply the full consistency audit to one routed read — point and
    batch reads share it, so the two router paths cannot silently get
    different coverage.

    ``answered`` is ``[((s, t), (d, c)), ...]``; every answer is recorded
    for the replay oracle, checked for malformed shapes (the same
    ``_check_answer`` the serve loadgen applies), and the target's seq is
    checked for staleness (``floor`` was sampled *before* routing, so the
    bound is conservative) and per-target monotonicity.
    """
    if bounded and seq < floor - delta:
        problems.append(
            f"staleness violation: {target} served seq {seq} with "
            f"primary at >= {floor}, delta {delta}"
        )
    last = last_seq_by_target.get(target)
    if last is not None and seq < last:
        problems.append(
            f"snapshot regressed on {target}: seq {seq} after {last}"
        )
    last_seq_by_target[target] = seq
    for (s, t), answer in answered:
        served.append((seq, s, t, answer))
        _check_answer(seq, s, t, answer, problems)


def _reader_loop(cluster, pairs, deadline, seed, delta, bounded, record,
                 picker=None):
    """Issue routed reads until the deadline, recording every answer with
    its claimed seq so the replay oracle can audit all of them."""
    rng = random.Random(seed)
    latencies = []
    served = []          # (seq, s, t, answer) — every answer served
    problems = []
    last_seq_by_target = {}
    reads = 0
    try:
        while time.time() < deadline:
            s, t = _next_pair(pairs, rng, picker)
            floor = cluster.primary.applied_seq
            start = time.perf_counter()
            answer, seq, target = cluster.query_tagged(s, t)
            latencies.append(time.perf_counter() - start)
            reads += 1
            _audit_read(target, seq, floor, [((s, t), answer)], bounded,
                        delta, last_seq_by_target, served, problems)
            if reads % 64 == 0:
                batch = [_next_pair(pairs, rng, picker) for _ in range(8)]
                floor = cluster.primary.applied_seq
                answers, bseq, btarget = cluster.router.query_many_tagged(
                    batch
                )
                reads += len(batch)
                _audit_read(btarget, bseq, floor, list(zip(batch, answers)),
                            bounded, delta, last_seq_by_target, served,
                            problems)
    except Exception as exc:  # noqa: BLE001 — a dead reader fails the run
        problems.append(f"reader thread crashed: {exc!r}")
    record["reads"] = reads
    record["latencies"] = latencies
    record["served"] = served
    record["problems"] = problems


def _submitter_loop(cluster, cycle, deadline, batch_size, pause, record):
    submitted = 0
    i = 0
    record["problems"] = problems = []
    try:
        while cycle and time.time() < deadline:
            chunk = cycle[i:i + batch_size]
            if not chunk:
                i = 0
                continue
            cluster.submit_many(chunk)
            submitted += len(chunk)
            i = (i + len(chunk)) % len(cycle)
            if pause:
                time.sleep(pause)
    except Exception as exc:  # noqa: BLE001 — surfaced as a run failure
        problems.append(f"submitter thread crashed: {exc!r}")
    record["submitted"] = submitted


def _fault_controller(cluster, deadline, duration, record):
    """Kill replica-0 a third of the way in, crash-recover it at two
    thirds, and measure how long the restart takes to converge."""
    problems = []
    events = {}
    try:
        time.sleep(max(0.0, duration * 0.3))
        if time.time() >= deadline:
            record.update(events=events, problems=problems)
            return
        cluster.kill_replica("replica-0")
        events["killed_at_seq"] = cluster.primary.applied_seq
        time.sleep(max(0.0, duration * 0.3))
        # A mid-run durable checkpoint (no truncation: the replay oracle
        # needs the full log) makes the restart a true checkpoint + tail
        # recovery rather than a replay-everything one.
        cluster.checkpoint()
        target_seq = cluster.primary.applied_seq
        events["restarted_at_seq"] = target_seq
        start = time.perf_counter()
        replica = cluster.restart_replica("replica-0")
        if replica.catch_up(target_seq, timeout=30.0):
            events["catch_up_ms"] = round(
                (time.perf_counter() - start) * 1e3, 3
            )
            events["converged"] = True
        else:
            events["converged"] = False
            problems.append(
                f"restarted replica stuck at seq {replica.applied_seq}, "
                f"needed {target_seq}"
            )
    except Exception as exc:  # noqa: BLE001 — a failed injection is a failure
        problems.append(f"fault controller crashed: {exc!r}")
    record["events"] = events
    record["problems"] = problems


def _verify_against_replay(state_dir, initial_payload, served, problems,
                           backend):
    """The replay oracle: every served (seq, pair, answer) must equal the
    reference engine's answer after replaying exactly ``seq`` batches.

    Mismatches are classified and filed through the shared audit
    comparator (:func:`repro.audit.classify_divergence`) — the same
    vocabulary the live :class:`~repro.audit.ShadowAuditor` uses — and
    returned as a :class:`~repro.audit.DivergenceReport` so the caller
    can raise :class:`~repro.exceptions.AuditDivergenceError` with the
    offending WAL seq attached.
    """
    from repro.audit.comparator import (
        Divergence,
        DivergenceReport,
        classify_divergence,
    )

    report = DivergenceReport()

    def audit(seq, queries, reference):
        for s, t, answer in queries:
            expected = reference.index.query(s, t)
            severity = classify_divergence(expected, answer)
            if severity is not None:
                divergence = Divergence(
                    query=(s, t), seq=seq, expected=expected, got=answer,
                    backend=backend, epoch=-1, severity=severity,
                )
                report.record(divergence)
                problems.append(
                    f"replay oracle: {divergence.describe()}"
                )

    by_seq = {}
    for seq, s, t, answer in served:
        by_seq.setdefault(seq, []).append((s, t, answer))
    reference = engine_from_payload(initial_payload)
    base_seq = initial_payload.get("applied_seq", 0)
    replayed = {base_seq}
    audit(base_seq, by_seq.get(base_seq, []), reference)
    wal_path = os.path.join(state_dir, WAL_FILENAME)
    for seq, updates in read_wal(wal_path):
        reference.apply_stream(updates)
        replayed.add(seq)
        audit(seq, by_seq.get(seq, []), reference)
    unreplayable = sorted(set(by_seq) - replayed)
    if unreplayable:
        problems.append(
            f"answers claimed seqs with no WAL prefix: {unreplayable[:5]}"
        )
    return report


def run_cluster_loadgen(backend="core", replicas=2, readers=4, duration=1.2,
                        n=240, m=720, churn=30, batch_size=6, pause=0.001,
                        seed=0, policy="bounded_staleness",
                        staleness_delta=16, publish_every=8,
                        max_staleness=0.01, inject_fault=True,
                        source_picker=None, picker_kwargs=None,
                        state_dir=None, telemetry=None, strict=True):
    """Run one replicated, fault-injected load; returns a report dict.

    With ``strict`` (the default) any observed inconsistency — staleness
    violation, per-target regression, divergence, a replay-oracle
    mismatch, or a crashed thread — raises
    :class:`~repro.exceptions.ClusterError` listing every problem.
    Timing numbers are recorded, never judged.  With ``telemetry`` set
    to a directory, the fleet is instrumented end to end
    (:meth:`~repro.cluster.SPCCluster.set_metrics`) and its registry is
    written there as a ``cluster-<backend>.prom``/``.json`` pair.
    """
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=churn)
    vertices = sorted(graph.vertices())
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    own_dir = state_dir is None
    state_dir = state_dir or tempfile.mkdtemp(prefix="repro-cluster-")
    serve_config = ServeConfig(
        publish_every=publish_every,
        max_staleness=max_staleness,
        queue_capacity=4096,
        durability_dir=state_dir,
    )
    cluster_config = ClusterConfig(
        replicas=replicas,
        policy=policy,
        staleness_delta=staleness_delta,
    )
    cluster = None
    try:
        cluster = SPCCluster(
            engine, state_dir, config=cluster_config,
            serve_config=serve_config, overwrite=True,
        )
        # Snapshot the initial state *now*: mid-run checkpoints overwrite
        # snapshot.json, and the replay oracle must start from seq 0.
        initial_payload = load_checkpoint(
            os.path.join(state_dir, SNAPSHOT_FILENAME)
        )
        registry = tracer = None
        if telemetry is not None:
            from repro.obs import MetricsRegistry, Tracer

            registry = MetricsRegistry()
            tracer = Tracer()
            cluster.set_metrics(registry, tracer=tracer)
            engine.set_metrics(registry)
    except BaseException:
        # A half-booted fleet must not leak its writer/applier threads,
        # and a dir this function created must not leak onto disk.
        if cluster is not None:
            try:
                cluster.close()
            except ClusterError:
                pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise

    deadline = time.time() + duration
    bounded = policy == "bounded_staleness"
    reader_records = [{} for _ in range(readers)]
    threads = [
        threading.Thread(
            target=_reader_loop,
            args=(cluster, pairs, deadline, seed + 20 + i, staleness_delta,
                  bounded, reader_records[i],
                  make_pair_picker(source_picker, vertices, seed + 20 + i,
                                   picker_kwargs)),
            name=f"cluster-reader-{i}",
        )
        for i in range(readers)
    ]
    submit_record = {}
    threads.append(threading.Thread(
        target=_submitter_loop,
        args=(cluster, cycle, deadline, batch_size, pause, submit_record),
        name="cluster-submitter",
    ))
    fault_record = {"events": {}, "problems": []}
    if inject_fault:
        threads.append(threading.Thread(
            target=_fault_controller,
            args=(cluster, deadline, duration, fault_record),
            name="cluster-fault-controller",
        ))

    start = time.time()
    problems = []
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final_seq = cluster.sync(timeout=30.0)
        elapsed = time.time() - start
        stats = cluster.stats()
        cluster.check_invariants()
        if registry is not None:
            from repro.obs.export import write_files

            telemetry_paths = write_files(
                registry, telemetry, tracer=tracer,
                stem=f"cluster-{backend}",
            )
    except BaseException:
        try:
            cluster.close()
        except ClusterError:
            pass
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
        raise
    for name, replica in cluster.replicas.items():
        if not replica.healthy:
            problems.append(
                f"replica {name} ended unhealthy: {replica.fatal!r}"
            )
        elif replica.applied_seq != final_seq:
            problems.append(
                f"replica {name} diverged: seq {replica.applied_seq} != "
                f"primary {final_seq}"
            )
    try:
        cluster.close()
    except ClusterError as exc:
        problems.append(f"shutdown failure: {exc}")

    for rec in reader_records:
        problems.extend(rec.get("problems", []))
    problems.extend(submit_record.get("problems", []))
    problems.extend(fault_record.get("problems", []))
    served = [
        item for rec in reader_records for item in rec.get("served", [])
    ]
    try:
        replay_report = _verify_against_replay(
            state_dir, initial_payload, served, problems, backend
        )
    finally:
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)

    latencies = sorted(
        lat for rec in reader_records for lat in rec.get("latencies", [])
    )
    reads = sum(rec.get("reads", 0) for rec in reader_records)
    primary_stats = stats["primary"]
    if primary_stats["errors"]:
        problems.append(
            f"primary rejected {primary_stats['errors']} update(s); the "
            f"cyclic stream is valid by construction"
        )
    report = {
        "backend": backend,
        "replicas": replicas,
        "readers": readers,
        "policy": policy,
        "staleness_delta": staleness_delta,
        "duration_s": round(elapsed, 3),
        "graph": {"n": n, "m": m},
        "reads": reads,
        "read_qps": round(reads / elapsed) if elapsed else 0,
        "read_latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 4),
            "p99": round(_percentile(latencies, 99) * 1e3, 4),
        },
        "answers_audited": len(served),
        "updates_submitted": submit_record.get("submitted", 0),
        "updates_applied": primary_stats["applied_updates"],
        "applied_batches": primary_stats["applied_batches"],
        "telemetry": list(telemetry_paths) if registry is not None else None,
        "routed": stats["router"]["routed"],
        "primary_reads": stats["router"]["primary_reads"],
        "router_fallbacks": stats["router"]["fallbacks"],
        "router_waits": stats["router"]["waits"],
        "replica_stats": stats["replicas"],
        "fault_injection": fault_record["events"],
        "consistency_problems": problems,
    }
    if strict and problems:
        preview = "; ".join(str(p) for p in problems[:5])
        message = (
            f"cluster loadgen observed {len(problems)} inconsistencies "
            f"({backend} backend): {preview}"
        )
        if replay_report.total:
            # Replay-oracle divergences carry their offending WAL seq;
            # surface them through the audit stack's typed error.
            from repro.exceptions import AuditDivergenceError

            first = replay_report.divergences[0]
            raise AuditDivergenceError(
                message, seq=first.seq,
                divergences=replay_report.divergences,
            )
        raise ClusterError(message)
    return report
