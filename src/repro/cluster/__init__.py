"""repro.cluster — WAL-replicated multi-replica serving behind a router.

Horizontal scale-out for the serving layer: one durable **primary**
(:class:`~repro.serve.SPCService`) owns the engine and the write-ahead
log; K **replicas** bootstrap from its checkpoint and tail the WAL as a
replication stream, each publishing its own immutable snapshots; a
**router** spreads reads across the fleet under round-robin,
least-loaded, or bounded-staleness policies, with sticky sessions for
read-your-writes::

    import repro
    from repro.cluster import SPCCluster

    engine = repro.open(graph)
    with SPCCluster(engine, "state/", replicas=2,
                    policy="bounded_staleness", staleness_delta=8) as c:
        session = c.session()
        session.submit(InsertEdge(0, 9)).ack()   # ack = applied + published
        session.query(0, 9)       # routed; never older than the ack
        c.kill_replica("replica-0")              # fault injection
        c.restart_replica("replica-0")           # checkpoint + WAL tail
        c.sync()                                 # whole fleet converged

See DESIGN.md §11 for the replication protocol, bootstrap state machine,
routing policies and failure model, and :mod:`repro.cluster.loadgen` /
``repro-bench cluster`` for the kill-and-catch-up consistency harness.
"""

from repro.cluster.cluster import ClusterConfig, SPCCluster, cluster
from repro.cluster.loadgen import run_cluster_loadgen
from repro.cluster.replica import Replica
from repro.cluster.router import POLICIES, ClusterRouter, RoutedRead
from repro.cluster.session import ClusterSession, WriteTicket

__all__ = [
    "SPCCluster",
    "ClusterConfig",
    "cluster",
    "Replica",
    "ClusterRouter",
    "RoutedRead",
    "POLICIES",
    "ClusterSession",
    "WriteTicket",
    "run_cluster_loadgen",
]
