"""Baselines the paper compares against: online BFS/BiBFS query oracles and
the rebuild-from-scratch dynamic oracle."""

from repro.baselines.bfs_counting import BFSCountingOracle
from repro.baselines.bibfs_counting import BiBFSCountingOracle
from repro.baselines.reconstruction import ReconstructionOracle

__all__ = [
    "BFSCountingOracle",
    "BiBFSCountingOracle",
    "ReconstructionOracle",
]
