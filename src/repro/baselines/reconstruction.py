"""Reconstruction baseline: rebuild the SPC-Index from scratch per update.

This is the "naive method" of §3 that IncSPC/DecSPC are measured against in
Table 4 and Figure 7: correct, simple, and slower by the full HP-SPC
indexing time on every single graph change.
"""

import time

from repro.core.builder import build_spc_index
from repro.core.stats import StreamStats, UpdateStats


class ReconstructionOracle:
    """A dynamic SPC oracle that reconstructs on every update."""

    name = "HP-SPC (rebuild)"

    def __init__(self, graph, strategy="degree"):
        self._graph = graph
        self._strategy = strategy
        self._index = build_spc_index(graph, strategy=strategy)
        self.history = StreamStats()

    @property
    def graph(self):
        """The underlying graph."""
        return self._graph

    @property
    def index(self):
        """The current (freshly rebuilt) index."""
        return self._index

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t))."""
        return self._index.query(s, t)

    def insert_edge(self, a, b):
        """Insert the edge, then rebuild everything."""
        self._graph.add_edge(a, b)
        return self._rebuild(UpdateStats(kind="insert", edge=(a, b)))

    def delete_edge(self, a, b):
        """Delete the edge, then rebuild everything."""
        self._graph.remove_edge(a, b)
        return self._rebuild(UpdateStats(kind="delete", edge=(a, b)))

    def insert_vertex(self, v, edges=()):
        """Add a vertex (and optional edges), then rebuild once."""
        self._graph.add_vertex(v)
        for u in edges:
            self._graph.add_edge(v, u)
        return self._rebuild(UpdateStats(kind="insert_vertex", edge=(v,)))

    def delete_vertex(self, v):
        """Remove a vertex with its edges, then rebuild once."""
        self._graph.remove_vertex(v)
        return self._rebuild(UpdateStats(kind="delete_vertex", edge=(v,)))

    def _rebuild(self, stats):
        start = time.perf_counter()
        self._index = build_spc_index(self._graph, strategy=self._strategy)
        stats.elapsed = time.perf_counter() - start
        self.history.record(stats)
        return stats
