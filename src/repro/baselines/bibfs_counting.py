"""Bidirectional BFS baseline — the query competitor of Figure 7(c)."""

from repro.traversal.bibfs import bibfs_counting


class BiBFSCountingOracle:
    """Answers SPC queries with a bidirectional BFS per query."""

    name = "BiBFS"

    def __init__(self, graph):
        self._graph = graph

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)) by bidirectional BFS."""
        return bibfs_counting(self._graph, s, t)
