"""Online BFS counting baseline — the textbook algorithm from §1.

A thin, stable-API wrapper over :mod:`repro.traversal.bfs` so the benchmark
harness can treat all query baselines uniformly: every baseline exposes
``query(s, t) -> (sd, spc)``.
"""

from repro.traversal.bfs import bfs_counting_pair


class BFSCountingOracle:
    """Answers SPC queries by running a fresh BFS per query."""

    name = "BFS"

    def __init__(self, graph):
        self._graph = graph

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)) by level-synchronized BFS."""
        return bfs_counting_pair(self._graph, s, t)
