"""SPCService: snapshot-isolated concurrent serving over one SPCEngine.

The engine itself is single-threaded by design; this module is the
reader/writer split the ROADMAP calls for.  One writer thread owns the
engine exclusively: it drains submitted updates from a queue, applies each
drained batch net-effect (reusing the engine's coalescing and the
backend's batch hooks, so e.g. SD delete storms rebuild once per batch),
appends the applied updates to the write-ahead log, and — under a publish
policy — copies the index into a fresh immutable
:class:`~repro.serve.snapshot.SnapshotView` and publishes it with a single
attribute store.  Any number of reader threads answer queries against the
current snapshot with no locks: the GIL makes the snapshot-pointer read
atomic, and a published snapshot is never mutated.

Publish policy (:class:`ServeConfig`): a new snapshot is published once
``publish_every`` updates have been applied since the last one, or once
the oldest unpublished update is ``max_staleness`` seconds old, whichever
comes first.  Readers therefore see answers at most ``max_staleness``
behind the applied stream — the freshness/throughput dial that PSPC-style
shared serving and the dynamic road-network literature both expose.

Durability: with ``durability_dir`` set, the service keeps a checkpoint
file (``snapshot.json``) plus a WAL (``wal.jsonl``) in that directory;
:func:`restore` warm-restarts by loading the checkpoint and replaying the
WAL tail — no index rebuild, identical answers, for every backend family.
"""

import dataclasses
import os
import queue
import threading
import time
from dataclasses import dataclass

from repro.core.batch import coalesce_if_edge_batch
from repro.exceptions import CheckpointMismatchError, ServeError
from repro.serve.persist import (
    engine_from_payload,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.snapshot import SnapshotView
from repro.serve.wal import WriteAheadLog, is_loggable, read_wal

#: filenames inside a durability directory.
SNAPSHOT_FILENAME = "snapshot.json"
WAL_FILENAME = "wal.jsonl"
#: the label-delta journal (written only under ServeConfig.label_journal) —
#: the replication stream hub-partitioned shards tail (repro.shard).
JOURNAL_FILENAME = "labels.jsonl"


@dataclass(frozen=True)
class ServeConfig:
    """All tunables of an :class:`SPCService`.

    Parameters
    ----------
    publish_every:
        Publish a fresh snapshot once this many updates have been applied
        since the last publication (the every-k half of the policy).
    max_staleness:
        Publish once the oldest applied-but-unpublished update is this
        many seconds old (the freshness half).  Bounds how far behind the
        applied stream readers can observe.
    drain_max:
        Upper bound on updates drained into one applied batch — caps both
        coalescing latency and the size of a WAL record.
    queue_capacity:
        Bound on queued *submissions* (a ``submit`` counts one slot, a
        whole ``submit_many`` batch also counts one — the batch is kept
        whole so its churn coalesces deterministically); ``0`` means
        unbounded.  A full queue makes ``submit`` block (backpressure),
        never drop, so the bound throttles submitters that issue many
        small submissions, not the size of individual batches.
    durability_dir:
        Directory for the checkpoint + WAL pair; ``None`` disables
        persistence entirely.
    wal_fsync:
        fsync the WAL after every appended batch.  Off by default: the
        load generator measures serving throughput, and per-batch fsync
        is a durability experiment, not a serving one.
    auto_checkpoint_every_k_batches:
        Automatic WAL compaction, count half: after this many applied
        batches since the last durable checkpoint, the writer thread
        writes a fresh checkpoint and truncates the WAL it subsumed
        (``checkpoint(truncate_wal=True)`` semantics, inline on the
        writer).  ``0`` disables; requires a ``durability_dir``.  Bounds
        restore time for long-running services; replicas tailing the WAL
        survive the truncation by re-bootstrapping from the new
        checkpoint (see :class:`~repro.serve.wal.WalTailer`).
    wal_max_bytes:
        Automatic WAL compaction, size half: compact as above once the
        WAL exceeds this many bytes.  ``0`` disables; requires a
        ``durability_dir``.  Either trigger alone suffices.
    label_journal:
        Additionally journal per-batch *label deltas* to ``labels.jsonl``
        alongside the WAL: after each applied batch the writer records the
        post-batch label state of every vertex whose labels changed (via
        the index's dirty-vertex sink), or a full-dump reset record when
        the index object was replaced (a rebuild).  Hub-partitioned shards
        (:mod:`repro.shard`) tail this journal and materialize only their
        hub-range slice — the paper's maintenance algorithms need the full
        index for their pruning probes, so slices are replicated as
        materialized views instead of maintained locally (DESIGN.md §13).
        Requires a ``durability_dir``; compaction truncates the journal in
        lockstep with the WAL.
    """

    publish_every: int = 32
    max_staleness: float = 0.05
    drain_max: int = 256
    queue_capacity: int = 0
    durability_dir: str = None
    wal_fsync: bool = False
    auto_checkpoint_every_k_batches: int = 0
    wal_max_bytes: int = 0
    label_journal: bool = False

    def __post_init__(self):
        if self.publish_every < 1:
            raise ServeError(
                f"publish_every must be >= 1, got {self.publish_every!r}"
            )
        if self.max_staleness <= 0:
            raise ServeError(
                f"max_staleness must be > 0 seconds, got {self.max_staleness!r}"
            )
        if self.drain_max < 1:
            raise ServeError(f"drain_max must be >= 1, got {self.drain_max!r}")
        if self.queue_capacity < 0:
            raise ServeError(
                f"queue_capacity must be >= 0 (0 = unbounded), "
                f"got {self.queue_capacity!r}"
            )
        if self.auto_checkpoint_every_k_batches < 0:
            raise ServeError(
                f"auto_checkpoint_every_k_batches must be >= 0 (0 = off), "
                f"got {self.auto_checkpoint_every_k_batches!r}"
            )
        if self.wal_max_bytes < 0:
            raise ServeError(
                f"wal_max_bytes must be >= 0 (0 = off), "
                f"got {self.wal_max_bytes!r}"
            )
        # Note: the compaction knobs also require a durability_dir, but
        # that pairing is checked by SPCService, not here — wrappers like
        # SPCCluster inject the directory into a caller-supplied config
        # after construction.

    def replace(self, **changes):
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


class _Barrier:
    """Control token: set ``event`` once everything before it is applied
    and published (``error`` carries the reason when it wasn't)."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error = None


class _Checkpoint:
    """Control token: write a checkpoint at the writer's current seq."""

    __slots__ = ("path", "truncate_wal", "event", "error")

    def __init__(self, path, truncate_wal):
        self.path = path
        self.truncate_wal = truncate_wal
        self.event = threading.Event()
        self.error = None


_STOP = object()


class _ServeObs:
    """Pre-created instruments for one service (install via
    :meth:`SPCService.set_metrics`).

    Everything hot-path is resolved to an attribute here at install
    time, so an instrumented read costs attribute loads, perf_counter
    stamps and histogram observations — no registry lookups.  Durations
    are measured by the instrumented site and *passed in* (the
    registry's no-clock-reads rule).
    """

    __slots__ = ("tracer", "reads", "read_pairs", "read_latency",
                 "stage_pin", "stage_probe", "stage_tap",
                 "writer_batches", "writer_updates", "wal_bytes",
                 "stage_apply", "stage_wal", "stage_journal",
                 "stage_publish", "publishes")

    def __init__(self, registry, tracer):
        self.tracer = tracer
        self.reads = registry.counter("repro_serve_reads")
        self.read_pairs = registry.counter("repro_serve_read_pairs")
        self.read_latency = registry.histogram(
            "repro_serve_read_latency_seconds")
        stage = registry.histogram
        self.stage_pin = stage("repro_serve_stage_seconds",
                               stage="snapshot_pin")
        self.stage_probe = stage("repro_serve_stage_seconds", stage="probe")
        self.stage_tap = stage("repro_serve_stage_seconds", stage="tap")
        self.writer_batches = registry.counter("repro_serve_writer_batches")
        self.writer_updates = registry.counter("repro_serve_writer_updates")
        self.wal_bytes = registry.counter("repro_serve_wal_appended_bytes")
        self.stage_apply = stage("repro_serve_writer_stage_seconds",
                                 stage="apply")
        self.stage_wal = stage("repro_serve_writer_stage_seconds",
                               stage="wal_append")
        self.stage_journal = stage("repro_serve_writer_stage_seconds",
                                   stage="journal")
        self.stage_publish = stage("repro_serve_writer_stage_seconds",
                                   stage="publish")
        self.publishes = registry.counter("repro_serve_publishes")

    def read(self, pairs, pin_s, probe_s, tap_s, total_s, trace):
        """File one read's stage timings (and its trace, if sampled)."""
        self.reads.inc()
        self.read_pairs.inc(pairs)
        self.read_latency.observe(total_s)
        self.stage_pin.observe(pin_s)
        self.stage_probe.observe(probe_s)
        self.stage_tap.observe(tap_s)
        if trace is not None:
            trace.add("snapshot_pin", pin_s)
            trace.add("probe", probe_s, meta={"pairs": pairs})
            trace.add("tap", tap_s)
            trace.finish(total_s)

    def writer_batch(self, applied, apply_s, wal_s, journal_s, appended):
        """File one applied batch's writer-side stage timings + spans."""
        self.writer_batches.inc()
        self.writer_updates.inc(applied)
        self.stage_apply.observe(apply_s)
        self.stage_wal.observe(wal_s)
        self.stage_journal.observe(journal_s)
        if appended:
            self.wal_bytes.inc(appended)
        tracer = self.tracer
        if tracer is not None:
            trace = tracer.maybe_begin("writer_batch",
                                       meta={"applied": applied})
            if trace is not None:
                trace.add("apply", apply_s)
                trace.add("wal_append", wal_s)
                trace.add("journal", journal_s)
                trace.finish(apply_s + wal_s + journal_s)

    def publish(self, publish_s):
        """File one snapshot publication (writer thread)."""
        self.publishes.inc()
        self.stage_publish.observe(publish_s)
        tracer = self.tracer
        if tracer is not None:
            trace = tracer.maybe_begin("writer_publish")
            if trace is not None:
                trace.add("publish", publish_s)
                trace.finish(publish_s)


class SPCService:
    """A concurrent, durable serving layer over one :class:`SPCEngine`.

    Example
    -------
    >>> import repro
    >>> from repro.serve import SPCService
    >>> engine = repro.open(repro.Graph.from_edges([(0, 1), (1, 2)]))
    >>> with SPCService(engine) as service:
    ...     service.query(0, 2)
    ...     from repro.workloads import InsertEdge
    ...     service.submit(InsertEdge(0, 2))
    ...     _ = service.flush()
    ...     service.query(0, 2)
    (2, 1)
    (1, 1)

    The engine must not be touched by the caller while the service owns
    it: every mutation goes through :meth:`submit`, every read through
    :meth:`query` / :meth:`query_many` / :meth:`snapshot`.
    """

    def __init__(self, engine, config=None, overwrite=False,
                 _resume_seq=None, **overrides):
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        if config.durability_dir is None and (
            config.auto_checkpoint_every_k_batches or config.wal_max_bytes
        ):
            raise ServeError(
                "auto_checkpoint_every_k_batches / wal_max_bytes compact "
                "the WAL, which requires a durability_dir"
            )
        if config.label_journal and config.durability_dir is None:
            raise ServeError(
                "label_journal writes labels.jsonl next to the WAL, "
                "which requires a durability_dir"
            )
        self._engine = engine
        self._config = config
        self._queue = queue.Queue(maxsize=config.queue_capacity)
        self._answer_tap = None
        self._publish_listener = None
        self._disk_fault = None
        self._obs = None
        self._closed = False
        self._fatal = None
        self._inflight = None  # dequeued-but-unhandled control token
        #: (update, exception) pairs for updates the writer rejected;
        #: the service keeps serving past individual bad updates.
        self.errors = []

        self._seq = 0 if _resume_seq is None else _resume_seq
        self._applied_updates = 0
        self._cancelled_updates = 0
        self._published = 0
        self._dirty = 0
        self._dirty_since = None
        # Auto-compaction bookkeeping: the seq of the last durable
        # checkpoint (fresh services write one at _seq below; a resumed
        # service's WAL tail was just replayed, so treating the resume
        # point as checkpointed only delays the first compaction by < k).
        self._last_checkpoint_seq = self._seq
        self._auto_compactions = 0
        self._auto_bytes_floor = 0  # raised after a failed compaction

        self._wal = None
        self._journal = None
        self._label_sink = set()
        self._journaled_index = None
        if config.durability_dir is not None:
            os.makedirs(config.durability_dir, exist_ok=True)
            snap_path = self._durable_snapshot_path()
            wal_path = os.path.join(config.durability_dir, WAL_FILENAME)
            if _resume_seq is None:
                if os.path.exists(snap_path) and not overwrite:
                    raise ServeError(
                        f"{snap_path} already holds a checkpoint; use "
                        f"repro.serve.restore({config.durability_dir!r}) to "
                        f"continue it, or pass overwrite=True to discard it"
                    )
                # Truncate the stale WAL *before* writing the seq-0
                # checkpoint: every crash window then leaves a consistent
                # pair (old checkpoint + old WAL, old checkpoint + empty
                # WAL, or new checkpoint + empty WAL) — never a fresh
                # checkpoint with a previous run's records to replay.
                self._wal = WriteAheadLog(
                    wal_path, fsync=config.wal_fsync, backend=engine.backend_name
                )
                self._wal.truncate()
                if config.label_journal:
                    self._journal = self._open_journal()
                    self._journal.truncate()
                save_checkpoint(snap_path, engine, applied_seq=0)
            else:
                self._wal = WriteAheadLog(
                    wal_path, fsync=config.wal_fsync, backend=engine.backend_name
                )
                if config.label_journal:
                    self._journal = self._open_journal()
                    # The WAL tail replayed during restore ran without a
                    # dirty sink (and a crash can lose the journal record
                    # of the last WAL batch), so the journal may be behind
                    # the engine.  A reset record at the resume seq
                    # re-anchors every shard on the restored state.
                    if self._seq:
                        self._journal_reset()
            if self._journal is not None:
                self._engine.backend.install_label_sink(self._label_sink)
                self._journaled_index = self._engine.backend.index

        self._snapshot = self._make_snapshot()
        self._published += 1
        self._thread = threading.Thread(
            target=self._writer_loop, name="spc-service-writer", daemon=True
        )
        self._alive = True
        self._thread.start()

    # ------------------------------------------------------------------
    # Read path (any thread, lock-free)
    # ------------------------------------------------------------------

    def snapshot(self):
        """The current :class:`SnapshotView` (pin it for a consistent batch)."""
        return self._snapshot

    def set_answer_tap(self, tap):
        """Install (or clear, with ``None``) the answer-tap hook.

        ``tap(answered, seq, target, epoch)`` is called after every
        :meth:`query` / :meth:`query_many` (and the distance/count
        convenience wrappers, which route through :meth:`query`) with
        ``answered = [((s, t), answer), ...]``, the snapshot's sequence
        number, the serving target's name (``"service"`` here; replica
        names under the cluster router) and the snapshot epoch.  This is
        the :class:`~repro.audit.AuditSampler` attachment point; the hook
        runs on the reader's thread, so it must be cheap and must never
        raise — a raising tap is the caller's bug, surfaced as the read
        failing.
        """
        self._answer_tap = tap

    def set_publish_listener(self, listener):
        """Install (or clear, with ``None``) a snapshot-publish hook.

        ``listener()`` is called on the writer thread immediately after
        every snapshot publication — the wakeup seam the resilient
        routers use to wake lease waiters on fresh data instead of
        polling.  Like the answer tap it must be cheap and must never
        raise (a raising listener kills the writer).
        """
        self._publish_listener = listener

    def set_metrics(self, registry, tracer=None):
        """Install (or clear, with ``None``) the telemetry seam.

        With a :class:`~repro.obs.MetricsRegistry` installed, every read
        records its stage timings (``snapshot_pin`` / ``probe`` / ``tap``)
        into shared histograms and every applied batch records its
        writer-side stages (``apply`` / ``wal_append`` / ``journal`` /
        ``publish``); with a :class:`~repro.obs.Tracer` too, sampled
        requests additionally retain a :class:`~repro.obs.QueryTrace`
        span tree.  The service's ``stats()`` dict is promoted into the
        registry as callback gauges at the same time, so the old accessor
        and the new exposition can never disagree.  Uninstrumented
        services pay one attribute check per read.
        """
        if registry is None:
            self._obs = None
            return
        self._obs = _ServeObs(registry, tracer)
        from repro.obs.bind import bind_service

        bind_service(registry, self)

    def set_disk_fault(self, fault):
        """Install (or clear, with ``None``) a disk-fault injection hook.

        ``fault(op, path)`` is consulted before every WAL/journal append
        (``op="append"``) and every checkpoint save (``op="checkpoint"``)
        and may raise ``OSError`` to simulate a failing disk — the chaos
        harness's ENOSPC seam.  Checkpoint faults surface through the
        normal checkpoint error paths (a failed ``checkpoint()`` call, an
        ``errors`` entry for auto-compaction) with the service still
        healthy; an append fault is fail-stop, raising *before* any bytes
        land so the log never holds a half-acknowledged record.
        """
        self._disk_fault = fault
        if self._wal is not None:
            self._wal.fault = fault
        if self._journal is not None:
            self._journal.fault = fault

    def query(self, s, t):
        """Answer (sd, spc) from the freshest published snapshot."""
        obs = self._obs
        if obs is None:
            snap = self._snapshot
            answer = snap.query(s, t)
            tap = self._answer_tap
            if tap is not None:
                tap([((s, t), answer)], snap.seq, "service", snap.epoch)
            return answer
        tracer = obs.tracer
        trace = tracer.maybe_begin("service_query") if tracer else None
        t0 = time.perf_counter()
        snap = self._snapshot
        t1 = time.perf_counter()
        answer = snap.query(s, t)
        t2 = time.perf_counter()
        tap = self._answer_tap
        if tap is not None:
            tap([((s, t), answer)], snap.seq, "service", snap.epoch)
        t3 = time.perf_counter()
        obs.read(1, t1 - t0, t2 - t1, t3 - t2, t3 - t0, trace)
        return answer

    def query_many(self, pairs):
        """Answer a batch of pairs against one single snapshot."""
        obs = self._obs
        if obs is None:
            snap = self._snapshot
            pairs = list(pairs)
            answers = snap.query_many(pairs)
            tap = self._answer_tap
            if tap is not None:
                tap(list(zip(pairs, answers)), snap.seq, "service",
                    snap.epoch)
            return answers
        tracer = obs.tracer
        trace = tracer.maybe_begin("service_query_many") if tracer else None
        t0 = time.perf_counter()
        snap = self._snapshot
        pairs = list(pairs)
        t1 = time.perf_counter()
        answers = snap.query_many(pairs)
        t2 = time.perf_counter()
        tap = self._answer_tap
        if tap is not None:
            tap(list(zip(pairs, answers)), snap.seq, "service", snap.epoch)
        t3 = time.perf_counter()
        obs.read(len(pairs), t1 - t0, t2 - t1, t3 - t2, t3 - t0, trace)
        return answers

    def distance(self, s, t):
        """sd(s, t) from the freshest published snapshot."""
        return self.query(s, t)[0]

    def count(self, s, t):
        """spc(s, t) from the freshest published snapshot."""
        return self.query(s, t)[1]

    # ------------------------------------------------------------------
    # Write path (any thread submits; one writer thread applies)
    # ------------------------------------------------------------------

    def submit(self, update):
        """Enqueue one workload update (InsertEdge / DeleteEdge / ...).

        Returns immediately (blocking only on queue backpressure); the
        writer thread applies it and a later snapshot reflects it.
        Raises :class:`~repro.exceptions.ServeError` if the writer has
        died — including when death races the enqueue, in which case the
        update may not have been applied.
        """
        self._check_writable()
        self._put_update(update)
        # The writer can stop between the check above and the put landing
        # (a fatal error, or a clean close() consuming its stop sentinel);
        # either way its drain may have missed this update, so a stopped
        # writer after the put must surface here, not as a silent drop.
        self._raise_if_stopped()

    def submit_many(self, updates):
        """Enqueue an iterable of updates, preserving order.

        The whole iterable is enqueued as one unit, so the writer drains
        it into a single net-effect batch: churn *within* a submit_many
        call always coalesces, regardless of drain timing.
        """
        self._check_writable()
        updates = list(updates)
        if updates:
            self._put_update(updates)
            self._raise_if_stopped()  # same enqueue/stop race as submit()

    def flush(self, timeout=30.0):
        """Block until everything submitted so far is applied *and*
        published; returns the resulting snapshot."""
        self._check_writable()
        barrier = _Barrier()
        deadline = time.monotonic() + timeout
        self._put_control(barrier, timeout)
        if not barrier.event.wait(max(0.0, deadline - time.monotonic())):
            raise ServeError(f"flush timed out after {timeout} s")
        self._raise_if_dead()
        if barrier.error is not None:
            # The barrier was released by shutdown, not by the writer
            # reaching it — submissions ahead of it were never applied.
            raise ServeError(f"flush failed: {barrier.error}") from barrier.error
        return self._snapshot

    def checkpoint(self, path=None, truncate_wal=False, timeout=30.0):
        """Write a checkpoint consistent with a single writer position.

        Runs on the writer thread (serialized with updates, so the file
        never captures a half-applied batch).  ``path`` defaults to the
        durability directory's snapshot file; ``truncate_wal=True``
        additionally empties the WAL, which the checkpoint just subsumed —
        allowed only when the checkpoint *is* the durability directory's
        snapshot file, since truncating on behalf of an external copy
        would leave the directory's own checkpoint unable to explain the
        missing records.  Returns the path written.
        """
        self._check_writable()
        if path is None:
            if self._config.durability_dir is None:
                raise ServeError(
                    "checkpoint needs a path (no durability_dir configured)"
                )
            path = self._durable_snapshot_path()
        if truncate_wal:
            if self._wal is None:
                raise ServeError("truncate_wal requires a durability_dir")
            durable = self._durable_snapshot_path()
            if os.path.realpath(path) != os.path.realpath(durable):
                raise ServeError(
                    f"truncate_wal is only valid when checkpointing to the "
                    f"durability directory's own snapshot ({durable}); an "
                    f"external checkpoint at {path} would orphan the "
                    f"truncated records"
                )
        token = _Checkpoint(path, truncate_wal)
        deadline = time.monotonic() + timeout
        self._put_control(token, timeout)
        if not token.event.wait(max(0.0, deadline - time.monotonic())):
            raise ServeError(f"checkpoint timed out after {timeout} s")
        self._raise_if_dead()
        if token.error is not None:
            raise ServeError(f"checkpoint failed: {token.error}") from token.error
        return path

    def close(self, timeout=30.0):
        """Stop the writer (after draining the queue) and release the WAL.

        Idempotent.  Raises :class:`~repro.exceptions.ServeError` if the
        writer thread died of an unexpected error at any point.
        """
        if self._closed:
            self._raise_if_dead()
            return
        deadline = time.monotonic() + timeout
        self._put_control(_STOP, timeout)
        self._thread.join(max(0.0, deadline - time.monotonic()))
        if self._thread.is_alive():
            # The writer is still applying: leave the WAL open underneath
            # it — closing it here would make the next append fail *after*
            # the engine mutated, silently diverging state from the log —
            # and leave _closed unset so a retry can join again instead of
            # reporting a clean shutdown that never happened.
            raise ServeError(f"writer thread failed to stop within {timeout} s")
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        if self._journal is not None:
            self._journal.close()
        self._raise_if_dead()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def engine(self):
        """The owned engine — do not touch it while the service is open."""
        return self._engine

    @property
    def config(self):
        """The service's :class:`ServeConfig` (frozen)."""
        return self._config

    @property
    def applied_seq(self):
        """Sequence number of the last applied (and WAL-logged) batch."""
        return self._seq

    def lag(self):
        """How many applied batches the published snapshot is behind."""
        return self._seq - self._snapshot.seq

    def staleness(self):
        """Seconds the oldest applied-but-unpublished update has waited
        (0.0 when the snapshot is current)."""
        since = self._dirty_since
        return 0.0 if since is None else time.monotonic() - since

    def stats(self):
        """A dict snapshot of the service counters (approximate under
        concurrency — stats are monitoring, not invariants)."""
        snap = self._snapshot
        return {
            "backend": snap.backend_name,
            "queue_depth": self._queue.qsize(),
            "applied_updates": self._applied_updates,
            "cancelled_updates": self._cancelled_updates,
            "applied_batches": self._seq,
            "snapshots_published": self._published,
            "snapshot_epoch": snap.epoch,
            "snapshot_seq": snap.seq,
            "lag_batches": self._seq - snap.seq,
            "errors": len(self.errors),
            "wal_bytes": self._wal.size if self._wal is not None else 0,
            "wal_compactions": self._auto_compactions,
            "closed": self._closed,
        }

    def __repr__(self):
        return (
            f"SPCService(backend={self._snapshot.backend_name!r}, "
            f"seq={self._seq}, snapshot_seq={self._snapshot.seq}, "
            f"published={self._published}, closed={self._closed})"
        )

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------

    def _writer_loop(self):
        try:
            while True:
                try:
                    item = self._queue.get(timeout=self._poll_timeout())
                except queue.Empty:
                    if self._dirty:
                        self._publish()
                    continue
                if not self._handle(item):
                    return
        except BaseException as exc:  # noqa: BLE001 — surfaced via ServeError
            self._fatal = exc
        finally:
            self._alive = False
            self._release_inflight()
            self._release_waiters()

    def _handle(self, item):
        """Process one queue item; returns False when the writer must stop.

        Everything the drain pulled off the queue before a control token
        has been applied by the time the token is handled, so handling it
        inline (rather than re-queuing it behind newer submissions, where
        a fast submitter could starve it) preserves FIFO semantics.
        """
        if item is _STOP:
            if self._dirty:
                self._publish()
            return False
        if isinstance(item, _Barrier):
            self._inflight = item
            try:
                if self._dirty:
                    self._publish()
            except BaseException as exc:
                item.error = exc  # flush must not report stale success
                raise
            finally:
                item.event.set()
                self._inflight = None
            return True
        if isinstance(item, _Checkpoint):
            self._inflight = item
            self._do_checkpoint(item)  # sets its event in a finally
            self._inflight = None
            return True
        control = self._apply_drained(item)
        self._maybe_publish()
        self._maybe_auto_checkpoint()
        if control is not None:
            return self._handle(control)
        return True

    def _poll_timeout(self):
        """How long the writer may sleep before a staleness deadline."""
        if self._dirty_since is None:
            return None
        deadline = self._dirty_since + self._config.max_staleness
        return max(0.0, deadline - time.monotonic())

    def _apply_drained(self, first):
        """Drain up to drain_max updates starting at ``first`` and apply
        them as one net-effect batch; returns a control token that ended
        the drain early (to be re-queued), or None."""
        batch = list(first) if isinstance(first, list) else [first]
        control = None
        while len(batch) < self._config.drain_max:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP or isinstance(item, (_Barrier, _Checkpoint)):
                control = item
                if item is not _STOP:
                    # Track the dequeued token: if applying this batch
                    # kills the writer before _handle(control) runs, the
                    # waiter must still be woken (see _release_inflight).
                    self._inflight = item
                break
            if isinstance(item, list):  # a submit_many unit, kept whole
                batch.extend(item)
            else:
                batch.append(item)

        engine = self._engine
        try:
            effective, cancelled = coalesce_if_edge_batch(
                engine.graph, batch, enabled=engine.config.coalesce_batches
            )
        except Exception:  # noqa: BLE001 — any ill-formed update (a
            # WorkloadError from SetWeight on an unweighted graph, a
            # TypeError from an unorderable endpoint) can crash coalescing.
            # Replay the batch verbatim so the per-update isolation below
            # records the bad one in `errors` and the good ones still
            # apply — a malformed submission must never kill the writer.
            effective, cancelled = batch, 0
        applied = []
        backend = engine.backend
        obs = self._obs
        t_start = time.perf_counter() if obs is not None else 0.0
        backend.begin_update_batch()
        try:
            for update in effective:
                if self._wal is not None and not is_loggable(update):
                    # An update the WAL cannot record must not be applied:
                    # restore would silently diverge from the live engine.
                    self.errors.append((update, ServeError(
                        f"update {update!r} is not WAL-serializable"
                    )))
                    continue
                try:
                    engine.apply(update)
                except Exception as exc:  # noqa: BLE001 — one bad update
                    # must not kill the writer; anything the engine raises
                    # (ReproError or a TypeError from a malformed object)
                    # becomes an errors entry and the service keeps serving.
                    self.errors.append((update, exc))
                else:
                    applied.append(update)
        finally:
            backend.end_update_batch()
        t_applied = time.perf_counter() if obs is not None else 0.0

        self._cancelled_updates += cancelled
        if applied:
            self._seq += 1
            appended = 0
            t_wal = t_applied
            if self._wal is not None:
                before = self._wal.size if obs is not None else 0
                self._wal.append(self._seq, applied)
                if obs is not None:
                    appended = self._wal.size - before
                    t_wal = time.perf_counter()
            t_journal = t_wal
            if self._journal is not None:
                self._journal_append()
                if obs is not None:
                    t_journal = time.perf_counter()
            self._applied_updates += len(applied)
            self._dirty += len(applied)
            if self._dirty_since is None:
                self._dirty_since = time.monotonic()
            if obs is not None:
                obs.writer_batch(len(applied), t_applied - t_start,
                                 t_wal - t_applied, t_journal - t_wal,
                                 appended)
        return control

    def _maybe_publish(self):
        if not self._dirty:
            return
        if (
            self._dirty >= self._config.publish_every
            or time.monotonic() - self._dirty_since >= self._config.max_staleness
        ):
            self._publish()

    def _publish(self):
        obs = self._obs
        t0 = time.perf_counter() if obs is not None else 0.0
        backend = self._engine.backend
        self._snapshot = self._make_snapshot(backend)
        self._published += 1
        self._dirty = 0
        self._dirty_since = None
        if obs is not None:
            obs.publish(time.perf_counter() - t0)
        listener = self._publish_listener
        if listener is not None:
            listener()

    def _make_snapshot(self, backend=None):
        backend = backend if backend is not None else self._engine.backend
        return SnapshotView(
            backend.snapshot_index(),
            backend.name,
            self._engine.epoch,
            self._seq,
            time.time(),
        )

    def _do_checkpoint(self, token):
        try:
            if self._disk_fault is not None:
                self._disk_fault("checkpoint", token.path)
            save_checkpoint(token.path, self._engine, applied_seq=self._seq)
            if token.truncate_wal and self._wal is not None:
                self._truncate_wal_with_marker()
            if self._config.durability_dir is not None and (
                os.path.realpath(token.path)
                == os.path.realpath(self._durable_snapshot_path())
            ):
                self._last_checkpoint_seq = self._seq
        except Exception as exc:  # noqa: BLE001 — handed back to the caller
            token.error = exc
        finally:
            token.event.set()

    def _maybe_auto_checkpoint(self):
        """Compact the WAL when the automatic policy says it is due.

        Runs inline on the writer thread right after a batch applied, so
        the checkpoint captures a consistent engine exactly like a manual
        ``checkpoint(truncate_wal=True)``.  Failure is recorded in
        ``errors`` and serving continues with the WAL intact — losing the
        compaction is recoverable, killing the writer is not; the
        bookkeeping still advances so one bad disk does not retry the
        checkpoint after every subsequent batch.
        """
        cfg = self._config
        if self._wal is None or not (
            cfg.auto_checkpoint_every_k_batches or cfg.wal_max_bytes
        ):
            return
        batches_due = (
            cfg.auto_checkpoint_every_k_batches
            and self._seq - self._last_checkpoint_seq
            >= cfg.auto_checkpoint_every_k_batches
        )
        bytes_due = cfg.wal_max_bytes and self._wal.size > max(
            cfg.wal_max_bytes, self._auto_bytes_floor
        )
        if not (batches_due or bytes_due):
            return
        try:
            if self._disk_fault is not None:
                self._disk_fault("checkpoint", self._durable_snapshot_path())
            save_checkpoint(
                self._durable_snapshot_path(), self._engine,
                applied_seq=self._seq,
            )
            self._truncate_wal_with_marker()
            self._auto_compactions += 1
            self._auto_bytes_floor = 0
        except Exception as exc:  # noqa: BLE001 — see docstring
            self.errors.append((None, ServeError(
                f"auto checkpoint at seq {self._seq} failed: {exc!r}"
            )))
            self._auto_bytes_floor = self._wal.size * 2
        finally:
            self._last_checkpoint_seq = self._seq

    def _open_journal(self):
        # Label ops are already JSON-safe op-tagged lists, so the journal
        # reuses the WAL writer with an identity codec — same framing,
        # torn-tail trimming and compaction-marker semantics.
        return WriteAheadLog(
            os.path.join(self._config.durability_dir, JOURNAL_FILENAME),
            fsync=self._config.wal_fsync,
            backend=self._engine.backend_name,
            encode=lambda op: op,
        )

    def _journal_append(self):
        """Journal the label deltas of the batch just applied (same seq).

        Rebuilds (engine rebuild policy, SD rebuild-on-delete) replace the
        index object — and may reshuffle hub ranks — so identity change
        forces a full-dump reset record and re-arms the sink on the new
        index.  Otherwise one ``lb`` op per dirty vertex carries its
        post-batch label state (``None`` = vertex dropped); replacement
        semantics make records idempotent and order-independent within a
        batch.  A batch whose updates moved no labels still journals a
        ``nop`` op: seq contiguity is what tailing shards key on, and an
        *empty* ops list is reserved for the compaction marker.
        """
        backend = self._engine.backend
        if backend.index is not self._journaled_index:
            self._label_sink.clear()
            self._journal_reset()
            return
        sink = self._label_sink
        ops = [["lb", v, backend.label_payload(v)] for v in sink]
        sink.clear()
        if not ops:
            ops = [["nop"]]
        self._journal.append(self._seq, ops)

    def _journal_reset(self):
        """Append a full-dump reset record at the current seq and re-arm
        dirty tracking on the (possibly replaced) live index."""
        backend = self._engine.backend
        dump = [
            [v, lp]
            for v, lp in backend.iter_label_payloads(backend.index_to_dict())
        ]
        self._journal.append(self._seq, [["reset", dump]])
        backend.install_label_sink(self._label_sink)
        self._journaled_index = backend.index

    def _truncate_wal_with_marker(self):
        """Truncate the WAL, then stamp its head with the truncation point.

        The empty-updates marker record (seq = the checkpoint's seq) keeps
        the log self-describing for replication: a tailer whose offset was
        already 0 cannot tell a truncated-to-empty log from a not-yet-
        written one, so a compaction while it lagged would go unnoticed
        until the next real append.  With the marker, the first record a
        lagging tailer reads names a sequence number it cannot reach
        contiguously — the gap that tells it to re-bootstrap from the
        fresh checkpoint.  Restore filters the marker out naturally
        (``seq <= applied_seq``), and replaying it is a no-op anyway.
        """
        self._wal.truncate()
        if self._seq:
            self._wal.append(self._seq, [])
        if self._journal is not None:
            # The journal compacts in lockstep: the fresh checkpoint is the
            # shards' re-bootstrap source, exactly as for WAL tailers.
            self._journal.truncate()
            if self._seq:
                self._journal.append(self._seq, [])

    def _durable_snapshot_path(self):
        return os.path.join(self._config.durability_dir, SNAPSHOT_FILENAME)

    def _put_update(self, item):
        """Enqueue an update, blocking on backpressure only while the
        writer is actually draining.

        A plain blocking put on a bounded queue would hang forever if the
        writer died while other submitters kept the queue full; polling
        lets the stop surface as a ServeError instead of a silent hang.
        """
        while True:
            try:
                self._queue.put(item, timeout=0.2)
                return
            except queue.Full:
                self._raise_if_stopped()

    def _put_control(self, item, timeout):
        """Enqueue a control token without blocking past ``timeout``.

        On a bounded queue a plain ``put`` could block forever (e.g. the
        writer died while submitters kept the queue full), so the caller's
        timeout must cover the enqueue as well as the wait.
        """
        try:
            self._queue.put(item, timeout=timeout)
        except queue.Full:
            self._raise_if_dead()
            raise ServeError(
                f"update queue still full after {timeout} s; "
                f"the writer is not draining"
            ) from None

    def _check_writable(self):
        self._raise_if_dead()
        if self._closed or not self._alive:
            raise ServeError("service is closed")

    def _raise_if_stopped(self):
        """Post-enqueue guard: the writer must still be draining."""
        self._raise_if_dead()
        if not self._alive:
            raise ServeError(
                "service stopped while the update was being submitted; "
                "it may not have been applied"
            )

    def _raise_if_dead(self):
        if self._fatal is not None:
            raise ServeError(
                f"writer thread died: {self._fatal!r}"
            ) from self._fatal

    def _release_inflight(self):
        """Wake the waiter whose token was dequeued but never handled.

        Covers the window between a control token leaving the queue (in
        the drain loop) and its handling — a writer death in between
        would otherwise leave flush()/checkpoint() blocked until their
        timeout, masking the real failure.
        """
        token = self._inflight
        self._inflight = None
        if token is None:
            return
        if token.error is None:
            token.error = self._fatal or ServeError("service stopped")
        token.event.set()

    def _release_waiters(self):
        """On writer exit, wake every queued barrier/checkpoint waiter.

        Updates still queued behind the stop sentinel (a submit that raced
        close, or anything pending when the writer died) are recorded in
        ``errors`` rather than vanishing silently.
        """
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, (_Barrier, _Checkpoint)):
                item.error = self._fatal or ServeError("service stopped")
                item.event.set()
            elif item is not _STOP:
                dropped = item if isinstance(item, list) else [item]
                self.errors.extend(
                    (u, ServeError("dropped: service stopped before apply"))
                    for u in dropped
                )


def serve(graph_or_engine, config=None, engine_config=None, **overrides):
    """Open an :class:`SPCService` over a graph or an existing engine.

    Convenience entry point: ``repro.serve.serve(graph)`` builds the
    engine (auto-selected backend, ``engine_config`` forwarded) and wraps
    it; keyword overrides patch individual :class:`ServeConfig` fields.
    """
    from repro.engine import SPCEngine

    if isinstance(graph_or_engine, SPCEngine):
        engine = graph_or_engine
    else:
        engine = SPCEngine(graph_or_engine, config=engine_config)
    return SPCService(engine, config=config, **overrides)


def restore(path, config=None, **overrides):
    """Warm-restart a service from a durability directory (or checkpoint).

    ``path`` is normally the ``durability_dir`` of a previous service: the
    checkpoint is loaded (index rehydrated, no rebuild), the WAL tail
    (records past the checkpoint's ``applied_seq``) is replayed through
    the engine, and the returned service continues appending to the same
    WAL.  ``path`` may also point at a bare checkpoint file written by
    :meth:`SPCService.checkpoint`, in which case there is no WAL to replay
    and the restored service is only durable if ``config`` says so.
    """
    if os.path.isdir(path):
        directory = path
        snap_path = os.path.join(directory, SNAPSHOT_FILENAME)
        wal_path = os.path.join(directory, WAL_FILENAME)
    else:
        directory = None
        snap_path = path
        wal_path = None

    payload = load_checkpoint(snap_path)
    engine = engine_from_payload(payload)
    last_seq = payload.get("applied_seq", 0)
    if wal_path is not None:
        records = read_wal(
            wal_path, after_seq=last_seq, expect_backend=engine.backend_name
        )
        try:
            replayed = engine.apply_logged_batches(records)
        except ServeError:
            raise  # corruption / family mismatch, already well-described
        except Exception as exc:  # noqa: BLE001 — an unstamped foreign log
            # surfaces as whatever the engine rejects it with (an
            # EngineError about weights, a KeyError on a missing vertex);
            # name the real problem instead of leaking the replay guts.
            raise CheckpointMismatchError(
                f"WAL at {wal_path} does not replay onto the checkpoint at "
                f"{snap_path} (backend {engine.backend_name!r}): {exc!r}; "
                f"the checkpoint and the log do not describe the same "
                f"service"
            ) from exc
        if replayed is not None:
            last_seq = replayed

    if config is None:
        config = ServeConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    if directory is not None and config.durability_dir is None:
        config = config.replace(durability_dir=directory)
    # Resume (append to the existing WAL) only when the service keeps
    # living in the directory that was just replayed; restoring a bare
    # checkpoint file into a *new* durability dir must take the fresh
    # path instead, so that dir gets a base checkpoint its WAL applies to.
    # Compare real paths, not spellings — "state/" and "state" are the
    # same directory and must resume, not trip the fresh-path guard.
    same_dir = (
        directory is not None
        and config.durability_dir is not None
        and os.path.realpath(config.durability_dir) == os.path.realpath(directory)
    )
    resume = last_seq if same_dir or (
        directory is None and config.durability_dir is None
    ) else None
    return SPCService(engine, config=config, _resume_seq=resume)
