"""repro.serve — snapshot-isolated concurrent serving with durability.

The production layer over :class:`~repro.engine.SPCEngine`: readers pin
immutable epoch-tagged snapshots and answer lock-free, one writer thread
drains an update queue and publishes fresh snapshots under an
every-k / max-staleness policy, and a checkpoint + write-ahead-log pair
makes the whole thing warm-restartable for every backend family::

    import repro
    from repro.serve import SPCService, ServeConfig
    from repro.workloads import InsertEdge

    engine = repro.open(graph)
    with SPCService(engine, durability_dir="state/") as service:
        service.submit(InsertEdge(0, 9))
        service.query(0, 9)            # lock-free, from the snapshot
        service.flush()                # wait for apply + publish
        service.checkpoint()           # durable snapshot + WAL position

    service = repro.serve.restore("state/")   # warm restart, no rebuild

See DESIGN.md §10 for the architecture and paper anchors, and
:mod:`repro.serve.loadgen` / ``repro-bench serve`` for the load-test
harness.
"""

from repro.serve.loadgen import make_workload, run_loadgen
from repro.serve.persist import (
    engine_from_payload,
    engine_to_payload,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.service import (
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    ServeConfig,
    SPCService,
    restore,
    serve,
)
from repro.serve.snapshot import SnapshotView
from repro.serve.wal import WalTailer, WriteAheadLog, last_wal_seq, read_wal

__all__ = [
    "WalTailer",
    "SPCService",
    "ServeConfig",
    "SnapshotView",
    "serve",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
    "engine_to_payload",
    "engine_from_payload",
    "WriteAheadLog",
    "read_wal",
    "last_wal_seq",
    "run_loadgen",
    "make_workload",
    "SNAPSHOT_FILENAME",
    "WAL_FILENAME",
]
