"""Multi-threaded load generator for the serving layer.

Drives mixed read/update traffic against an :class:`~repro.serve.SPCService`
— N reader threads issuing point and batch queries against pinned
snapshots, one submitter feeding a cyclic update stream (k fresh edge
insertions, then their deletions in reverse, so the stream is valid
forever and the graph orbits its initial state) — and reports throughput,
read-latency percentiles, and snapshot staleness.

Two kinds of failure are checked *while* generating load, and raise
:class:`~repro.exceptions.ServeError` (this is what the CI serve-smoke job
trips on — never on timing):

* **snapshot regression** — a reader observing a snapshot with a lower
  sequence number than one it already held (publication must be monotone);
* **torn reads** — the same pair queried twice on one pinned snapshot
  answering differently, or a batch answer disagreeing with its point
  answers, or a malformed answer (finite distance with zero count, or an
  infinite distance with a nonzero count).

After the run the engine's structural invariants are validated too
(``check_invariants``), so index corruption under concurrency cannot slip
through as a plausible-looking wrong answer.

Wired into the benchmark CLI as ``repro-bench serve`` (results land in
``bench_results/serve.json``); importable directly via
:func:`run_loadgen` for ad-hoc profiling.
"""

import random
import threading
import time

from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ServeError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.serve.service import ServeConfig, SPCService
from repro.workloads.updates import random_insertions

#: how a loadgen graph is synthesized per backend name.
_GRAPH_MAKERS = {
    "core": erdos_renyi,
    "sd": erdos_renyi,
    "directed": random_directed,
    "weighted": random_weighted,
}


def _percentile(sorted_values, q):
    """repro.bench.timing.percentile, imported lazily.

    The module-level import would be circular (``repro.bench.__init__``
    pulls in the runner, which registers :mod:`repro.bench.serve`, which
    imports this module); by call time the cycle has resolved.
    """
    from repro.bench.timing import percentile

    return percentile(sorted_values, q)


def make_workload(backend, n, m, seed=0, churn=40):
    """Build (graph, update_cycle, query_pairs) for one loadgen run.

    The update cycle inserts ``churn`` fresh edges then deletes them in
    reverse order — applying it end-to-end returns the graph to its
    initial state, so the submitter can loop it indefinitely and every
    prefix is a valid update stream.
    """
    try:
        maker = _GRAPH_MAKERS[backend]
    except KeyError:
        raise ServeError(
            f"loadgen knows no backend {backend!r}; "
            f"choose from {sorted(_GRAPH_MAKERS)}"
        ) from None
    graph = maker(n, m, seed=seed)
    insertions = random_insertions(graph, churn, seed=seed + 1)
    cycle = list(insertions) + [u.undo() for u in reversed(insertions)]
    rng = random.Random(seed + 2)
    vertices = sorted(graph.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(512)
    ]
    return graph, cycle, pairs


def make_pair_picker(source_picker, vertices, seed, picker_kwargs=None):
    """Resolve the shared :class:`~repro.replay.traffic.SourcePicker` seam.

    Every loadgen reader (serve, cluster, audit) routes its pair choice
    through this: ``None`` keeps the legacy uniform pairs-table draw
    (default behavior unchanged), a picker name ("uniform" / "zipf" /
    "hotset") builds a seeded picker over the workload's vertices so any
    harness can run skew-shaped traffic.  Imported lazily —
    :mod:`repro.replay` drives these harnesses, so the module-level
    import would be circular.
    """
    if source_picker is None:
        return None
    from repro.replay.traffic import make_source_picker

    return make_source_picker(
        source_picker, vertices, seed=seed, **(picker_kwargs or {})
    )


def _next_pair(pairs, rng, picker):
    """One (s, t) draw: the picker seam, or the legacy pairs table."""
    if picker is not None:
        return picker.pick_pair()
    return pairs[rng.randrange(len(pairs))]


def _check_answer(seq, s, t, answer, problems):
    """Flag a structurally impossible (distance, count) answer.

    Shared with the cluster harness (:mod:`repro.cluster.loadgen`); the
    actual shape rule lives in :func:`repro.audit.comparator
    .check_answer_shape` — the audit stack's single definition of
    "malformed" — imported lazily because :mod:`repro.audit.loadgen`
    imports this module for its workload builder.
    """
    from repro.audit.comparator import check_answer_shape

    reason = check_answer_shape(answer)
    if reason is not None:
        problems.append(
            f"malformed answer for ({s},{t}) at seq {seq}: {reason}"
        )


def _reader_loop(service, pairs, deadline, seed, record, picker=None):
    rng = random.Random(seed)
    latencies = []        # point-query timings only
    batch_latencies = []  # query_many-of-8 timings, reported separately
    problems = []
    reads = 0
    try:
        reads = _read_until(service, pairs, deadline, rng, latencies,
                            batch_latencies, problems, picker)
    except Exception as exc:  # noqa: BLE001 — a dead reader must fail the
        # run, not silently shrink the sample (the smoke job's contract).
        problems.append(f"reader thread crashed: {exc!r}")
    record["reads"] = reads
    record["latencies"] = latencies
    record["batch_latencies"] = batch_latencies
    record["problems"] = problems


def _read_until(service, pairs, deadline, rng, latencies, batch_latencies,
                problems, picker=None):
    reads = 0
    last_seq = -1
    while time.time() < deadline:
        s, t = _next_pair(pairs, rng, picker)
        start = time.perf_counter()
        snap = service.snapshot()
        answer = snap.query(s, t)
        latencies.append(time.perf_counter() - start)
        reads += 1
        if snap.seq < last_seq:
            problems.append(
                f"snapshot regressed: seq {snap.seq} after {last_seq}"
            )
        last_seq = snap.seq
        _check_answer(snap.seq, s, t, answer, problems)
        if reads % 16 == 0:
            # Torn-read probe: a pinned snapshot must answer identically
            # forever, even while the writer publishes newer epochs.
            again = snap.query(s, t)
            if again != answer:
                problems.append(
                    f"torn read on ({s},{t}) at seq {snap.seq}: "
                    f"{answer!r} then {again!r}"
                )
        if reads % 64 == 0:
            batch = [_next_pair(pairs, rng, picker) for _ in range(8)]
            start = time.perf_counter()
            answers = snap.query_many(batch)
            batch_latencies.append(time.perf_counter() - start)
            reads += len(batch)
            for (bs, bt), ba in zip(batch, answers):
                if ba != snap.query(bs, bt):
                    problems.append(
                        f"query_many({bs},{bt}) disagreed with query "
                        f"at seq {snap.seq}"
                    )
    return reads


def _submitter_loop(service, cycle, deadline, batch_size, pause, record):
    submitted = 0
    i = 0
    record["problems"] = problems = []
    try:
        while cycle and time.time() < deadline:
            chunk = cycle[i:i + batch_size]
            if not chunk:
                i = 0
                continue
            service.submit_many(chunk)
            submitted += len(chunk)
            i = (i + len(chunk)) % len(cycle)
            if pause:
                time.sleep(pause)
    except Exception as exc:  # noqa: BLE001 — surfaced as a run failure
        problems.append(f"submitter thread crashed: {exc!r}")
    record["submitted"] = submitted


def run_loadgen(backend="core", readers=4, duration=1.0, n=300, m=900,
                churn=40, batch_size=8, pause=0.001, seed=0,
                publish_every=16, max_staleness=0.02, durability_dir=None,
                source_picker=None, picker_kwargs=None, telemetry=None,
                strict=True):
    """Run one mixed read/update load against a fresh service.

    Returns a JSON-safe report dict; with ``strict`` (the default) any
    observed inconsistency raises :class:`~repro.exceptions.ServeError`
    listing every problem — timing numbers never fail the run.  With
    ``telemetry`` set to a directory, the run is instrumented end to end
    (:meth:`~repro.serve.SPCService.set_metrics`) and its registry is
    written there as a ``serve-<backend>.prom``/``.json`` pair.
    """
    graph, cycle, pairs = make_workload(backend, n, m, seed=seed, churn=churn)
    vertices = sorted(graph.vertices())
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    config = ServeConfig(
        publish_every=publish_every,
        max_staleness=max_staleness,
        queue_capacity=4096,
        durability_dir=durability_dir,
    )
    service = SPCService(engine, config=config, overwrite=True)
    registry = tracer = None
    if telemetry is not None:
        from repro.obs import MetricsRegistry, Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        service.set_metrics(registry, tracer=tracer)
        engine.set_metrics(registry)

    deadline = time.time() + duration
    reader_records = [{} for _ in range(readers)]
    threads = [
        threading.Thread(
            target=_reader_loop,
            args=(service, pairs, deadline, seed + 10 + i, reader_records[i],
                  make_pair_picker(source_picker, vertices, seed + 10 + i,
                                   picker_kwargs)),
            name=f"loadgen-reader-{i}",
        )
        for i in range(readers)
    ]
    submit_record = {}
    threads.append(threading.Thread(
        target=_submitter_loop,
        args=(service, cycle, deadline, batch_size, pause, submit_record),
        name="loadgen-submitter",
    ))

    start = time.time()
    lag_samples, staleness_samples = [], []
    try:
        for t in threads:
            t.start()
        while time.time() < deadline:
            lag_samples.append(service.lag())
            staleness_samples.append(service.staleness())
            time.sleep(0.01)
        for t in threads:
            t.join()
        service.flush()
        elapsed = time.time() - start
        stats = service.stats()
        if registry is not None:
            from repro.obs.export import write_files

            telemetry_paths = write_files(
                registry, telemetry, tracer=tracer,
                stem=f"serve-{backend}",
            )
    except BaseException:
        # Even when flush (or a sampler call) raises, the writer thread
        # and any WAL handle must not leak into the caller's process —
        # but the original failure stays the one reported.
        try:
            service.close()
        except ServeError:
            pass
        raise
    service.close()
    engine.check_invariants()

    problems = [p for rec in reader_records for p in rec.get("problems", [])]
    problems.extend(submit_record.get("problems", []))
    latencies = sorted(
        lat for rec in reader_records for lat in rec.get("latencies", [])
    )
    batch_latencies = sorted(
        lat for rec in reader_records for lat in rec.get("batch_latencies", [])
    )
    reads = sum(rec.get("reads", 0) for rec in reader_records)
    report = {
        "backend": backend,
        "readers": readers,
        "duration_s": round(elapsed, 3),
        "graph": {"n": n, "m": m},
        "reads": reads,
        "read_qps": round(reads / elapsed) if elapsed else 0,
        "read_latency_ms": {
            "p50": round(_percentile(latencies, 50) * 1e3, 4),
            "p99": round(_percentile(latencies, 99) * 1e3, 4),
            "max": round((latencies[-1] if latencies else 0.0) * 1e3, 4),
            "mean": round(
                (sum(latencies) / len(latencies) if latencies else 0.0) * 1e3,
                4,
            ),
        },
        # query_many-of-8 timings, kept out of the point-read percentiles
        # so p99 tracks single-read latency, not the batch mix.
        "batch_latency_ms": {
            "p50": round(_percentile(batch_latencies, 50) * 1e3, 4),
            "p99": round(_percentile(batch_latencies, 99) * 1e3, 4),
        },
        "updates_submitted": submit_record.get("submitted", 0),
        "updates_applied": stats["applied_updates"],
        "updates_cancelled": stats["cancelled_updates"],
        "applied_batches": stats["applied_batches"],
        "snapshots_published": stats["snapshots_published"],
        "lag_batches": {
            "mean": round(
                sum(lag_samples) / len(lag_samples) if lag_samples else 0.0, 3
            ),
            "max": max(lag_samples, default=0),
        },
        "staleness_ms": {
            "mean": round(
                (sum(staleness_samples) / len(staleness_samples)
                 if staleness_samples else 0.0) * 1e3,
                3,
            ),
            "max": round(max(staleness_samples, default=0.0) * 1e3, 3),
        },
        "update_errors": len(service.errors),
        "consistency_problems": problems,
    }
    if registry is not None:
        report["telemetry"] = list(telemetry_paths)
    if service.errors:
        # The cyclic stream is valid by construction; a rejected update
        # means the service lost an edge somewhere — that is a failure.
        problems.extend(
            f"update rejected: {u!r}: {exc}" for u, exc in service.errors
        )
    if strict and problems:
        preview = "; ".join(problems[:5])
        raise ServeError(
            f"loadgen observed {len(problems)} inconsistencies "
            f"({report['backend']} backend): {preview}"
        )
    return report
