"""Checkpoint files: durable, backend-agnostic snapshots of an engine.

A checkpoint is one JSON document holding everything needed to rebuild an
:class:`~repro.engine.SPCEngine` without re-running the index builder:
the backend name, the engine config, the graph (vertices + edges, with
weights on weighted graphs), the index payload (each family's
``to_dict``), and ``applied_seq`` — the WAL sequence number the state
reflects.  ``applied_seq`` is the joint between the two durability files:
restore loads the checkpoint, then replays only WAL records with a higher
sequence number.

Writes go through a temp file + ``os.replace`` so a crash mid-checkpoint
leaves the previous checkpoint intact, never a half-written one.  The
written document additionally carries a top-level ``"crc"`` stamp — a
CRC32 over the canonical dump of the rest of the payload — verified by
:func:`load_checkpoint`, so in-place corruption of a checkpoint that
stays json-parseable (a bit flip inside a count, say) raises the typed
:class:`~repro.exceptions.WalCorruptionError` instead of restoring
silently wrong state.  Checkpoints written before stamping existed carry
no ``crc`` and still load.
"""

import dataclasses
import json
import os
import zlib

from repro.engine import EngineConfig, SPCEngine, get_backend
from repro.exceptions import (
    CheckpointMismatchError,
    ServeError,
    WalCorruptionError,
)

#: bump when the payload layout changes incompatibly.
CHECKPOINT_FORMAT = 1


def graph_to_payload(graph):
    """JSON-safe payload of a graph: sorted vertices and edges.

    ``edges()`` yields (u, v, w) triples on weighted graphs and (u, v)
    pairs elsewhere (arcs on digraphs), so one shape covers every family.
    Sorting makes checkpoints deterministic.
    """
    return {
        "vertices": sorted(graph.vertices()),
        "edges": [list(e) for e in sorted(graph.edges())],
    }


def graph_from_payload(payload, graph_type):
    """Rebuild a graph of ``graph_type`` from :func:`graph_to_payload`."""
    edges = [tuple(e) for e in payload["edges"]]
    return graph_type.from_edges(edges, vertices=payload["vertices"])


def config_to_payload(config):
    """EngineConfig -> plain dict (dataclass fields only)."""
    return dataclasses.asdict(config)


def config_from_payload(payload):
    """Rebuild an EngineConfig, ignoring fields this version doesn't know.

    Forward compatibility: a checkpoint written by a newer version with
    extra knobs still restores; unknown knobs are dropped.
    """
    known = {f.name for f in dataclasses.fields(EngineConfig)}
    return EngineConfig(**{k: v for k, v in payload.items() if k in known})


def engine_to_payload(engine, applied_seq=0):
    """Capture a full engine state as a checkpoint payload."""
    backend = engine.backend
    return {
        "format": CHECKPOINT_FORMAT,
        "backend": backend.name,
        "applied_seq": applied_seq,
        "epoch": engine.epoch,
        "config": config_to_payload(engine.config),
        "graph": graph_to_payload(engine.graph),
        "index": backend.index_to_dict(),
    }


def engine_from_payload(payload):
    """Rebuild a live engine from :func:`engine_to_payload` output.

    The index is rehydrated from its serialized labels (no rebuild), so
    restore cost is I/O plus deserialization — not an HP-SPC build.
    """
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise ServeError(
            f"unsupported checkpoint format {payload.get('format')!r} "
            f"(this version reads format {CHECKPOINT_FORMAT})"
        )
    backend_cls = get_backend(payload["backend"])
    try:
        graph = graph_from_payload(payload["graph"], backend_cls.graph_type)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointMismatchError(
            f"checkpoint declares backend {payload['backend']!r} but its "
            f"graph payload does not load as {backend_cls.graph_type.__name__}"
            f": {exc!r}"
        ) from exc
    config = config_from_payload(payload["config"]).replace(
        backend=payload["backend"]
    )
    try:
        index = backend_cls.index_from_dict(payload["index"])
    except (KeyError, TypeError, ValueError) as exc:
        # A hand-edited or mixed-up checkpoint: the declared family's
        # index class cannot rehydrate the payload.  Without this guard
        # the family-specific ``from_dict`` surfaces a bare KeyError.
        raise CheckpointMismatchError(
            f"checkpoint declares backend {payload['backend']!r} but its "
            f"index payload does not rehydrate as that family: {exc!r}"
        ) from exc
    engine = SPCEngine(graph, config=config, index=index)
    # Continue the pre-crash epoch numbering so snapshots published after
    # a restore never reissue epochs readers already saw.
    engine.seed_epoch(payload.get("epoch", 0))
    return engine


def filter_label_payload(lp, keep):
    """Restrict one vertex's label payload to hubs passing ``keep``.

    Handles every family's payload shape: entry lists (core / weighted /
    sd — the hub rank is always ``entry[0]``) and the directed backend's
    ``{"in": [...], "out": [...]}`` pair.  ``None`` (vertex gone) passes
    through, so journal ``lb`` ops can be filtered with the same function.
    """
    if lp is None:
        return None
    if isinstance(lp, dict):
        return {
            fam: [e for e in entries if keep(e[0])]
            for fam, entries in lp.items()
        }
    return [e for e in lp if keep(e[0])]


def checkpoint_label_slice(payload, keep):
    """Hub-sliced label states from a checkpoint: ``{vertex: payload}``.

    The slice-restricted restore seam for :mod:`repro.shard`: instead of
    rehydrating the full index (:func:`engine_from_payload`), a shard walks
    the checkpoint's label payloads and keeps only entries whose hub rank
    passes ``keep``.  Every vertex stays present (possibly with an empty
    slice) — shards must know the vertex set to distinguish "no in-range
    labels" from "unknown vertex".
    """
    backend_cls = get_backend(payload["backend"])
    return {
        v: filter_label_payload(lp, keep)
        for v, lp in backend_cls.iter_label_payloads(payload["index"])
    }


def checkpoint_crc(payload):
    """CRC32 over a checkpoint payload's canonical JSON dump.

    The payload is round-tripped through JSON first: in-memory payloads
    key index dicts by int vertex id, but ``json.dump`` writes — and
    :func:`load_checkpoint` returns — string keys, and the stamp must
    hash what a reader will re-hash.  Any ``"crc"`` key already present
    is excluded (the stamp never covers itself).
    """
    body = {k: v for k, v in payload.items() if k != "crc"}
    normalized = json.loads(json.dumps(body))
    canon = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode("utf-8"))


def save_checkpoint(path, engine, applied_seq=0):
    """Atomically write a checksummed checkpoint of ``engine`` to ``path``.

    Returns the in-memory payload (unstamped, int-keyed) — callers that
    want exactly what a reader will see should :func:`load_checkpoint`.
    """
    payload = engine_to_payload(engine, applied_seq=applied_seq)
    stamped = dict(payload)
    stamped["crc"] = checkpoint_crc(payload)
    tmp = f"{path}.tmp"
    with open(tmp, "w") as f:
        json.dump(stamped, f)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return payload


def load_checkpoint(path):
    """Read and verify a checkpoint payload.

    Raises :class:`~repro.exceptions.ServeError` when missing or
    unparseable and the typed :class:`~repro.exceptions.WalCorruptionError`
    when the document parses but fails its ``"crc"`` stamp (unstamped
    legacy checkpoints skip verification).  The stamp is left in the
    returned payload; :func:`engine_from_payload` ignores unknown keys.
    """
    try:
        with open(path) as f:
            payload = json.load(f)
    except FileNotFoundError:
        raise ServeError(f"no checkpoint at {path}") from None
    except ValueError as exc:
        raise ServeError(f"corrupt checkpoint at {path}: {exc}") from exc
    stamp = payload.get("crc") if isinstance(payload, dict) else None
    if stamp is not None and stamp != checkpoint_crc(payload):
        raise WalCorruptionError(
            f"checkpoint at {path} fails its checksum (stamped crc={stamp})"
            f": durable bytes were corrupted in place; refusing to restore"
        )
    return payload
