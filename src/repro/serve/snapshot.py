"""Immutable, epoch-tagged views of the index — the reader half of serve.

A :class:`SnapshotView` is what concurrent readers hold: one published
state of the index, pinned forever.  The writer thread never mutates a
published snapshot (publication copies the index via the backend's
``snapshot_index`` hook), so readers answer ``query`` / ``query_many``
with no locks at all — the only synchronization in the whole read path is
the single atomic attribute read that fetches the current snapshot from
the service.

Snapshots carry three coordinates:

* ``epoch`` — the engine's topology-change counter at publication;
* ``seq``   — the WAL sequence number of the last batch the snapshot
  reflects (0 = the initial state), which is what ties a served answer
  back to a replayable prefix of the update log;
* ``published_at`` — wall-clock publication time, for staleness metrics.

Every mutation method of the engine API exists here too — and raises
:class:`~repro.exceptions.ReadOnlyError`.  A snapshot that silently
accepted ``insert_edge`` would fork a stale copy of the index that no
published epoch describes; failing loudly is the contract.
"""

from repro.exceptions import ReadOnlyError

#: engine-API mutation verbs a snapshot must refuse.
_MUTATORS = (
    "insert_edge",
    "delete_edge",
    "set_weight",
    "insert_vertex",
    "delete_vertex",
    "apply",
    "apply_stream",
    "apply_batch",
    "rebuild",
)


def _rejector(name):
    def method(self, *args, **kwargs):
        raise ReadOnlyError(
            f"SnapshotView.{name}: snapshots are immutable — submit "
            f"updates through SPCService.submit so the writer thread "
            f"applies them and publishes a fresh snapshot"
        )

    method.__name__ = name
    method.__doc__ = f"Rejected: raises ReadOnlyError ({name} mutates)."
    return method


class SnapshotView:
    """One published, immutable state of an SPC index.

    Created by :class:`~repro.serve.SPCService` at publication time; hold
    one (via ``service.snapshot()``) to answer a batch of queries against
    a single consistent epoch, or query the service directly to always
    read the freshest snapshot.
    """

    __slots__ = ("_index", "backend_name", "epoch", "seq", "published_at")

    def __init__(self, index, backend_name, epoch, seq, published_at):
        self._index = index
        self.backend_name = backend_name
        self.epoch = epoch
        self.seq = seq
        self.published_at = published_at

    @property
    def index(self):
        """The pinned index copy (read-only by contract)."""
        return self._index

    # ------------------------------------------------------------------
    # Read path — lock-free, cache-free
    # ------------------------------------------------------------------

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)) as of this snapshot's epoch."""
        return self._index.query(s, t)

    def query_many(self, pairs):
        """Answer a batch of (s, t) pairs against this one epoch.

        Delegates to :func:`repro.engine.engine.batch_answers` — the same
        PSPC-style shared scan as ``SPCEngine.query_many``, minus the
        cache: a snapshot is immutable, so the caller can memoize freely.
        """
        from repro.engine.engine import batch_answers

        return batch_answers(self._index, pairs)

    def distance(self, s, t):
        """Return sd(s, t) as of this snapshot's epoch."""
        return self.query(s, t)[0]

    def count(self, s, t):
        """Return spc(s, t) as of this snapshot's epoch."""
        return self.query(s, t)[1]

    def age(self, now):
        """Seconds between publication and ``now`` (staleness metric)."""
        return now - self.published_at

    def __repr__(self):
        return (
            f"SnapshotView(backend={self.backend_name!r}, "
            f"epoch={self.epoch}, seq={self.seq})"
        )


for _name in _MUTATORS:
    setattr(SnapshotView, _name, _rejector(_name))
del _name
