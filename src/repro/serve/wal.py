"""The write-ahead log: a replayable record of applied update batches.

Durability in :mod:`repro.serve` is checkpoint + log: a checkpoint file
captures the full engine state at some sequence number, and the WAL holds
every batch applied after it.  Restoring a service loads the latest
checkpoint and replays the WAL tail (``seq > checkpoint.applied_seq``),
which reproduces the live engine exactly — the log records the *effective*
updates the writer actually applied (post-coalescing), so replay applies
them verbatim, in order, with no re-coalescing.

Format: one JSON object per line, ``{"seq": n, "updates": [[op, ...]]}``,
with updates encoded as compact op-tagged lists (see :func:`encode_update`).
Appends are flushed per record; ``fsync`` is opt-in (ServeConfig.wal_fsync)
because the loadgen measures throughput and a laptop fsync per batch is a
different experiment.  A torn final line — the crash case — is ignored on
read.
"""

import json
import os

from repro.exceptions import ServeError
from repro.workloads.updates import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
)

_ENCODERS = {
    InsertEdge: lambda u: ["ie", u.u, u.v, u.weight],
    DeleteEdge: lambda u: ["de", u.u, u.v, u.weight],
    SetWeight: lambda u: ["sw", u.u, u.v, u.weight],
    InsertVertex: lambda u: ["iv", u.v, list(u.edges)],
    DeleteVertex: lambda u: ["dv", u.v],
}

_DECODERS = {
    "ie": lambda rec: InsertEdge(rec[1], rec[2], rec[3]),
    "de": lambda rec: DeleteEdge(rec[1], rec[2], rec[3]),
    "sw": lambda rec: SetWeight(rec[1], rec[2], rec[3]),
    "iv": lambda rec: InsertVertex(rec[1], tuple(
        tuple(e) if isinstance(e, list) else e for e in rec[2])),
    "dv": lambda rec: DeleteVertex(rec[1]),
}


def is_loggable(update):
    """True when :func:`encode_update` can serialize ``update``."""
    return type(update) in _ENCODERS


def encode_update(update):
    """Encode one workload update as a JSON-safe op-tagged list."""
    try:
        encoder = _ENCODERS[type(update)]
    except KeyError:
        raise ServeError(
            f"update {update!r} is not WAL-serializable"
        ) from None
    return encoder(update)


def decode_update(record):
    """Decode :func:`encode_update` output back into an update object."""
    try:
        decoder = _DECODERS[record[0]]
    except (KeyError, IndexError, TypeError):
        raise ServeError(f"corrupt WAL update record {record!r}") from None
    return decoder(record)


def read_wal(path, after_seq=0):
    """Yield (seq, [updates]) records with ``seq > after_seq``, in order.

    A missing file yields nothing (an empty log).  A torn final line is
    tolerated (the record was never acknowledged); corruption anywhere
    else raises :class:`~repro.exceptions.ServeError`.

    "Torn" means *any* final line without its trailing newline — even one
    whose JSON happens to be complete.  ``append`` acknowledges a record
    only after flushing line + newline, so an unterminated line was never
    acknowledged; and :func:`_trim_torn_tail` physically deletes it on the
    next append, so replaying it here would resurrect a record the log is
    about to forget (the sequence would silently skip it afterwards).
    """
    if not os.path.exists(path):
        return
    last_seq = None
    with open(path) as f:
        for lineno, raw in enumerate(f):
            if not raw.endswith("\n"):
                break  # the torn tail: unterminated, never acknowledged
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                seq = payload["seq"]
                updates = [decode_update(rec) for rec in payload["updates"]]
            except (ValueError, KeyError, ServeError) as exc:
                # A newline-terminated line was fully flushed and
                # acknowledged — a parse failure here is real corruption
                # of durable state, never a crash artifact.
                raise ServeError(
                    f"corrupt WAL record at {path}:{lineno + 1}: {line[:80]!r}"
                ) from exc
            if last_seq is not None and seq <= last_seq:
                raise ServeError(
                    f"non-monotone WAL sequence at {path}:{lineno + 1}: "
                    f"{seq} after {last_seq}"
                )
            last_seq = seq
            if seq > after_seq:
                yield seq, updates


def last_wal_seq(path, default=0):
    """The highest sequence number recorded in the WAL at ``path``."""
    seq = default
    for seq, _ in read_wal(path):
        pass
    return seq


def _trim_torn_tail(path):
    """Truncate a partial final line left by a crash mid-append.

    Readers already ignore a torn tail, but an *appender* must physically
    remove it — otherwise the next record is glued onto the fragment,
    corrupting a record that was never acknowledged into one that poisons
    the whole log.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    with open(path, "rb+") as f:
        f.seek(-1, os.SEEK_END)
        if f.read(1) == b"\n":
            return
        f.seek(0)
        data = f.read()
        keep = data.rfind(b"\n") + 1  # 0 when no complete line survives
        f.truncate(keep)


class WriteAheadLog:
    """Append-only writer over the WAL file.

    Owned by the service's writer thread — appends are single-threaded by
    construction, so the class needs no locking of its own.  Opening the
    log trims any torn final line (see :func:`_trim_torn_tail`).
    """

    def __init__(self, path, fsync=False):
        self.path = path
        self.fsync = fsync
        _trim_torn_tail(path)
        self._file = open(path, "a")

    def append(self, seq, updates):
        """Durably record one applied batch under sequence number ``seq``."""
        record = {"seq": seq, "updates": [encode_update(u) for u in updates]}
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def truncate(self):
        """Drop every record (after a checkpoint subsumed them)."""
        self._file.close()
        self._file = open(self.path, "w")

    def close(self):
        """Flush and close the underlying file."""
        if not self._file.closed:
            self._file.close()

    def __repr__(self):
        return f"WriteAheadLog(path={self.path!r}, fsync={self.fsync})"
