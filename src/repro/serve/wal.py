"""The write-ahead log: a replayable record of applied update batches.

Durability in :mod:`repro.serve` is checkpoint + log: a checkpoint file
captures the full engine state at some sequence number, and the WAL holds
every batch applied after it.  Restoring a service loads the latest
checkpoint and replays the WAL tail (``seq > checkpoint.applied_seq``),
which reproduces the live engine exactly — the log records the *effective*
updates the writer actually applied (post-coalescing), so replay applies
them verbatim, in order, with no re-coalescing.

Format: one JSON object per line, ``{"seq": n, "updates": [[op, ...]]}``,
with updates encoded as compact op-tagged lists (see :func:`encode_update`),
an optional ``"backend"`` field naming the backend family that applied
the batch (readers use it to refuse replaying a log against a checkpoint
of a different family — see :exc:`~repro.exceptions.CheckpointMismatchError`),
and a ``"crc"`` field stamping a CRC32 over the record's canonical content
(see :func:`record_crc`).  Readers verify the stamp on every line —
interior corruption (a bit flip, a torn write glued onto a later append)
raises the typed :exc:`~repro.exceptions.WalCorruptionError` instead of
being silently truncated away or, worse, decoded into divergent state.
Records written before stamping existed carry no ``crc`` and are still
accepted.  Appends are flushed per record; ``fsync`` is opt-in
(ServeConfig.wal_fsync) because the loadgen measures throughput and a
laptop fsync per batch is a different experiment.  A torn final line —
the crash case — is ignored on read.

Besides the batch reader (:func:`read_wal`, restore's replay path) the
module ships :class:`WalTailer` — the replication stream: an incremental
reader that remembers its file position, yields newly appended records in
sequence order, and detects compaction (the primary checkpointed and
truncated the log beneath it) so a replica knows to re-bootstrap from the
fresh checkpoint.
"""

import json
import os
import zlib

from repro.exceptions import (
    CheckpointMismatchError,
    ServeError,
    WalCorruptionError,
)
from repro.workloads.updates import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
)

_ENCODERS = {
    InsertEdge: lambda u: ["ie", u.u, u.v, u.weight],
    DeleteEdge: lambda u: ["de", u.u, u.v, u.weight],
    SetWeight: lambda u: ["sw", u.u, u.v, u.weight],
    InsertVertex: lambda u: ["iv", u.v, list(u.edges)],
    DeleteVertex: lambda u: ["dv", u.v],
}

_DECODERS = {
    "ie": lambda rec: InsertEdge(rec[1], rec[2], rec[3]),
    "de": lambda rec: DeleteEdge(rec[1], rec[2], rec[3]),
    "sw": lambda rec: SetWeight(rec[1], rec[2], rec[3]),
    "iv": lambda rec: InsertVertex(rec[1], tuple(
        tuple(e) if isinstance(e, list) else e for e in rec[2])),
    "dv": lambda rec: DeleteVertex(rec[1]),
}


def is_loggable(update):
    """True when :func:`encode_update` can serialize ``update``."""
    return type(update) in _ENCODERS


def encode_update(update):
    """Encode one workload update as a JSON-safe op-tagged list."""
    try:
        encoder = _ENCODERS[type(update)]
    except KeyError:
        raise ServeError(
            f"update {update!r} is not WAL-serializable"
        ) from None
    return encoder(update)


def decode_update(record):
    """Decode :func:`encode_update` output back into an update object."""
    try:
        decoder = _DECODERS[record[0]]
    except (KeyError, IndexError, TypeError):
        raise ServeError(f"corrupt WAL update record {record!r}") from None
    return decoder(record)


def check_record_backend(payload, expect_backend, where):
    """Refuse a WAL record stamped with a foreign backend family.

    Records written before backend stamping existed carry no ``backend``
    field and are accepted (the caller falls back to replay-time errors);
    a stamped record naming a different family raises
    :class:`~repro.exceptions.CheckpointMismatchError` *before* any update
    is applied — mixing families can diverge silently (an undirected log
    replayed onto a directed engine applies arcs, not edges), so this must
    fail up front, not deep inside the engine.
    """
    recorded = payload.get("backend")
    if expect_backend is None or recorded is None or recorded == expect_backend:
        return
    raise CheckpointMismatchError(
        f"WAL record at {where} was written by the {recorded!r} backend "
        f"but is being replayed against a {expect_backend!r} checkpoint; "
        f"the checkpoint and the log do not describe the same service"
    )


def record_crc(seq, updates, backend=None):
    """CRC32 over one record's canonical content.

    Hashes the compact, key-sorted JSON dump of ``[seq, updates, backend]``
    rather than the line bytes themselves, so the stamp is stable across
    the write-time objects (tuples, int keys) and their json round-trip —
    the writer and every reader compute the same value from the same
    logical record regardless of dict ordering or whitespace.
    """
    canon = json.dumps(
        [seq, updates, backend], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canon.encode("utf-8"))


def verify_record_crc(payload, where):
    """Check a parsed record against its CRC32 stamp.

    Records written before stamping existed carry no ``crc`` field and
    pass (their only integrity signal remains json-parseability); a
    stamped record whose content hashes differently raises
    :class:`~repro.exceptions.WalCorruptionError` — the bytes changed
    *after* the append was acknowledged (a bit flip, a torn write glued
    onto a later append), and decoding them would diverge silently.
    """
    stamp = payload.get("crc")
    if stamp is None:
        return
    actual = record_crc(
        payload.get("seq"), payload.get("updates"), payload.get("backend")
    )
    if actual != stamp:
        raise WalCorruptionError(
            f"record at {where} fails its checksum (stamped crc={stamp}, "
            f"content hashes to {actual}): durable bytes were corrupted "
            f"after acknowledgement"
        )


def _check_stamp_continuity(payload, saw_stamped, where):
    """Refuse an unstamped record that follows stamped ones.

    Legacy pre-stamping records are accepted, but an append-only log can
    only hold them as a *prefix*: the upgraded writer stamps every record
    it appends, so once one stamped record has been read, a later record
    with no ``crc`` field means the stamp was stripped from durable bytes
    — e.g. a bit flip landing on the ``"crc"`` key itself, which would
    otherwise demote the record to "legacy" and bypass its checksum.
    """
    if saw_stamped and "crc" not in payload:
        raise WalCorruptionError(
            f"record at {where} carries no crc stamp but follows stamped "
            f"records: the stamp was stripped from durable bytes after "
            f"acknowledgement"
        )


def read_wal(path, after_seq=0, expect_backend=None):
    """Yield (seq, [updates]) records with ``seq > after_seq``, in order.

    A missing file yields nothing (an empty log).  A torn final line is
    tolerated (the record was never acknowledged); corruption anywhere
    else — a checksum mismatch or an unparseable interior line — raises
    the typed :class:`~repro.exceptions.WalCorruptionError` (a
    :class:`~repro.exceptions.ServeError` subclass).  With
    ``expect_backend`` set, a record stamped by a different backend family
    raises :class:`~repro.exceptions.CheckpointMismatchError` (see
    :func:`check_record_backend`).

    "Torn" means *any* final line without its trailing newline — even one
    whose JSON happens to be complete.  ``append`` acknowledges a record
    only after flushing line + newline, so an unterminated line was never
    acknowledged; and :func:`_trim_torn_tail` physically deletes it on the
    next append, so replaying it here would resurrect a record the log is
    about to forget (the sequence would silently skip it afterwards).
    """
    if not os.path.exists(path):
        return
    last_seq = None
    saw_stamped = False
    with open(path) as f:
        for lineno, raw in enumerate(f):
            if not raw.endswith("\n"):
                break  # the torn tail: unterminated, never acknowledged
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                seq = payload["seq"]
                if not isinstance(seq, int):
                    raise ServeError(f"non-integer seq {seq!r}")
                _check_stamp_continuity(
                    payload, saw_stamped, f"{path}:{lineno + 1}"
                )
                saw_stamped = saw_stamped or "crc" in payload
                # Checksum before the backend-family check: a record whose
                # "backend" field was damaged in place fails its crc and
                # must surface as corruption, not as a foreign-family log.
                verify_record_crc(payload, f"{path}:{lineno + 1}")
                check_record_backend(
                    payload, expect_backend, f"{path}:{lineno + 1}"
                )
                updates = [decode_update(rec) for rec in payload["updates"]]
            except (CheckpointMismatchError, WalCorruptionError):
                raise
            except (ValueError, KeyError, TypeError, ServeError) as exc:
                # A newline-terminated line was fully flushed and
                # acknowledged — a parse failure here is real corruption
                # of durable state, never a crash artifact.
                raise WalCorruptionError(
                    f"corrupt WAL record at {path}:{lineno + 1}: {line[:80]!r}"
                ) from exc
            if last_seq is not None and seq <= last_seq:
                raise ServeError(
                    f"non-monotone WAL sequence at {path}:{lineno + 1}: "
                    f"{seq} after {last_seq}"
                )
            last_seq = seq
            if seq > after_seq:
                yield seq, updates


def last_wal_seq(path, default=0):
    """The highest sequence number recorded in the WAL at ``path``."""
    seq = default
    for seq, _ in read_wal(path):
        pass
    return seq


def _trim_torn_tail(path):
    """Truncate a partial final line left by a crash mid-append.

    Readers already ignore a torn tail, but an *appender* must physically
    remove it — otherwise the next record is glued onto the fragment,
    corrupting a record that was never acknowledged into one that poisons
    the whole log.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    with open(path, "rb+") as f:
        f.seek(-1, os.SEEK_END)
        if f.read(1) == b"\n":
            return
        f.seek(0)
        data = f.read()
        keep = data.rfind(b"\n") + 1  # 0 when no complete line survives
        f.truncate(keep)


class WriteAheadLog:
    """Append-only writer over the WAL file.

    Owned by the service's writer thread — appends are single-threaded by
    construction, so the class needs no locking of its own.  Opening the
    log trims any torn final line (see :func:`_trim_torn_tail`).  With
    ``backend`` set, every record is stamped with the backend family that
    applied it, so readers can refuse a checkpoint/WAL family mismatch.
    ``size`` tracks the log's current byte length (the input to the
    ``wal_max_bytes`` auto-compaction policy).

    ``encode`` converts one list element to its JSON-safe op-tagged form;
    the default serializes workload updates.  The label-delta journal
    (:mod:`repro.shard`) reuses this class with its own codec — same
    record framing, torn-tail handling and compaction markers.

    ``fault``, when set, is a callable ``fault(op, path)`` invoked before
    every append — the disk-fault seam the chaos harness uses to raise
    ``OSError(ENOSPC)`` at the exact write boundary.  The log is
    fail-stop: a fault surfaces to the writer loop before any bytes land,
    so the record is never half-acknowledged.
    """

    def __init__(self, path, fsync=False, backend=None, encode=encode_update):
        self.path = path
        self.fsync = fsync
        self.backend = backend
        self.fault = None
        self._encode = encode
        _trim_torn_tail(path)
        self._file = open(path, "a")
        self.size = os.path.getsize(path)

    def append(self, seq, updates):
        """Durably record one applied batch under sequence number ``seq``."""
        if self.fault is not None:
            self.fault("append", self.path)
        encoded = [self._encode(u) for u in updates]
        record = {"seq": seq, "updates": encoded}
        if self.backend is not None:
            record["backend"] = self.backend
        record["crc"] = record_crc(seq, encoded, self.backend)
        line = json.dumps(record) + "\n"
        self._file.write(line)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.size += len(line)

    def truncate(self):
        """Drop every record (after a checkpoint subsumed them).

        The replacement handle opens *before* the old one closes: if the
        open fails (EMFILE, EACCES, a vanished directory) the log keeps
        its records and a usable handle — a failed compaction must
        degrade to "no compaction", never to a writer whose next append
        dies on a closed file.

        The replacement opens in append mode (``O_APPEND``) and is then
        explicitly truncated, *not* opened with ``"w"``: a plain write
        handle tracks its own file position, so any bytes another handle
        appended at EOF (a crashed process's torn fragment, an injected
        fault) would be silently overwritten by the next record instead
        of surfacing to readers as the corruption they are.
        """
        replacement = open(self.path, "a")
        try:
            replacement.truncate(0)
        except BaseException:
            replacement.close()
            raise
        self._file.close()
        self._file = replacement
        self.size = 0

    def close(self):
        """Flush and close the underlying file."""
        if not self._file.closed:
            self._file.close()

    def __repr__(self):
        return f"WriteAheadLog(path={self.path!r}, fsync={self.fsync})"


class WalTailer:
    """Incremental WAL reader — the replication stream a replica tails.

    Remembers a byte offset and the last sequence number it handed out;
    each :meth:`poll` reopens the file (robust against the writer's
    truncate-by-reopen), reads any newly appended *complete* lines, and
    returns ``(records, gap)``:

    * ``records`` — the new ``(seq, [updates])`` batches, strictly
      contiguous with everything polled so far (``seq == last + 1``; WAL
      sequence numbers are contiguous by construction, one record per
      applied batch);
    * ``gap`` — ``True`` when the log can no longer supply the next
      record: a compaction marker (an *empty-updates* record, left at the
      head of a truncated log) names a seq past our position, a sequence
      number jumped, or a mid-file read landed inside a record (truncate
      racing regrowth).  The tailer's own state is unusable after a gap —
      the caller must re-bootstrap from the primary's checkpoint and
      build a fresh tailer with ``after_seq = checkpoint.applied_seq``.

    A file that shrank beneath the offset (the primary checkpointed with
    ``truncate_wal``) is rescanned from the head rather than reported as
    a gap outright: the marker decides.  A caught-up tailer skips the
    marker (``seq <= last``) and keeps streaming — compaction costs it
    nothing — while a lagging tailer sees a marker past its position and
    re-bootstraps.  The marker must never be applied as a record: the
    writer only logs non-empty batches, so an empty-updates record always
    means "everything up to this seq now lives only in the checkpoint",
    even when its seq is exactly ``last + 1``.

    A torn final line (the writer is mid-append) is simply not consumed
    yet: the offset stays at the start of the incomplete line and the
    record is returned by a later poll once its newline lands.  Records
    with ``seq <= after_seq`` are skipped (the bootstrap checkpoint
    already contains them).  Like :func:`read_wal`, a stamped record from
    a foreign backend family raises
    :class:`~repro.exceptions.CheckpointMismatchError`.

    Every parsed line is checked against its CRC32 stamp — including
    already-applied records on a from-the-head rescan, so a corrupted
    interior record can never be skipped past by re-bootstrapping alone;
    the stream stays poisoned until something rewrites it (the
    supervisor's repair: a fresh checkpoint + truncation).  A checksum
    mismatch or an unparseable complete line is *corruption*, counted in
    ``corruptions`` with the typed error kept in ``last_corruption``, and
    reported as a gap.  The one exception: a parse failure on the very
    first line of a mid-file read, where our remembered offset itself may
    simply no longer point at a record boundary (truncation raced
    regrowth past our position) — that is a plain resync gap, not
    corruption.

    ``decode`` converts each op-tagged list element back into an object;
    the default decodes workload updates.  Shards tail the label-delta
    journal with their own codec (:func:`repro.shard.decode_label_op`).
    """

    def __init__(self, path, after_seq=0, expect_backend=None,
                 decode=decode_update):
        self.path = path
        self.last_seq = after_seq
        self.expect_backend = expect_backend
        self._decode = decode
        self._offset = 0
        self._saw_stamped = False
        self.corruptions = 0
        self.last_corruption = None

    def poll(self):
        """Return ``(new_records, gap)`` — see the class docstring."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            # Not written yet is an empty stream; vanished after we read
            # from it means the log we were following is gone.
            return [], self._offset > 0
        if size < self._offset:
            # Compacted beneath us: rescan from the head.  The compaction
            # marker decides below whether we only skip already-applied
            # records (caught up: no gap) or must re-bootstrap (lagging).
            self._offset = 0
        if size == self._offset:
            return [], False
        with open(self.path, "rb") as f:
            f.seek(self._offset)
            data = f.read(size - self._offset)
        end = data.rfind(b"\n")
        if end < 0:
            return [], False  # only a torn tail so far; poll again later
        complete = data[:end + 1]
        records = []
        consumed = 0
        first_line = True
        for raw in complete.splitlines(keepends=True):
            where = f"{self.path} (tail offset {self._offset + consumed})"
            try:
                payload = json.loads(raw)
                seq = payload["seq"]
                _check_stamp_continuity(payload, self._saw_stamped, where)
                self._saw_stamped = self._saw_stamped or "crc" in payload
                # Checksum before the backend-family check — see read_wal.
                verify_record_crc(payload, where)
                check_record_backend(payload, self.expect_backend, where)
                encoded = payload["updates"]
                updates = (
                    [self._decode(rec) for rec in encoded]
                    if seq > self.last_seq else []
                )
            except CheckpointMismatchError:
                raise
            except WalCorruptionError as exc:
                self.corruptions += 1
                self.last_corruption = exc
                return records, True
            except (ValueError, KeyError, TypeError, ServeError) as exc:
                if first_line and self._offset > 0:
                    # Our remembered offset may simply no longer point at
                    # a record boundary (truncation raced regrowth past
                    # our position) — a plain resync via re-bootstrap,
                    # not evidence of corrupted durable bytes.
                    return records, True
                # A complete newline-terminated line at a true boundary
                # failed to parse: durable bytes were damaged in place.
                corruption = WalCorruptionError(
                    f"corrupt record at {where}: {raw[:80]!r}"
                )
                corruption.__cause__ = exc
                self.corruptions += 1
                self.last_corruption = corruption
                return records, True
            first_line = False
            if seq > self.last_seq and not encoded:
                # A compaction marker past our position: the real records
                # up to ``seq`` exist only in the checkpoint now.  Never
                # apply it — even at seq == last + 1 it stands in for a
                # batch whose updates were truncated away.
                return records, True
            consumed += len(raw)
            if seq <= self.last_seq:
                continue  # already covered by the bootstrap checkpoint
            if seq != self.last_seq + 1:
                return records, True  # records were compacted away
            records.append((seq, updates))
            self.last_seq = seq
        self._offset += consumed
        return records, False

    @property
    def position(self):
        """Byte offset of the next unread record (monitoring only)."""
        return self._offset

    def __repr__(self):
        return (
            f"WalTailer(path={self.path!r}, last_seq={self.last_seq}, "
            f"offset={self._offset})"
        )
