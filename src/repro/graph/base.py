"""Shared helpers for the graph substrates.

The graph classes in this package are intentionally small and explicit: they
are the mutable substrate underneath the SPC-Index, so the operations the
paper's update algorithms rely on (neighbor iteration, degree lookup, edge
insertion/deletion) must be obvious and cheap.
"""

from repro.exceptions import SelfLoop, VertexNotFound


def normalize_edge(u, v):
    """Return the canonical (min, max) form of an undirected edge.

    Canonicalizing lets sets of undirected edges be compared and hashed
    without worrying about endpoint order: ``(u, v) == (v, u)``.
    """
    return (u, v) if u <= v else (v, u)


def check_endpoints_distinct(u, v):
    """Raise :class:`SelfLoop` if ``u == v`` (the paper's graphs are simple)."""
    if u == v:
        raise SelfLoop(u)


def check_vertex(adjacency, v):
    """Raise :class:`VertexNotFound` unless ``v`` is a key of ``adjacency``."""
    if v not in adjacency:
        raise VertexNotFound(v)


def degree_histogram(degrees):
    """Return a dict mapping degree -> number of vertices with that degree."""
    histogram = {}
    for d in degrees:
        histogram[d] = histogram.get(d, 0) + 1
    return histogram
