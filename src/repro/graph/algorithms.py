"""Small graph-algorithm toolkit used across the library and the harness.

Connected components (the ESPC verifier needs them to assert that
disconnected pairs answer (inf, 0)), largest-component extraction (dataset
construction), degree statistics and a sampled diameter/effective-diameter
estimate (dataset reporting for the Table 3 analogue).
"""

from collections import deque

from repro.graph.base import degree_histogram
from repro.graph.undirected import Graph


def connected_components(graph):
    """Return a list of vertex sets, one per connected component."""
    seen = set()
    components = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in comp:
                    comp.add(w)
                    queue.append(w)
        seen |= comp
        components.append(comp)
    return components


def largest_component(graph):
    """Return the subgraph induced by the largest connected component.

    Vertex ids are preserved.  The paper's update experiments implicitly
    assume a mostly-connected graph; the dataset registry extracts the giant
    component of each synthetic analogue.
    """
    comps = connected_components(graph)
    if not comps:
        return Graph()
    biggest = max(comps, key=len)
    return induced_subgraph(graph, biggest)


def induced_subgraph(graph, vertices):
    """Return the subgraph induced by ``vertices`` (ids preserved)."""
    keep = set(vertices)
    sub = Graph()
    for v in keep:
        sub.add_vertex(v)
    for u, v in graph.edges():
        if u in keep and v in keep:
            sub.add_edge(u, v)
    return sub


def is_connected(graph):
    """Return True if the graph has exactly one connected component."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def bfs_eccentricity(graph, source):
    """Return the eccentricity of ``source`` within its component."""
    dist = {source: 0}
    queue = deque([source])
    ecc = 0
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                ecc = dist[w]
                queue.append(w)
    return ecc


def approximate_diameter(graph, samples=8, seed=0):
    """Lower-bound the diameter by double-sweep BFS from sampled sources."""
    import random

    vertices = list(graph.vertices())
    if not vertices:
        return 0
    rng = random.Random(seed)
    best = 0
    for _ in range(samples):
        start = rng.choice(vertices)
        # Double sweep: BFS to the farthest vertex, then BFS again from it.
        far, _ = _farthest(graph, start)
        _, ecc = _farthest(graph, far)
        best = max(best, ecc)
    return best


def _farthest(graph, source):
    dist = {source: 0}
    queue = deque([source])
    far, ecc = source, 0
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                if dist[w] > ecc:
                    ecc = dist[w]
                    far = w
                queue.append(w)
    return far, ecc


def degree_stats(graph):
    """Return a dict with min/max/mean degree and the degree histogram."""
    degs = list(graph.degrees().values())
    if not degs:
        return {"min": 0, "max": 0, "mean": 0.0, "histogram": {}}
    return {
        "min": min(degs),
        "max": max(degs),
        "mean": sum(degs) / len(degs),
        "histogram": degree_histogram(degs),
    }
