"""Edge-list I/O in the format used by SNAP / Konect dumps.

Files are whitespace-separated ``u v`` (or ``u v w`` for weighted graphs)
lines; lines starting with ``#`` or ``%`` are comments.  Directed inputs can
be converted to undirected on read, as the paper does ("all graphs are
undirected or converted to undirected").
"""

from repro.exceptions import GraphError
from repro.graph.directed import DiGraph
from repro.graph.undirected import Graph
from repro.graph.weighted import WeightedGraph

_COMMENT_PREFIXES = ("#", "%")


def _parse_lines(lines):
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        yield lineno, line.split()


def read_edge_list(path, directed=False):
    """Read an edge list file into a :class:`Graph` (or :class:`DiGraph`).

    Undirected reads deduplicate repeated edges and drop self-loops, since
    SNAP dumps of directed graphs list both arc directions.
    """
    g = DiGraph() if directed else Graph()
    with open(path) as f:
        for lineno, parts in _parse_lines(f):
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {parts!r}")
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            g.add_vertex(u, exist_ok=True)
            g.add_vertex(v, exist_ok=True)
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    return g


def read_weighted_edge_list(path):
    """Read a ``u v w`` edge list into a :class:`WeightedGraph`."""
    g = WeightedGraph()
    with open(path) as f:
        for lineno, parts in _parse_lines(f):
            if len(parts) < 3:
                raise GraphError(f"{path}:{lineno}: expected 'u v w', got {parts!r}")
            u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
            if u == v:
                continue
            g.add_vertex(u, exist_ok=True)
            g.add_vertex(v, exist_ok=True)
            if not g.has_edge(u, v):
                g.add_edge(u, v, w)
    return g


def write_edge_list(graph, path, header=None):
    """Write a graph to an edge-list file (one canonical line per edge)."""
    with open(path, "w") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        if isinstance(graph, WeightedGraph):
            for u, v, w in sorted(graph.edges()):
                f.write(f"{u} {v} {w}\n")
        else:
            for u, v in sorted(graph.edges()):
                f.write(f"{u} {v}\n")
