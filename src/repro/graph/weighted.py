"""Undirected weighted graph — substrate for the Appendix C.2 extension.

``WeightedGraph`` stores adjacency as ``dict[vertex, dict[vertex, weight]]``.
Weights must be positive (Dijkstra-based labeling requires non-negative edge
weights; zero weights would make "shortest path counting" ill-defined because
ties explode).
"""

from repro.exceptions import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    GraphError,
    VertexNotFound,
)
from repro.graph.base import check_endpoints_distinct, normalize_edge


class WeightedGraph:
    """A mutable, undirected, positively-weighted, simple graph.

    Example
    -------
    >>> g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 0.5)])
    >>> g.weight(0, 1)
    2.0
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self):
        self._adj = {}
        self._num_edges = 0

    @classmethod
    def from_edges(cls, edges, vertices=()):
        """Build a weighted graph from (u, v, w) triples."""
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for u, v, w in edges:
            g.add_vertex(u, exist_ok=True)
            g.add_vertex(v, exist_ok=True)
            g.add_edge(u, v, w)
        return g

    def copy(self):
        """Return an independent deep copy of this graph."""
        g = WeightedGraph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    # ------------------------------------------------------------------
    # Size and membership
    # ------------------------------------------------------------------

    @property
    def num_vertices(self):
        """n — the number of vertices."""
        return len(self._adj)

    @property
    def num_edges(self):
        """m — the number of edges."""
        return self._num_edges

    def __contains__(self, v):
        return v in self._adj

    def __len__(self):
        return len(self._adj)

    def __iter__(self):
        return iter(self._adj)

    def vertices(self):
        """Iterate over all vertex ids."""
        return iter(self._adj)

    def edges(self):
        """Iterate over all edges once each as (u, v, weight) triples."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u <= v:
                    yield (u, v, w)

    def has_vertex(self, v):
        """Return True if ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u, v):
        """Return True if the edge (u, v) exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------

    def neighbors(self, v):
        """Return the live dict {neighbor: weight} of ``v``."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def weight(self, u, v):
        """Return the weight of edge (u, v); raises if the edge is absent."""
        if u not in self._adj:
            raise VertexNotFound(u)
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFound(u, v) from None

    def degree(self, v):
        """Return deg(v), the number of incident edges."""
        return len(self.neighbors(v))

    def degrees(self):
        """Return a dict mapping every vertex to its degree."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, v, exist_ok=False):
        """Insert an isolated vertex ``v``."""
        if v in self._adj:
            if exist_ok:
                return
            raise DuplicateVertex(v)
        self._adj[v] = {}

    def remove_vertex(self, v):
        """Delete vertex ``v`` with incident edges; returns removed triples."""
        try:
            nbrs = self._adj.pop(v)
        except KeyError:
            raise VertexNotFound(v) from None
        removed = [normalize_edge(v, u) + (w,) for u, w in nbrs.items()]
        for u in nbrs:
            self._adj[u].pop(v, None)
        self._num_edges -= len(nbrs)
        return removed

    def add_edge(self, u, v, weight):
        """Insert edge (u, v) with a positive ``weight``."""
        check_endpoints_distinct(u, v)
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        if v in self._adj[u]:
            raise DuplicateEdge(u, v)
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._num_edges += 1

    def set_weight(self, u, v, weight):
        """Change the weight of an existing edge; returns the old weight.

        Weight changes are first-class updates in Appendix C.2: a decrease is
        handled like an insertion, an increase like a deletion.
        """
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        old = self.weight(u, v)
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        return old

    def remove_edge(self, u, v):
        """Delete edge (u, v); returns its weight."""
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        if v not in self._adj[u]:
            raise EdgeNotFound(u, v)
        w = self._adj[u].pop(v)
        self._adj[v].pop(u)
        self._num_edges -= 1
        return w

    def __repr__(self):
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"
