"""Undirected, unweighted, simple graph — the paper's primary substrate (§2.1).

``Graph`` stores adjacency as ``dict[vertex, set[vertex]]``.  Vertices are
arbitrary hashable ids (the library and all examples use ints).  The class
supports the four topological modifications the paper maintains the index
under: vertex insertion/deletion and edge insertion/deletion.
"""

from repro.exceptions import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    VertexNotFound,
)
from repro.graph.base import check_endpoints_distinct, normalize_edge


class Graph:
    """A mutable, undirected, unweighted, simple graph.

    Example
    -------
    >>> g = Graph.from_edges([(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self):
        self._adj = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges, vertices=()):
        """Build a graph from an iterable of (u, v) pairs.

        Endpoints are added implicitly.  ``vertices`` may list extra isolated
        vertices.  Duplicate edges raise :class:`DuplicateEdge` so silently
        mis-specified inputs are caught early.
        """
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for u, v in edges:
            g.add_vertex(u, exist_ok=True)
            g.add_vertex(v, exist_ok=True)
            g.add_edge(u, v)
        return g

    def copy(self):
        """Return an independent deep copy of this graph."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    # ------------------------------------------------------------------
    # Size and membership
    # ------------------------------------------------------------------

    @property
    def num_vertices(self):
        """n — the number of vertices."""
        return len(self._adj)

    @property
    def num_edges(self):
        """m — the number of edges."""
        return self._num_edges

    def __contains__(self, v):
        return v in self._adj

    def __len__(self):
        return len(self._adj)

    def __iter__(self):
        return iter(self._adj)

    def vertices(self):
        """Iterate over all vertex ids (no particular order)."""
        return iter(self._adj)

    def edges(self):
        """Iterate over all edges once each, as canonical (min, max) pairs."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u <= v:
                    yield (u, v)

    def has_vertex(self, v):
        """Return True if ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u, v):
        """Return True if the undirected edge (u, v) exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------

    def neighbors(self, v):
        """Return the neighbor set nbr(v).  The returned set is live: do not
        mutate it; callers that need a snapshot should copy it."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def degree(self, v):
        """Return deg(v), the number of edges incident to ``v``."""
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def degrees(self):
        """Return a dict mapping every vertex to its degree."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, v, exist_ok=False):
        """Insert an isolated vertex ``v``.

        Raises :class:`DuplicateVertex` when the id already exists, unless
        ``exist_ok`` is set.
        """
        if v in self._adj:
            if exist_ok:
                return
            raise DuplicateVertex(v)
        self._adj[v] = set()

    def remove_vertex(self, v):
        """Delete vertex ``v`` and all its incident edges.

        Returns the list of removed edges so callers (e.g. the dynamic index
        facade) can replay them as individual edge deletions.
        """
        try:
            nbrs = self._adj.pop(v)
        except KeyError:
            raise VertexNotFound(v) from None
        removed = [normalize_edge(v, u) for u in nbrs]
        for u in nbrs:
            self._adj[u].discard(v)
        self._num_edges -= len(nbrs)
        return removed

    def add_edge(self, u, v):
        """Insert the undirected edge (u, v).

        Both endpoints must already exist.  Self-loops and duplicate edges
        raise; the SPC-Index update algorithms assume simple graphs.
        """
        check_endpoints_distinct(u, v)
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        if v in self._adj[u]:
            raise DuplicateEdge(u, v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u, v):
        """Delete the undirected edge (u, v); raises :class:`EdgeNotFound`."""
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        if v not in self._adj[u]:
            raise EdgeNotFound(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Dunder / debugging
    # ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self):
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
