"""Synthetic graph generators.

The paper evaluates on ten real graphs (SNAP / Konect / LAW).  Those are not
available offline, so the dataset registry (``repro.datasets``) builds
synthetic analogues from the generator families below.  All generators are
deterministic given a ``seed`` and return :class:`repro.graph.Graph` (or the
directed/weighted variants where noted).

Families provided:

* ``erdos_renyi`` — G(n, m) uniform random graphs.
* ``barabasi_albert`` — preferential attachment; heavy-tailed degrees like
  the paper's e-mail / social graphs.
* ``watts_strogatz`` — small-world rewired ring lattices.
* ``powerlaw_cluster`` — preferential attachment with triad closure; high
  clustering like web graphs (NotreDame, Stanford, Google, BerkStan).
* ``random_tree`` — uniform random labeled trees (Prüfer sequences).
* ``grid_graph`` — 2D lattices, an analogue for road-like graphs.
* ``star_graph`` / ``path_graph`` / ``cycle_graph`` / ``complete_graph`` —
  tiny deterministic shapes used heavily in tests.
"""

import random

from repro.exceptions import GraphError
from repro.graph.directed import DiGraph
from repro.graph.undirected import Graph
from repro.graph.weighted import WeightedGraph


def _check_positive(n, name="n"):
    if n <= 0:
        raise GraphError(f"{name} must be positive, got {n}")


def erdos_renyi(n, m, seed=0):
    """Uniform random simple graph with ``n`` vertices and ``m`` edges.

    Sampling is rejection-based over vertex pairs, so ``m`` must not exceed
    n*(n-1)/2.
    """
    _check_positive(n)
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise GraphError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


def barabasi_albert(n, attach=3, seed=0):
    """Preferential-attachment scale-free graph.

    Starts from a clique on ``attach + 1`` vertices; every later vertex
    attaches to ``attach`` distinct existing vertices chosen proportionally
    to degree (implemented with the standard repeated-endpoints urn).
    """
    _check_positive(n)
    if attach < 1:
        raise GraphError(f"attach must be >= 1, got {attach}")
    core = attach + 1
    if n < core:
        raise GraphError(f"n={n} too small for attach={attach}")
    rng = random.Random(seed)
    g = Graph()
    urn = []
    for v in range(core):
        g.add_vertex(v)
    for u in range(core):
        for v in range(u + 1, core):
            g.add_edge(u, v)
            urn.append(u)
            urn.append(v)
    for v in range(core, n):
        g.add_vertex(v)
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(urn))
        for t in targets:
            g.add_edge(v, t)
            urn.append(v)
            urn.append(t)
    return g


def watts_strogatz(n, k=4, rewire_prob=0.1, seed=0):
    """Small-world graph: ring lattice with ``k`` nearest neighbors, rewired.

    ``k`` must be even and < n.  Rewiring keeps the graph simple; a rewire
    that would duplicate an edge or create a loop is skipped (the common
    implementation choice, also used by networkx).
    """
    _check_positive(n)
    if k % 2 != 0 or k >= n:
        raise GraphError(f"k must be even and < n, got k={k}, n={n}")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            u = (v + j) % n
            if not g.has_edge(v, u):
                g.add_edge(v, u)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            u = (v + j) % n
            if rng.random() < rewire_prob and g.has_edge(v, u):
                w = rng.randrange(n)
                if w != v and not g.has_edge(v, w):
                    g.remove_edge(v, u)
                    g.add_edge(v, w)
    return g


def powerlaw_cluster(n, attach=3, triangle_prob=0.5, seed=0):
    """Holme–Kim model: preferential attachment plus triad formation.

    Produces heavy-tailed degree distributions *and* high clustering, which
    makes it the closest stand-in for the paper's web graphs.
    """
    _check_positive(n)
    if attach < 1:
        raise GraphError(f"attach must be >= 1, got {attach}")
    core = attach + 1
    if n < core:
        raise GraphError(f"n={n} too small for attach={attach}")
    rng = random.Random(seed)
    g = Graph()
    urn = []
    for v in range(core):
        g.add_vertex(v)
    for u in range(core):
        for v in range(u + 1, core):
            g.add_edge(u, v)
            urn.append(u)
            urn.append(v)
    for v in range(core, n):
        g.add_vertex(v)
        added = 0
        last_target = None
        guard = 0
        while added < attach and guard < 100 * attach:
            guard += 1
            if last_target is not None and rng.random() < triangle_prob:
                # Triad step: close a triangle through a neighbor of the
                # previous target when possible.
                candidates = [w for w in g.neighbors(last_target) if w != v and not g.has_edge(v, w)]
                if candidates:
                    t = rng.choice(candidates)
                else:
                    t = rng.choice(urn)
            else:
                t = rng.choice(urn)
            if t == v or g.has_edge(v, t):
                continue
            g.add_edge(v, t)
            urn.append(v)
            urn.append(t)
            last_target = t
            added += 1
    return g


def random_tree(n, seed=0):
    """Uniform random labeled tree on ``n`` vertices via a Prüfer sequence."""
    _check_positive(n)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    if n == 1:
        return g
    if n == 2:
        g.add_edge(0, 1)
        return g
    rng = random.Random(seed)
    pruefer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in pruefer:
        degree[v] += 1
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in pruefer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def grid_graph(rows, cols, diagonal_prob=0.0, seed=0):
    """2D lattice with optional random diagonal shortcuts (road-like)."""
    _check_positive(rows, "rows")
    _check_positive(cols, "cols")
    rng = random.Random(seed)
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex(r * cols + c)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
            if diagonal_prob > 0 and r + 1 < rows and c + 1 < cols:
                if rng.random() < diagonal_prob:
                    g.add_edge(v, v + cols + 1)
    return g


def star_graph(n):
    """Star with center 0 and ``n - 1`` leaves."""
    _check_positive(n)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def path_graph(n):
    """Path 0 - 1 - ... - (n-1)."""
    _check_positive(n)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def cycle_graph(n):
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError(f"a cycle needs n >= 3, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n):
    """Clique on ``n`` vertices."""
    _check_positive(n)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def complete_bipartite(a, b):
    """Complete bipartite graph K_{a,b} (parts 0..a-1 and a..a+b-1)."""
    _check_positive(a, "a")
    _check_positive(b, "b")
    g = Graph()
    for v in range(a + b):
        g.add_vertex(v)
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v)
    return g


def random_directed(n, m, seed=0):
    """Uniform random simple digraph with ``n`` vertices and ``m`` arcs."""
    _check_positive(n)
    max_arcs = n * (n - 1)
    if m > max_arcs:
        raise GraphError(f"m={m} exceeds the maximum {max_arcs} for n={n}")
    rng = random.Random(seed)
    g = DiGraph()
    for v in range(n):
        g.add_vertex(v)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


def directed_scale_free(n, attach=2, seed=0):
    """Directed preferential-attachment graph (arcs point to popular nodes)."""
    _check_positive(n)
    core = attach + 1
    if n < core:
        raise GraphError(f"n={n} too small for attach={attach}")
    rng = random.Random(seed)
    g = DiGraph()
    urn = []
    for v in range(core):
        g.add_vertex(v)
    for u in range(core):
        for v in range(core):
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
                urn.append(v)
    for v in range(core, n):
        g.add_vertex(v)
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(urn))
        for t in targets:
            g.add_edge(v, t)
            urn.append(t)
        # Occasionally add a back-arc so the graph is not a DAG.
        if rng.random() < 0.3:
            s = rng.choice(urn)
            if s != v and not g.has_edge(s, v):
                g.add_edge(s, v)
    return g


def random_weighted(n, m, max_weight=10, seed=0, integer_weights=True):
    """Uniform random weighted graph; weights in [1, max_weight]."""
    base = erdos_renyi(n, m, seed=seed)
    rng = random.Random(seed + 1)
    g = WeightedGraph()
    for v in base.vertices():
        g.add_vertex(v)
    for u, v in base.edges():
        if integer_weights:
            w = rng.randint(1, max_weight)
        else:
            w = rng.uniform(0.5, float(max_weight))
        g.add_edge(u, v, w)
    return g
