"""Directed, unweighted, simple graph — substrate for the Appendix C.1 extension.

``DiGraph`` stores separate out- and in-adjacency so the directed SPC-Index
can run forward BFS (over out-edges) and backward BFS (over in-edges) without
rebuilding reverse adjacency on the fly.
"""

from repro.exceptions import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    VertexNotFound,
)
from repro.graph.base import check_endpoints_distinct


class DiGraph:
    """A mutable, directed, unweighted, simple graph.

    Example
    -------
    >>> g = DiGraph.from_edges([(0, 1), (1, 2)])
    >>> sorted(g.successors(1)), sorted(g.predecessors(1))
    ([2], [0])
    """

    __slots__ = ("_succ", "_pred", "_num_edges")

    def __init__(self):
        self._succ = {}
        self._pred = {}
        self._num_edges = 0

    @classmethod
    def from_edges(cls, edges, vertices=()):
        """Build a digraph from (u, v) pairs meaning the arc u -> v."""
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for u, v in edges:
            g.add_vertex(u, exist_ok=True)
            g.add_vertex(v, exist_ok=True)
            g.add_edge(u, v)
        return g

    def copy(self):
        """Return an independent deep copy of this digraph."""
        g = DiGraph()
        g._succ = {v: set(s) for v, s in self._succ.items()}
        g._pred = {v: set(p) for v, p in self._pred.items()}
        g._num_edges = self._num_edges
        return g

    def to_undirected(self):
        """Return the undirected projection (each arc becomes an edge once)."""
        from repro.graph.undirected import Graph

        g = Graph()
        for v in self._succ:
            g.add_vertex(v)
        seen = set()
        for u, succs in self._succ.items():
            for v in succs:
                key = (u, v) if u <= v else (v, u)
                if key not in seen and u != v:
                    seen.add(key)
                    g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Size and membership
    # ------------------------------------------------------------------

    @property
    def num_vertices(self):
        """n — the number of vertices."""
        return len(self._succ)

    @property
    def num_edges(self):
        """m — the number of directed arcs."""
        return self._num_edges

    def __contains__(self, v):
        return v in self._succ

    def __len__(self):
        return len(self._succ)

    def __iter__(self):
        return iter(self._succ)

    def vertices(self):
        """Iterate over all vertex ids."""
        return iter(self._succ)

    def edges(self):
        """Iterate over all arcs as (u, v) pairs (u -> v)."""
        for u, succs in self._succ.items():
            for v in succs:
                yield (u, v)

    def has_vertex(self, v):
        """Return True if ``v`` is a vertex of the digraph."""
        return v in self._succ

    def has_edge(self, u, v):
        """Return True if the arc u -> v exists."""
        succs = self._succ.get(u)
        return succs is not None and v in succs

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------

    def successors(self, v):
        """Return the live set of w with an arc v -> w."""
        try:
            return self._succ[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def predecessors(self, v):
        """Return the live set of u with an arc u -> v."""
        try:
            return self._pred[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def out_degree(self, v):
        """Number of outgoing arcs of ``v``."""
        return len(self.successors(v))

    def in_degree(self, v):
        """Number of incoming arcs of ``v``."""
        return len(self.predecessors(v))

    def degree(self, v):
        """Total degree (in + out) — used by degree-based vertex ordering."""
        return self.out_degree(v) + self.in_degree(v)

    def degrees(self):
        """Return a dict mapping every vertex to in-degree + out-degree."""
        return {v: len(self._succ[v]) + len(self._pred[v]) for v in self._succ}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, v, exist_ok=False):
        """Insert an isolated vertex ``v``."""
        if v in self._succ:
            if exist_ok:
                return
            raise DuplicateVertex(v)
        self._succ[v] = set()
        self._pred[v] = set()

    def remove_vertex(self, v):
        """Delete vertex ``v`` with all incident arcs; returns removed arcs."""
        if v not in self._succ:
            raise VertexNotFound(v)
        removed = [(v, w) for w in self._succ[v]]
        removed.extend((u, v) for u in self._pred[v])
        for w in self._succ.pop(v):
            self._pred[w].discard(v)
        for u in self._pred.pop(v):
            self._succ[u].discard(v)
        self._num_edges -= len(removed)
        return removed

    def add_edge(self, u, v):
        """Insert the arc u -> v (endpoints must exist; no loops/duplicates)."""
        check_endpoints_distinct(u, v)
        if u not in self._succ:
            raise VertexNotFound(u)
        if v not in self._succ:
            raise VertexNotFound(v)
        if v in self._succ[u]:
            raise DuplicateEdge(u, v)
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u, v):
        """Delete the arc u -> v; raises :class:`EdgeNotFound` if absent."""
        if u not in self._succ:
            raise VertexNotFound(u)
        if v not in self._succ:
            raise VertexNotFound(v)
        if v not in self._succ[u]:
            raise EdgeNotFound(u, v)
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._num_edges -= 1

    def __repr__(self):
        return f"DiGraph(n={self.num_vertices}, m={self.num_edges})"
