"""Graph substrates: undirected, directed and weighted simple graphs,
synthetic generators, edge-list I/O, and a small algorithm toolkit."""

from repro.graph.algorithms import (
    approximate_diameter,
    connected_components,
    degree_stats,
    induced_subgraph,
    is_connected,
    largest_component,
)
from repro.graph.directed import DiGraph
from repro.graph.generators import (
    barabasi_albert,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    directed_scale_free,
    erdos_renyi,
    grid_graph,
    path_graph,
    powerlaw_cluster,
    random_directed,
    random_tree,
    random_weighted,
    star_graph,
    watts_strogatz,
)
from repro.graph.io import read_edge_list, read_weighted_edge_list, write_edge_list
from repro.graph.undirected import Graph
from repro.graph.weighted import WeightedGraph

__all__ = [
    "Graph",
    "DiGraph",
    "WeightedGraph",
    "connected_components",
    "largest_component",
    "induced_subgraph",
    "is_connected",
    "approximate_diameter",
    "degree_stats",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_cluster",
    "random_tree",
    "grid_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "complete_bipartite",
    "random_directed",
    "directed_scale_free",
    "random_weighted",
    "read_edge_list",
    "read_weighted_edge_list",
    "write_edge_list",
]
