"""Vertex orderings — the total order ≤ that hub labeling is built on (§2.2).

The paper (following Zhang & Yu's HP-SPC) ranks vertices by descending
degree: high-degree vertices lie on more shortest paths, so ranking them
higher lets later pruned BFSs terminate earlier.  ``VertexOrder`` freezes a
total order and provides O(1) rank lookup in both directions; the SPC-Index
stores label hubs as rank numbers, so ranks must stay stable across updates —
new vertices are *appended* (lowest rank), matching the paper's treatment of
vertex insertion.
"""

import random as _random

from repro.exceptions import OrderingError


class VertexOrder:
    """An immutable-except-append total order over vertex ids.

    ``order[r]`` is the vertex with rank ``r`` (rank 0 = highest rank, i.e.
    the minimum of the paper's ≤ relation).  ``rank_of[v]`` inverts it.

    Example
    -------
    >>> order = VertexOrder([2, 0, 1])
    >>> order.rank(2), order.vertex(0)
    (0, 2)
    >>> order.higher(2, 1)   # is 2 ranked higher than 1?
    True
    """

    __slots__ = ("_order", "_rank")

    #: sentinel stored in a rank slot whose vertex was removed; rank numbers
    #: are never recycled so labels referencing other ranks stay valid.
    TOMBSTONE = None

    def __init__(self, vertices):
        self._order = list(vertices)
        self._rank = {}
        for r, v in enumerate(self._order):
            if v is self.TOMBSTONE:
                continue
            if v in self._rank:
                raise OrderingError(f"vertex {v!r} appears twice in the order")
            self._rank[v] = r

    def __len__(self):
        """Number of live vertices (tombstoned slots excluded)."""
        return len(self._rank)

    def __contains__(self, v):
        return v in self._rank

    def __iter__(self):
        """Iterate live vertices from highest rank to lowest."""
        return (v for v in self._order if v is not self.TOMBSTONE)

    def rank(self, v):
        """Return the rank number of ``v`` (0 = highest)."""
        try:
            return self._rank[v]
        except KeyError:
            raise OrderingError(f"vertex {v!r} is not in the order") from None

    def vertex(self, r):
        """Return the vertex with rank number ``r``."""
        try:
            v = self._order[r]
        except IndexError:
            raise OrderingError(f"rank {r} out of range") from None
        if v is self.TOMBSTONE:
            raise OrderingError(f"rank {r} belongs to a removed vertex")
        return v

    def higher(self, u, v):
        """Return True if u ≤ v in the paper's notation (u ranks higher)."""
        return self.rank(u) <= self.rank(v)

    def append(self, v):
        """Append ``v`` with the lowest rank; returns its rank number.

        This is how vertex insertion is ranked: a newly added vertex has no
        structural importance yet, so it goes last.  Existing ranks are
        untouched, keeping all stored labels valid.  A previously removed id
        may return — it gets a fresh lowest rank, not its old one.
        """
        if v is self.TOMBSTONE:
            raise OrderingError("None cannot be used as a vertex id")
        if v in self._rank:
            raise OrderingError(f"vertex {v!r} is already in the order")
        r = len(self._order)
        self._order.append(v)
        self._rank[v] = r
        return r

    def remove(self, v):
        """Tombstone ``v``'s rank slot; returns the freed rank number.

        The slot is never reused: other vertices' ranks — and therefore all
        hub references in stored labels — are unaffected.
        """
        r = self._rank.pop(v, None)
        if r is None:
            raise OrderingError(f"vertex {v!r} is not in the order")
        self._order[r] = self.TOMBSTONE
        return r

    def as_list(self):
        """Return the live vertices as a list (rank 0 first)."""
        return [v for v in self._order if v is not self.TOMBSTONE]

    def as_raw_list(self):
        """Return all rank slots including tombstones (for serialization)."""
        return list(self._order)

    def rank_map(self):
        """Return the internal {vertex: rank} dict for hot loops.

        Treat the result as read-only: it is the live mapping, shared so BFS
        inner loops can avoid per-lookup method-call overhead.
        """
        return self._rank


def degree_order(graph):
    """Degree-based ordering: descending degree, ties broken by vertex id.

    This is the ordering the paper adopts ("the degree-based ordering ...
    is adopted in our work").
    """
    return VertexOrder(sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v)))


def natural_order(graph):
    """Order vertices by their id — used by the paper-example tests, where
    the prescribed order is v0 ≤ v1 ≤ ... ≤ v11."""
    return VertexOrder(sorted(graph.vertices()))


def random_order(graph, seed=0):
    """Uniformly random ordering — the ablation baseline for Table 4."""
    vertices = sorted(graph.vertices())
    _random.Random(seed).shuffle(vertices)
    return VertexOrder(vertices)


def make_order(graph, strategy="degree", seed=0):
    """Build a :class:`VertexOrder` by strategy name.

    ``strategy`` is one of ``"degree"`` (paper default), ``"natural"``,
    ``"random"``, or an explicit list of vertices.
    """
    if isinstance(strategy, (list, tuple)):
        order = VertexOrder(strategy)
        missing = [v for v in graph.vertices() if v not in order]
        if missing:
            raise OrderingError(f"explicit order is missing vertices: {missing[:5]}")
        if len(order) != graph.num_vertices:
            raise OrderingError("explicit order has extra vertices")
        return order
    if strategy == "degree":
        return degree_order(graph)
    if strategy == "natural":
        return natural_order(graph)
    if strategy == "random":
        return random_order(graph, seed=seed)
    raise OrderingError(f"unknown ordering strategy {strategy!r}")
