"""Vertex-ordering strategies for hub labeling, and drift diagnostics."""

from repro.order.drift import (
    degree_rank_map,
    drift_report,
    rank_displacement,
    sampled_inversions,
)
from repro.order.ordering import (
    VertexOrder,
    degree_order,
    make_order,
    natural_order,
    random_order,
)

__all__ = [
    "VertexOrder",
    "degree_order",
    "natural_order",
    "random_order",
    "make_order",
    "degree_rank_map",
    "rank_displacement",
    "sampled_inversions",
    "drift_report",
]
