"""Ordering drift: when is the frozen vertex order stale? (paper §6)

The paper's limitations section: "the initial vertex ordering may become
irrelevant after a series of updates ... One possible solution is to use the
lazy strategy, i.e., reconstructing the entire index after a certain number
of updates."  This module makes the lazy strategy *measured* instead of
blind: it quantifies how far the frozen order has drifted from the order
degree-ranking would choose today, so a rebuild policy can trigger on actual
drift rather than an update counter.

Drift is summarized two ways:

* ``rank_displacement`` — mean |frozen rank − current degree rank| / n,
  in [0, 1): 0 means the frozen order is still exactly degree-sorted;
* ``weighted_inversions`` — the fraction of sampled vertex pairs ordered
  against their current degrees (a sampled Kendall-tau distance).
"""

import random


def degree_rank_map(graph):
    """Ranks the *current* degree ordering would assign (desc degree, id)."""
    ordered = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    return {v: r for r, v in enumerate(ordered)}


def rank_displacement(graph, order):
    """Mean normalized displacement between frozen and current ranks.

    Only vertices present in both the graph and the order participate
    (vertices added later hold low ranks by construction and count like any
    other).  Returns 0.0 for empty graphs.
    """
    current = degree_rank_map(graph)
    frozen = order.rank_map()
    common = [v for v in current if v in frozen]
    if not common:
        return 0.0
    # Re-densify the frozen ranks over the common vertices so tombstoned
    # slots don't inflate displacement.
    frozen_sorted = sorted(common, key=lambda v: frozen[v])
    frozen_dense = {v: r for r, v in enumerate(frozen_sorted)}
    n = len(common)
    total = sum(abs(frozen_dense[v] - current[v]) for v in common)
    return total / (n * n / 2)


def sampled_inversions(graph, order, samples=1000, seed=0):
    """Fraction of sampled pairs where the frozen order contradicts degrees.

    A pair (u, v) is inverted when u is frozen-ranked above v but has
    strictly smaller current degree.  Pairs with equal degrees never count.
    """
    vertices = [v for v in graph.vertices() if v in order]
    if len(vertices) < 2:
        return 0.0
    rng = random.Random(seed)
    rank = order.rank_map()
    inverted = 0
    counted = 0
    for _ in range(samples):
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        if u == v:
            continue
        du, dv = graph.degree(u), graph.degree(v)
        if du == dv:
            continue
        counted += 1
        higher_frozen = u if rank[u] < rank[v] else v
        higher_degree = u if du > dv else v
        if higher_frozen != higher_degree:
            inverted += 1
    return inverted / counted if counted else 0.0


def drift_report(graph, order, samples=1000, seed=0):
    """Bundle both drift metrics with a rebuild recommendation.

    The threshold (inversions > 0.25) is a heuristic: random orderings
    measure ~0.5, fresh degree orderings ~0.0; past a quarter of pairs
    inverted, the pruning quality degrades measurably (see the ordering
    ablation bench).
    """
    inv = sampled_inversions(graph, order, samples=samples, seed=seed)
    disp = rank_displacement(graph, order)
    return {
        "rank_displacement": disp,
        "sampled_inversions": inv,
        "rebuild_recommended": inv > 0.25,
    }
