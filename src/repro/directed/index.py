"""Directed SPC-Index (Appendix C.1): two label sets per vertex.

``L_in(v)`` holds (h, d, c) triples describing the c shortest paths h → v of
length d on which h is the highest-ranked vertex; ``L_out(v)`` describes the
paths v → h.  A query SPC(s, t) merges L_out(s) against L_in(t): a common
hub h contributes paths s → h → t.
"""

from repro.core.labels import ENTRY_BYTES, LabelSet, counting_probe
from repro.exceptions import VertexNotFound
from repro.order import VertexOrder

INF = float("inf")

_NO_HOLDERS = frozenset()


class DirectedSPCIndex:
    """Hub labeling for shortest-path counting on directed graphs.

    Maintains one reverse hub map per label family: ``in_holders(h)`` lists
    the vertices with h in L_in, ``out_holders(h)`` those with h in L_out
    (DESIGN.md §9).
    """

    __slots__ = ("_order", "_lin", "_lout", "_in_holders", "_out_holders",
                 "_dirty")

    def __init__(self, order, with_self_labels=True):
        if not isinstance(order, VertexOrder):
            order = VertexOrder(order)
        self._order = order
        self._lin = {}
        self._lout = {}
        self._in_holders = {}
        self._out_holders = {}
        self._dirty = None
        rank = order.rank_map()
        for v in order:
            lin, lout = LabelSet(), LabelSet()
            lin.bind(self._in_holders, v)
            lout.bind(self._out_holders, v)
            if with_self_labels:
                lin.set(rank[v], 0, 1)
                lout.set(rank[v], 0, 1)
            self._lin[v] = lin
            self._lout[v] = lout

    @property
    def order(self):
        """The total order ≤ the index was built under."""
        return self._order

    def rank(self, v):
        """Rank number of vertex ``v`` (0 = highest)."""
        return self._order.rank(v)

    def __contains__(self, v):
        return v in self._lin

    def vertices(self):
        """Iterate over all indexed vertex ids."""
        return iter(self._lin)

    # ------------------------------------------------------------------
    # Label access
    # ------------------------------------------------------------------

    def in_label_set(self, v):
        """The internal L_in(v) (library use)."""
        try:
            return self._lin[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def out_label_set(self, v):
        """The internal L_out(v) (library use)."""
        try:
            return self._lout[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def in_labels(self, v):
        """L_in(v) in id space: [(hub_vertex, dist, count)]."""
        return [(self._order.vertex(h), d, c) for h, d, c in self.in_label_set(v)]

    def out_labels(self, v):
        """L_out(v) in id space: [(hub_vertex, dist, count)]."""
        return [(self._order.vertex(h), d, c) for h, d, c in self.out_label_set(v)]

    def in_holders(self, hub_rank):
        """Vertices with ``hub_rank`` in their L_in (read-only set)."""
        return self._in_holders.get(hub_rank, _NO_HOLDERS)

    def out_holders(self, hub_rank):
        """Vertices with ``hub_rank`` in their L_out (read-only set)."""
        return self._out_holders.get(hub_rank, _NO_HOLDERS)

    def in_holders_map(self):
        """The internal L_in reverse map {hub_rank: set(vertex)} (read-only)."""
        return self._in_holders

    def out_holders_map(self):
        """The internal L_out reverse map {hub_rank: set(vertex)} (read-only)."""
        return self._out_holders

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, s, t):
        """Return (sd(s→t), spc(s→t)); (inf, 0) when t is unreachable."""
        return _merge(self.out_label_set(s), self.in_label_set(t), None)

    def pre_query_forward(self, h, v):
        """Upper-bound (d̄, c̄) for h → v via hubs ranked strictly above h."""
        return _merge(self.out_label_set(h), self.in_label_set(v),
                      self._order.rank(h))

    def pre_query_backward(self, h, v):
        """Upper-bound (d̄, c̄) for v → h via hubs ranked strictly above h."""
        return _merge(self.out_label_set(v), self.in_label_set(h),
                      self._order.rank(h))

    def distance(self, s, t):
        """Return sd(s→t)."""
        return self.query(s, t)[0]

    def count(self, s, t):
        """Return spc(s→t)."""
        return self.query(s, t)[1]

    def source_probe(self, s, hub_filter=None):
        """Return ``probe(t) -> (sd(s→t), spc(s→t))`` sharing one L_out(s) scan.

        Directed twin of :func:`repro.core.labels.counting_probe`: the
        source dict comes from L_out(s) and each probe scans L_in(t).
        ``hub_filter`` restricts the merge to a hub-rank subset, yielding
        shard-mergeable partial answers.
        """
        return counting_probe(self.out_label_set(s), self.in_label_set,
                              hub_filter)

    def set_dirty_sink(self, sink):
        """Install (or clear) a dirty-vertex sink over both label families."""
        self._dirty = sink
        for ls in self._lin.values():
            ls._sink = sink
        for ls in self._lout.values():
            ls._sink = sink

    # ------------------------------------------------------------------
    # Dynamic-maintenance support / accounting
    # ------------------------------------------------------------------

    def add_vertex(self, v):
        """Register a new isolated vertex with the lowest rank."""
        r = self._order.append(v)
        lin, lout = LabelSet(), LabelSet()
        lin.bind(self._in_holders, v)
        lout.bind(self._out_holders, v)
        lin._sink = self._dirty
        lout._sink = self._dirty
        lin.set(r, 0, 1)
        lout.set(r, 0, 1)
        self._lin[v] = lin
        self._lout[v] = lout
        return r

    def drop_vertex_labels(self, v):
        """Forget both label sets of ``v`` and tombstone its rank.

        Stale entries referencing ``v`` as hub in either label family are
        purged via the reverse hub maps — O(labels of v + holders of v).
        """
        lin = self._lin.get(v)
        if lin is None:
            raise VertexNotFound(v)
        rv = self._order.rank(v)
        lin.clear()
        self._lout[v].clear()
        for u in list(self._in_holders.get(rv, _NO_HOLDERS)):
            self._lin[u].remove(rv)
        for u in list(self._out_holders.get(rv, _NO_HOLDERS)):
            self._lout[u].remove(rv)
        del self._lin[v]
        del self._lout[v]
        self._order.remove(v)

    @property
    def num_entries(self):
        """Total entries across all L_in and L_out sets."""
        return sum(len(ls) for ls in self._lin.values()) + sum(
            len(ls) for ls in self._lout.values()
        )

    @property
    def size_bytes(self):
        """Size under the paper's 8-bytes-per-entry rule."""
        return self.num_entries * ENTRY_BYTES

    def to_dict(self):
        """Return a JSON-serializable snapshot (tombstones become null)."""
        return {
            "order": self._order.as_raw_list(),
            "in_labels": {
                str(v): [[h, d, c] for h, d, c in ls]
                for v, ls in self._lin.items()
            },
            "out_labels": {
                str(v): [[h, d, c] for h, d, c in ls]
                for v, ls in self._lout.items()
            },
        }

    @classmethod
    def from_dict(cls, payload, vertex_type=int):
        """Rebuild an index from :meth:`to_dict` output."""
        index = cls(VertexOrder(payload["order"]), with_self_labels=False)
        for key, entries in payload["in_labels"].items():
            ls = index.in_label_set(vertex_type(key))
            for h, d, c in entries:
                ls.set(h, d, c)
        for key, entries in payload["out_labels"].items():
            ls = index.out_label_set(vertex_type(key))
            for h, d, c in entries:
                ls.set(h, d, c)
        return index

    def copy(self):
        """Return an independent deep copy (reverse hub maps rebuilt)."""
        clone = DirectedSPCIndex(
            VertexOrder(self._order.as_raw_list()), with_self_labels=False
        )
        for v, ls in self._lin.items():
            dup = ls.copy()
            dup.bind(clone._in_holders, v)
            clone._lin[v] = dup
        for v, ls in self._lout.items():
            dup = ls.copy()
            dup.bind(clone._out_holders, v)
            clone._lout[v] = dup
        return clone

    def __repr__(self):
        return f"DirectedSPCIndex(n={len(self._lin)}, entries={self.num_entries})"


def _merge(lout_s, lin_t, stop_rank):
    hubs_s, dists_s, counts_s = lout_s.hubs, lout_s.dists, lout_s.counts
    hubs_t, dists_t, counts_t = lin_t.hubs, lin_t.dists, lin_t.counts
    i, j = 0, 0
    len_s, len_t = len(hubs_s), len(hubs_t)
    best = INF
    count = 0
    while i < len_s and j < len_t:
        hs = hubs_s[i]
        ht = hubs_t[j]
        if hs == ht:
            if stop_rank is not None and hs >= stop_rank:
                break
            d = dists_s[i] + dists_t[j]
            if d < best:
                best = d
                count = counts_s[i] * counts_t[j]
            elif d == best:
                count += counts_s[i] * counts_t[j]
            i += 1
            j += 1
        elif hs < ht:
            i += 1
        else:
            j += 1
    return best, count
