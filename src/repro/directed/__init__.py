"""Directed extension (Appendix C.1): L_in/L_out labeling and its maintenance."""

from repro.directed.builder import build_directed_spc_index
from repro.directed.decremental import dec_spc_directed
from repro.directed.dynamic import DynamicDirectedSPC
from repro.directed.incremental import inc_spc_directed
from repro.directed.index import DirectedSPCIndex

__all__ = [
    "DirectedSPCIndex",
    "build_directed_spc_index",
    "inc_spc_directed",
    "dec_spc_directed",
    "DynamicDirectedSPC",
]
