"""Deprecated facade: ``DynamicDirectedSPC`` is a shim over the engine.

Prefer ``repro.open(digraph)``.  Routing the directed family through
:class:`SPCEngine` also fixes the historical feature skew: rebuild
policies, drift checks, batch coalescing and the full
:class:`UpdateStats` / :class:`StreamStats` reporting now behave exactly
as on the undirected core.
"""

import warnings

import repro.engine.adapters  # noqa: F401  (registers the built-in backends)
from repro.engine.config import EngineConfig
from repro.engine.engine import SPCEngine


class DynamicDirectedSPC(SPCEngine):
    """Deprecated alias for an :class:`SPCEngine` on the directed backend.

    Example
    -------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 2)])
    >>> dyn = DynamicDirectedSPC(g)
    >>> dyn.query(0, 2)
    (2, 1)
    >>> _ = dyn.insert_edge(0, 2)
    >>> dyn.query(0, 2)
    (1, 1)
    """

    def __init__(self, graph, index=None, strategy="degree", rebuild_every=None,
                 rebuild_drift_threshold=None, drift_check_every=50):
        warnings.warn(
            "DynamicDirectedSPC is deprecated; use repro.open(graph) "
            "or repro.engine.SPCEngine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = EngineConfig(
            backend="directed",
            strategy=strategy,
            rebuild_every=rebuild_every,
            rebuild_drift_threshold=rebuild_drift_threshold,
            drift_check_every=drift_check_every,
            cache_size=0,  # legacy facades never cached queries
        )
        super().__init__(graph, config=config, index=index)

    def insert_vertex(self, v, out_edges=(), in_edges=()):
        """Add vertex ``v`` (lowest rank), then its initial arcs."""
        return super().insert_vertex(v, edges=out_edges, in_edges=in_edges)

    def __repr__(self):
        return f"DynamicDirectedSPC(graph={self.graph!r}, index={self.index!r})"
