"""Dynamic facade for directed graphs — mirror of :class:`DynamicSPC`."""

import time

from repro.core.stats import StreamStats, UpdateStats
from repro.directed.builder import build_directed_spc_index
from repro.directed.decremental import dec_spc_directed
from repro.directed.incremental import inc_spc_directed


class DynamicDirectedSPC:
    """A shortest-path-counting oracle over a fully dynamic digraph.

    Example
    -------
    >>> from repro.graph import DiGraph
    >>> g = DiGraph.from_edges([(0, 1), (1, 2)])
    >>> dyn = DynamicDirectedSPC(g)
    >>> dyn.query(0, 2)
    (2, 1)
    >>> _ = dyn.insert_edge(0, 2)
    >>> dyn.query(0, 2)
    (1, 1)
    """

    def __init__(self, graph, index=None, strategy="degree"):
        self._graph = graph
        self._index = (
            index if index is not None
            else build_directed_spc_index(graph, strategy=strategy)
        )
        self._strategy = strategy
        self.history = StreamStats()

    @property
    def graph(self):
        """The underlying digraph."""
        return self._graph

    @property
    def index(self):
        """The maintained directed SPC-Index."""
        return self._index

    def query(self, s, t):
        """Return (sd(s→t), spc(s→t))."""
        return self._index.query(s, t)

    def distance(self, s, t):
        """Return sd(s→t)."""
        return self._index.distance(s, t)

    def count(self, s, t):
        """Return spc(s→t)."""
        return self._index.count(s, t)

    def insert_edge(self, a, b):
        """Insert arc a -> b (endpoints created if missing)."""
        for v in (a, b):
            if not self._graph.has_vertex(v):
                self.insert_vertex(v)
        start = time.perf_counter()
        stats = inc_spc_directed(self._graph, self._index, a, b)
        stats.elapsed = time.perf_counter() - start
        self.history.record(stats)
        return stats

    def delete_edge(self, a, b):
        """Delete arc a -> b."""
        start = time.perf_counter()
        stats = dec_spc_directed(self._graph, self._index, a, b)
        stats.elapsed = time.perf_counter() - start
        self.history.record(stats)
        return stats

    def insert_vertex(self, v, out_edges=(), in_edges=()):
        """Add vertex ``v`` (lowest rank), then its initial arcs.

        Arc insertions are recorded individually; the returned stats
        aggregate the whole operation.
        """
        start = time.perf_counter()
        self._graph.add_vertex(v)
        self._index.add_vertex(v)
        marker = UpdateStats(kind="insert_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self.history.record(marker)
        result = UpdateStats(kind="insert_vertex", edge=(v,))
        result.merge(marker)
        for u in out_edges:
            result.merge(self.insert_edge(v, u))
        for u in in_edges:
            result.merge(self.insert_edge(u, v))
        return result

    def delete_vertex(self, v):
        """Delete vertex ``v``: one arc deletion per incident arc."""
        result = UpdateStats(kind="delete_vertex", edge=(v,))
        for w in list(self._graph.successors(v)):
            result.merge(self.delete_edge(v, w))
        for u in list(self._graph.predecessors(v)):
            result.merge(self.delete_edge(u, v))
        start = time.perf_counter()
        self._graph.remove_vertex(v)
        self._index.drop_vertex_labels(v)
        marker = UpdateStats(kind="delete_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self.history.record(marker)
        result.elapsed += marker.elapsed
        return result

    def rebuild(self):
        """Reconstruct the index from scratch."""
        start = time.perf_counter()
        self._index = build_directed_spc_index(self._graph, strategy=self._strategy)
        return time.perf_counter() - start

    def __repr__(self):
        return f"DynamicDirectedSPC(graph={self._graph!r}, index={self._index!r})"
