"""Directed IncSPC (Appendix C.1).

Inserting arc (a, b): "the affected hubs can be replaced by the hubs from
L_in(a) ∪ L_out(b)".

* A hub h ∈ L_in(a) witnesses paths h → a; the new arc extends them to
  h → a → b → ..., so a *forward* pruned BFS from b repairs in-labels.
* A hub h ∈ L_out(b) witnesses paths b → h; the new arc extends them to
  ... → a → b → h, so a *backward* pruned BFS from a repairs out-labels.

Rank conditions mirror the undirected case: h must rank at least as high as
the BFS entry vertex, otherwise h cannot be the highest-ranked vertex on any
path crossing the new arc.
"""

from collections import deque

from repro.core.stats import UpdateStats

INF = float("inf")


def inc_spc_directed(graph, index, a, b, stats=None):
    """Insert arc a -> b into ``graph`` and repair ``index``."""
    if stats is None:
        stats = UpdateStats(kind="insert", edge=(a, b))
    order = index.order
    rank = order.rank_map()
    aff_in = list(index.in_label_set(a).hubs)
    aff_out = list(index.out_label_set(b).hubs)
    stats.affected_hubs = len(set(aff_in) | set(aff_out))

    graph.add_edge(a, b)

    in_a, out_b = set(aff_in), set(aff_out)
    for h in sorted(in_a | out_b):
        if h in in_a and h <= rank[b]:
            _inc_update_directed(graph, index, h, a, b, stats, forward=True)
        if h in out_b and h <= rank[a]:
            _inc_update_directed(graph, index, h, b, a, stats, forward=False)
    return stats


def _inc_update_directed(graph, index, h, va, vb, stats, forward):
    """Pruned directed BFS entering the new arc at va, starting beyond vb."""
    order = index.order
    rank = order.rank_map()
    hub_vertex = order.vertex(h)
    if forward:
        entry = index.in_label_set(va).get(h)
        step = graph.successors
        root_side = index.out_label_set(hub_vertex)
        target_side = index.in_label_set
    else:
        entry = index.out_label_set(va).get(h)
        step = graph.predecessors
        root_side = index.in_label_set(hub_vertex)
        target_side = index.out_label_set
    if entry is None:
        return
    d0, c0 = entry
    root_dist = dict(zip(root_side.hubs, root_side.dists))

    dist = {vb: d0 + 1}
    count = {vb: c0}
    queue = deque([vb])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        stats.bfs_visits += 1
        ls = target_side(v)
        hubs, dists = ls.hubs, ls.dists
        dl = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < dl:
                    dl = cand
        if dl < dv:
            continue
        existing = ls.get(h)
        if existing is not None:
            d_i, c_i = existing
            if dv == d_i:
                ls.set(h, dv, count[v] + c_i)
                stats.renew_count += 1
            else:
                ls.set(h, dv, count[v])
                stats.renew_dist += 1
        else:
            ls.set(h, dv, count[v])
            stats.inserted += 1
        cv = count[v]
        dnext = dv + 1
        for w in step(v):
            dw = dist.get(w)
            if dw is None:
                if h <= rank[w]:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv
