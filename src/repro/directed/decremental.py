"""Directed DecSPC (Appendix C.1).

Deleting arc (a, b) partitions the affected vertices by side of the arc:

* **source side** — SRa ∪ Ra: vertices v with sd(v, a) + 1 = sd(v, b); their
  paths v → ... → a → b lose the arc.  Found with a *backward* pruned BFS
  from a (following in-arcs computes sd(·, a) and spc(·, a)).  A vertex is a
  hub (SRa) if it is a common hub of L_in(a) and L_in(b) (Condition A) or
  spc(v, a) = spc(v, b) (Condition B);
* **target side** — SRb ∪ Rb: vertices v with sd(b, v) + 1 = sd(a, v), found
  with a *forward* BFS from b, Condition A over L_out(a) ∩ L_out(b).

Repair runs per affected hub in descending rank order: hubs from SRa run a
forward rank-pruned BFS fixing (h, ·, ·) entries in L_in(u) for u on the
target side; hubs from SRb run the mirror-image backward BFS fixing
out-labels on the source side.  The removal phase deletes untouched labels
of opposite-side vertices when the hub was a common hub of the arc's
endpoints, exactly as in the undirected Algorithm 6.
"""

from collections import deque

from repro.core.stats import UpdateStats
from repro.exceptions import EdgeNotFound

INF = float("inf")


def dec_spc_directed(graph, index, a, b, stats=None):
    """Delete arc a -> b from ``graph`` and repair ``index``."""
    if stats is None:
        stats = UpdateStats(kind="delete", edge=(a, b))
    if not graph.has_edge(a, b):
        raise EdgeNotFound(a, b)

    order = index.order
    rank = order.rank_map()
    lab_in = set(index.in_label_set(a).hubs) & set(index.in_label_set(b).hubs)
    lab_out = set(index.out_label_set(a).hubs) & set(index.out_label_set(b).hubs)

    sr_a, r_a = _srr_search_directed(graph, index, a, b, lab_in, source_side=True)
    sr_b, r_b = _srr_search_directed(graph, index, a, b, lab_out, source_side=False)
    stats.sr_a, stats.sr_b = len(sr_a), len(sr_b)
    stats.r_a, stats.r_b = len(r_a), len(r_b)

    graph.remove_edge(a, b)

    targets_b = sr_b | r_b
    targets_a = sr_a | r_a
    affected = sorted(sr_a | sr_b, key=lambda v: rank[v])
    stats.affected_hubs = len(affected)
    for h_vertex in affected:
        # Unlike the undirected case, SRa and SRb need not be disjoint: on a
        # cycle a vertex can both precede and follow the deleted arc.  Such
        # hubs need the repair BFS in *both* directions.
        if h_vertex in sr_a:
            _dec_update_directed(
                graph, index, h_vertex, targets_b,
                h_in_lab=rank[h_vertex] in lab_in, stats=stats, forward=True,
            )
        if h_vertex in sr_b:
            _dec_update_directed(
                graph, index, h_vertex, targets_a,
                h_in_lab=rank[h_vertex] in lab_out, stats=stats, forward=False,
            )
    return stats


def _srr_search_directed(graph, index, a, b, lab, source_side):
    """One side of the directed SrrSEARCH, on G_i (arc still present)."""
    rank = index.order.rank_map()
    if source_side:
        # Paths v -> a: walk in-arcs from a; probe sd/spc(v -> b).
        start = a
        step = graph.predecessors
        probe_side = index.out_label_set  # of v
        fixed = index.in_label_set(b)
    else:
        # Paths b -> v: walk out-arcs from b; probe sd/spc(a -> v).
        start = b
        step = graph.successors
        probe_side = index.in_label_set  # of v
        fixed = index.out_label_set(a)
    fixed_entry = {h: (d, c) for h, d, c in fixed}

    sr, r = set(), set()
    dist = {start: 0}
    count = {start: 1}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        ls = probe_side(v)
        hubs, dists, counts = ls.hubs, ls.dists, ls.counts
        d_q, c_q = INF, 0
        for i in range(len(hubs)):
            e = fixed_entry.get(hubs[i])
            if e is not None:
                cand = dists[i] + e[0]
                if cand < d_q:
                    d_q = cand
                    c_q = counts[i] * e[1]
                elif cand == d_q:
                    c_q += counts[i] * e[1]
        if dv + 1 != d_q:
            continue
        if rank[v] in lab or count[v] == c_q:
            sr.add(v)
        else:
            r.add(v)
        cv = count[v]
        dnext = dv + 1
        for w in step(v):
            dw = dist.get(w)
            if dw is None:
                dist[w] = dnext
                count[w] = cv
                queue.append(w)
            elif dw == dnext:
                count[w] += cv
    return sr, r


def _dec_update_directed(graph, index, h_vertex, targets, h_in_lab, stats, forward):
    """Directed Algorithm 6: one rank-pruned BFS from an affected hub."""
    order = index.order
    rank = order.rank_map()
    h = rank[h_vertex]
    if forward:
        step = graph.successors
        root_side = index.out_label_set(h_vertex)
        target_side = index.in_label_set
    else:
        step = graph.predecessors
        root_side = index.in_label_set(h_vertex)
        target_side = index.out_label_set
    root_dist = {hr: d for hr, d, _ in root_side if hr != h}

    updated = set()
    dist = {h_vertex: 0}
    count = {h_vertex: 1}
    queue = deque([h_vertex])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        stats.bfs_visits += 1
        ls = target_side(v)
        hubs, dists = ls.hubs, ls.dists
        d_bar = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < d_bar:
                    d_bar = cand
        if d_bar < dv:
            continue
        if v in targets:
            existing = ls.get(h)
            if existing is None:
                ls.set(h, dv, count[v])
                stats.inserted += 1
            else:
                d_i, c_i = existing
                if d_i != dv:
                    ls.set(h, dv, count[v])
                    stats.renew_dist += 1
                elif c_i != count[v]:
                    ls.set(h, dv, count[v])
                    stats.renew_count += 1
            updated.add(v)
        cv = count[v]
        dnext = dv + 1
        for w in step(v):
            dw = dist.get(w)
            if dw is None:
                if h <= rank[w]:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv

    # Unconditional removal phase — see the note in
    # repro.core.decremental._dec_update: stale labels from incremental
    # updates can resurface if removal is gated on the common-hub flag.
    # The reverse hub map of the side being repaired narrows the pass to
    # the targets that actually hold h.
    del h_in_lab
    holder_set = index.in_holders(h) if forward else index.out_holders(h)
    for u in holder_set & targets:
        if u not in updated:
            target_side(u).remove(h)
            stats.removed += 1
