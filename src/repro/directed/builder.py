"""Directed HP-SPC construction (Appendix C.1).

"The index construction involves performing two BFSs from each hub, one in
each direction, to generate labels for the L_in and L_out sets of other
vertices."  The forward BFS from root r follows out-arcs and pushes
(r, D, C) into L_in(w) — paths r → w; the backward BFS follows in-arcs and
pushes into L_out(w) — paths w → r.  Pruning probes mirror the undirected
builder, always pairing an out-side array with an in-side label set.
"""

from collections import deque

from repro.directed.index import DirectedSPCIndex
from repro.order import VertexOrder, make_order

INF = float("inf")


def build_directed_spc_index(graph, order=None, strategy="degree"):
    """Construct the directed SPC-Index of a :class:`DiGraph`."""
    if order is None:
        order = make_order(graph, strategy)
    elif not isinstance(order, VertexOrder):
        order = VertexOrder(order)
    index = DirectedSPCIndex(order, with_self_labels=False)
    rank = order.rank_map()

    for root in order:
        r = rank[root]
        index.in_label_set(root).set(r, 0, 1)
        index.out_label_set(root).set(r, 0, 1)
        if root not in graph:
            continue
        # Forward: paths root -> w; prune via L_out(root) x L_in(w).
        _directed_push(
            graph, rank, root, r,
            step=graph.successors,
            root_side=index.out_label_set(root),
            target_side=index.in_label_set,
        )
        # Backward: paths w -> root; prune via L_out(w) x L_in(root).
        _directed_push(
            graph, rank, root, r,
            step=graph.predecessors,
            root_side=index.in_label_set(root),
            target_side=index.out_label_set,
        )
    return index


def _directed_push(graph, rank, root, r, step, root_side, target_side):
    root_dist = dict(zip(root_side.hubs, root_side.dists))
    dist = {root: 0}
    count = {root: 1}
    queue = deque()
    for w in step(root):
        if rank[w] > r:
            dist[w] = 1
            count[w] = 1
            queue.append(w)
    while queue:
        v = queue.popleft()
        dv = dist[v]
        ls = target_side(v)
        hubs, dists = ls.hubs, ls.dists
        pruned = False
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None and rd + dists[i] < dv:
                pruned = True
                break
        if pruned:
            continue
        ls.set(r, dv, count[v])
        cv = count[v]
        dnext = dv + 1
        for w in step(v):
            dw = dist.get(w)
            if dw is None:
                if rank[w] > r:
                    dist[w] = dnext
                    count[w] = cv
                    queue.append(w)
            elif dw == dnext:
                count[w] += cv
