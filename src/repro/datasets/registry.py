"""Dataset registry: synthetic analogues of the paper's ten graphs (Table 3).

The paper evaluates on real SNAP / Konect / LAW graphs from 265K to 7.4M
vertices.  Offline and in pure Python, we substitute deterministic synthetic
analogues — one per paper graph, drawn from the graph family that best
matches the original's domain:

=======  ======================  ===========================  ==============
Key      Paper graph             Domain                       Generator
=======  ======================  ===========================  ==============
EUA      email-EuAll             e-mail (scale-free, sparse)  barabasi_albert
NTD      NotreDame               web graph                    powerlaw_cluster
STA      Stanford                web graph                    powerlaw_cluster
WCO      WikiConflict            dense interaction graph      erdos_renyi (dense)
GOO      Google                  web graph                    powerlaw_cluster
BKS      BerkStan                web graph                    powerlaw_cluster
SKI      Skitter                 internet topology            barabasi_albert
DBP      DBpedia                 knowledge graph              barabasi_albert
WAR      Wikilink War            encyclopedia links           powerlaw_cluster
IND      Indochina-2004          web crawl (largest)          powerlaw_cluster
=======  ======================  ===========================  ==============

Sizes are scaled down ~100-1000x but keep the paper's *relative* ordering
(EUA smallest ... IND largest) and density character (WCO dense, SKI/DBP
large-sparse).  Each dataset is the giant component of its generator output,
so update workloads behave like the paper's (mostly-connected graphs).

DESIGN.md §2 records this substitution; EXPERIMENTS.md quantifies its
effect on each experiment.
"""

from repro.exceptions import DatasetError
from repro.graph.algorithms import largest_component
from repro.graph.generators import barabasi_albert, erdos_renyi, powerlaw_cluster

# name: (paper_name, family, kwargs, paper_n, paper_m)
_SPECS = {
    "EUA": ("email-EuAll", "ba", {"n": 900, "attach": 2, "seed": 11}, 265214, 418956),
    "NTD": ("NotreDame", "plc", {"n": 1100, "attach": 3, "triangle_prob": 0.6, "seed": 12}, 325729, 1090108),
    "STA": ("Stanford", "plc", {"n": 1000, "attach": 6, "triangle_prob": 0.5, "seed": 13}, 281903, 1992636),
    "WCO": ("WikiConflict", "er", {"n": 500, "m": 8500, "seed": 14}, 118100, 2027871),
    "GOO": ("Google", "plc", {"n": 2400, "attach": 5, "triangle_prob": 0.4, "seed": 15}, 875713, 4322051),
    "BKS": ("BerkStan", "plc", {"n": 2000, "attach": 9, "triangle_prob": 0.5, "seed": 16}, 685231, 6649470),
    "SKI": ("Skitter", "ba", {"n": 4200, "attach": 4, "seed": 17}, 1696415, 11095298),
    "DBP": ("DBpedia", "ba", {"n": 5000, "attach": 3, "seed": 18}, 3966924, 12610982),
    "WAR": ("Wikilink War", "plc", {"n": 4600, "attach": 6, "triangle_prob": 0.3, "seed": 19}, 2093450, 26049249),
    "IND": ("Indochina-2004", "plc", {"n": 6500, "attach": 7, "triangle_prob": 0.5, "seed": 20}, 7414866, 150984819),
}

_FAMILIES = {
    "ba": barabasi_albert,
    "plc": powerlaw_cluster,
    "er": erdos_renyi,
}

# Order matches Table 3 (ascending paper m).
DATASET_NAMES = list(_SPECS)

# Small subset used by quick benchmark runs and smoke tests.
SMALL_DATASET_NAMES = ["EUA", "NTD", "STA", "WCO"]

# The three graphs the paper uses for streaming (Fig 10) and skew (Fig 11).
STREAMING_DATASET_NAMES = ["BKS", "WAR", "IND"]

_CACHE = {}


def dataset_names():
    """All registry keys in Table 3 order."""
    return list(DATASET_NAMES)


def dataset_info(name):
    """Return metadata for ``name``: paper name/size, generator family."""
    try:
        paper_name, family, kwargs, paper_n, paper_m = _SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(_SPECS)}"
        ) from None
    return {
        "key": name,
        "paper_name": paper_name,
        "family": family,
        "params": dict(kwargs),
        "paper_n": paper_n,
        "paper_m": paper_m,
    }


def load_dataset(name, copy=True):
    """Build (or fetch from cache) the synthetic analogue graph for ``name``.

    Returns a fresh copy by default because update experiments mutate their
    graphs; pass ``copy=False`` only for read-only use.
    """
    info = dataset_info(name)
    if name not in _CACHE:
        generator = _FAMILIES[info["family"]]
        graph = generator(**info["params"])
        _CACHE[name] = largest_component(graph)
    cached = _CACHE[name]
    return cached.copy() if copy else cached


def dataset_statistics(name):
    """Return the Table 3 row for ``name``: analogue and paper n / m."""
    info = dataset_info(name)
    g = load_dataset(name, copy=False)
    return {
        "key": name,
        "paper_name": info["paper_name"],
        "n": g.num_vertices,
        "m": g.num_edges,
        "paper_n": info["paper_n"],
        "paper_m": info["paper_m"],
    }


def clear_cache():
    """Drop all cached dataset graphs (tests use this for isolation)."""
    _CACHE.clear()
