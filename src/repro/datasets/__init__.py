"""Synthetic analogues of the paper's evaluation graphs and temporal corpora."""

from repro.datasets.registry import (
    DATASET_NAMES,
    SMALL_DATASET_NAMES,
    STREAMING_DATASET_NAMES,
    TEMPORAL_DATASET_NAMES,
    clear_cache,
    dataset_info,
    dataset_names,
    dataset_statistics,
    load_dataset,
    load_temporal_dataset,
)

__all__ = [
    "DATASET_NAMES",
    "SMALL_DATASET_NAMES",
    "STREAMING_DATASET_NAMES",
    "TEMPORAL_DATASET_NAMES",
    "dataset_names",
    "dataset_info",
    "load_dataset",
    "load_temporal_dataset",
    "dataset_statistics",
    "clear_cache",
]
