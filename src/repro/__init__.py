"""repro — a reproduction of *DSPC: Efficiently Answering Shortest Path
Counting on Dynamic Graphs* (EDBT 2024).

Public API quickstart::

    from repro import Graph, DynamicSPC

    g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    dyn = DynamicSPC(g)
    dyn.query(0, 2)          # -> (2, 2): distance 2, two shortest paths
    dyn.insert_edge(0, 2)    # IncSPC
    dyn.delete_edge(0, 1)    # DecSPC
    dyn.query(0, 2)          # answers stay exact under updates

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graph` — graph substrates and generators;
* :mod:`repro.core` — SPC-Index, HP-SPC builder, IncSPC / DecSPC;
* :mod:`repro.directed` / :mod:`repro.weighted` — the appendix extensions;
* :mod:`repro.sd` — distance-only PLL (SD-Index) for comparison;
* :mod:`repro.baselines` — BFS / BiBFS / reconstruction baselines;
* :mod:`repro.workloads`, :mod:`repro.datasets` — experiment inputs;
* :mod:`repro.bench` — the table/figure reproduction harness.
"""

from repro.core import (
    DynamicSPC,
    LabelSet,
    SPCIndex,
    StreamStats,
    UpdateStats,
    build_dynamic,
    build_spc_index,
    dec_spc,
    inc_spc,
)
from repro.graph import DiGraph, Graph, WeightedGraph
from repro.order import VertexOrder, degree_order, make_order
from repro.traversal import bfs_counting_pair, bfs_counting_sssp, bibfs_counting
from repro.verify import check_invariants, indexes_equivalent, verify_espc

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "DiGraph",
    "WeightedGraph",
    "SPCIndex",
    "LabelSet",
    "build_spc_index",
    "inc_spc",
    "dec_spc",
    "DynamicSPC",
    "build_dynamic",
    "UpdateStats",
    "StreamStats",
    "VertexOrder",
    "degree_order",
    "make_order",
    "bfs_counting_sssp",
    "bfs_counting_pair",
    "bibfs_counting",
    "verify_espc",
    "check_invariants",
    "indexes_equivalent",
    "__version__",
]
