"""repro — a reproduction of *DSPC: Efficiently Answering Shortest Path
Counting on Dynamic Graphs* (EDBT 2024).

Public API quickstart::

    import repro

    g = repro.Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
    engine = repro.open(g)          # backend auto-selected from graph type
    engine.query(0, 2)              # -> (2, 2): distance 2, two shortest paths
    engine.query_many([(0, 2), (1, 3)])   # batch serving (cached)
    engine.insert_edge(0, 2)        # IncSPC
    engine.delete_edge(0, 1)        # DecSPC
    engine.query(0, 2)              # answers stay exact under updates

``repro.open`` works identically for :class:`DiGraph` and
:class:`WeightedGraph`; the legacy ``DynamicSPC`` / ``DynamicDirectedSPC``
/ ``DynamicWeightedSPC`` facades remain as deprecation shims over the
engine.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graph` — graph substrates and generators;
* :mod:`repro.core` — SPC-Index, HP-SPC builder, IncSPC / DecSPC;
* :mod:`repro.directed` / :mod:`repro.weighted` — the appendix extensions;
* :mod:`repro.engine` — the backend-agnostic serving engine (``repro.open``);
* :mod:`repro.serve` — snapshot-isolated concurrent serving + WAL durability;
* :mod:`repro.cluster` — WAL-replicated multi-replica serving + query router;
* :mod:`repro.audit` — shadow-replica differential verification + perf
  trajectory;
* :mod:`repro.resilience` — self-healing supervision, circuit breakers
  and the disk-fault chaos harness;
* :mod:`repro.sd` — distance-only PLL (SD-Index) for comparison;
* :mod:`repro.baselines` — BFS / BiBFS / reconstruction baselines;
* :mod:`repro.workloads`, :mod:`repro.datasets` — experiment inputs;
* :mod:`repro.bench` — the table/figure reproduction harness.
"""

from repro.core import (
    DynamicSPC,
    LabelSet,
    SPCIndex,
    StreamStats,
    UpdateStats,
    build_dynamic,
    build_spc_index,
    dec_spc,
    inc_spc,
)
from repro.engine import (
    EngineConfig,
    SPCBackend,
    SPCEngine,
    available_backends,
    register_backend,
)
from repro.engine import open_engine as open  # noqa: A001
from repro.graph import DiGraph, Graph, WeightedGraph
from repro import serve  # noqa: F401  (repro.serve.restore & friends)
from repro import cluster  # noqa: F401  (repro.cluster.SPCCluster & friends)
from repro import audit  # noqa: F401  (repro.audit.ShadowAuditor & friends)
from repro import shard  # noqa: F401  (repro.shard.ShardedCluster & friends)
from repro import resilience  # noqa: F401  (repro.resilience.Supervisor &c.)
from repro import replay  # noqa: F401  (repro.replay.run_replay_scenario &c.)
from repro.order import VertexOrder, degree_order, make_order
from repro.traversal import bfs_counting_pair, bfs_counting_sssp, bibfs_counting
from repro.verify import check_invariants, indexes_equivalent, verify_espc

__version__ = "1.1.0"

__all__ = [
    "Graph",
    "DiGraph",
    "WeightedGraph",
    "open",
    "serve",
    "cluster",
    "audit",
    "shard",
    "resilience",
    "SPCEngine",
    "EngineConfig",
    "SPCBackend",
    "register_backend",
    "available_backends",
    "SPCIndex",
    "LabelSet",
    "build_spc_index",
    "inc_spc",
    "dec_spc",
    "DynamicSPC",
    "build_dynamic",
    "UpdateStats",
    "StreamStats",
    "VertexOrder",
    "degree_order",
    "make_order",
    "bfs_counting_sssp",
    "bfs_counting_pair",
    "bibfs_counting",
    "verify_espc",
    "check_invariants",
    "indexes_equivalent",
    "__version__",
]
