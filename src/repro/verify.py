"""Index verification: the ESPC cover constraint and structural invariants.

Theorems 3.7 and 3.16 claim the updated index obeys Exact Shortest Paths
Covering — every query answers (sd, spc) exactly.  ``verify_espc`` checks
that claim against BFS ground truth, exhaustively on small graphs or over a
random pair sample on larger ones, and raises :class:`IndexCorruption` with
a precise diagnosis on the first mismatch.

``check_invariants`` validates the structural well-formedness that every
SPC-Index must satisfy regardless of the graph: per-vertex self-labels,
rank-sorted hub arrays, the rank constraint (hubs rank at least as high as
the label owner), positive counts and non-negative distances.
"""

import random

from repro.exceptions import IndexCorruption
from repro.traversal.bfs import bfs_counting_sssp, directed_bfs_counting_sssp

INF = float("inf")


def verify_espc(graph, index, sample_pairs=None, seed=0, exhaustive_threshold=400):
    """Check SpcQUERY against BFS ground truth.

    Parameters
    ----------
    graph, index:
        The graph and the index claimed to cover it.
    sample_pairs:
        If None, verify all pairs when n <= ``exhaustive_threshold``, else
        sample ``4 * n`` random pairs.  An int requests that many sampled
        pairs; an iterable of (s, t) pairs is used verbatim.
    """
    vertices = sorted(graph.vertices())
    n = len(vertices)
    if n == 0:
        return True

    if sample_pairs is None and n <= exhaustive_threshold:
        _verify_exhaustive(graph, index, vertices)
        return True

    if sample_pairs is None:
        sample_pairs = 4 * n
    return _verify_sampled(graph, index, bfs_counting_sssp, vertices,
                           sample_pairs, seed)


def _verify_sampled(graph, index, sssp, vertices, sample_pairs, seed):
    """Check a pair sample against ``sssp`` ground truth (any family)."""
    if isinstance(sample_pairs, int):
        rng = random.Random(seed)
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(sample_pairs)
        ]
    else:
        pairs = list(sample_pairs)

    # Group by source so one traversal serves all queries from that source.
    by_source = {}
    for s, t in pairs:
        by_source.setdefault(s, []).append(t)
    for s, ts in by_source.items():
        dist, count = sssp(graph, s)
        for t in ts:
            expected = (dist.get(t, INF), count.get(t, 0)) if s != t else (0, 1)
            _compare(index, s, t, expected)
    return True


def _verify_exhaustive(graph, index, vertices):
    for s in vertices:
        dist, count = bfs_counting_sssp(graph, s)
        for t in vertices:
            if s == t:
                expected = (0, 1)
            else:
                expected = (dist.get(t, INF), count.get(t, 0))
            _compare(index, s, t, expected)


def _compare(index, s, t, expected):
    got = index.query(s, t)
    if got != expected:
        raise IndexCorruption(
            f"ESPC violated for pair ({s}, {t}): index answers "
            f"(sd={got[0]}, spc={got[1]}) but ground truth is "
            f"(sd={expected[0]}, spc={expected[1]})"
        )


def verify_espc_directed(graph, index, exhaustive_threshold=300,
                         sample_pairs=None, seed=0):
    """Directed ESPC check against directed BFS ground truth.

    Exhaustive over every ordered pair up to ``exhaustive_threshold``
    vertices; beyond that (or when ``sample_pairs`` is given) it checks a
    random pair sample like :func:`verify_espc`.
    """
    vertices = sorted(graph.vertices())
    if not vertices:
        return True
    if sample_pairs is not None or len(vertices) > exhaustive_threshold:
        if sample_pairs is None:
            sample_pairs = 4 * len(vertices)
        return _verify_sampled(graph, index, directed_bfs_counting_sssp,
                               vertices, sample_pairs, seed)
    for s in vertices:
        dist, count = directed_bfs_counting_sssp(graph, s)
        for t in vertices:
            if s == t:
                expected = (0, 1)
            else:
                expected = (dist.get(t, INF), count.get(t, 0))
            got = index.query(s, t)
            if got != expected:
                raise IndexCorruption(
                    f"directed ESPC violated for ({s} -> {t}): index answers "
                    f"{got} but ground truth is {expected}"
                )
    return True


def verify_espc_weighted(graph, index, exhaustive_threshold=200,
                         sample_pairs=None, seed=0):
    """Weighted ESPC check against Dijkstra counting ground truth.

    Exhaustive over every pair up to ``exhaustive_threshold`` vertices;
    beyond that (or when ``sample_pairs`` is given) it checks a random
    pair sample like :func:`verify_espc`.
    """
    from repro.traversal.dijkstra import dijkstra_counting_sssp

    vertices = sorted(graph.vertices())
    if not vertices:
        return True
    if sample_pairs is not None or len(vertices) > exhaustive_threshold:
        if sample_pairs is None:
            sample_pairs = 4 * len(vertices)
        return _verify_sampled(graph, index, dijkstra_counting_sssp,
                               vertices, sample_pairs, seed)
    for s in vertices:
        dist, count = dijkstra_counting_sssp(graph, s)
        for t in vertices:
            if s == t:
                expected = (0, 1)
            else:
                expected = (dist.get(t, INF), count.get(t, 0))
            got = index.query(s, t)
            if got != expected:
                raise IndexCorruption(
                    f"weighted ESPC violated for ({s}, {t}): index answers "
                    f"{got} but ground truth is {expected}"
                )
    return True


def check_invariants(index, graph=None):
    """Validate structural invariants of an SPC-Index.

    With ``graph`` given, additionally checks that every labeled distance is
    an *upper bound* on the true distance that never undercuts it (stale
    labels after insertions may overestimate, never underestimate), by
    checking the query result only — per-label distances are allowed to be
    stale by Lemma 3.1.
    """
    order = index.order
    for v in index.vertices():
        ls = index.label_set(v)
        rv = order.rank(v)
        hubs = ls.hubs
        if sorted(hubs) != hubs:
            raise IndexCorruption(f"L({v}) hubs are not sorted by rank: {hubs}")
        if len(set(hubs)) != len(hubs):
            raise IndexCorruption(f"L({v}) contains duplicate hubs: {hubs}")
        entry = ls.get(rv)
        if entry != (0, 1):
            raise IndexCorruption(f"L({v}) self-label is {entry}, expected (0, 1)")
        for h, d, c in ls:
            if h > rv:
                raise IndexCorruption(
                    f"rank constraint violated in L({v}): hub rank {h} is "
                    f"lower than owner rank {rv}"
                )
            if d < 0:
                raise IndexCorruption(f"L({v}) hub {h} has negative distance {d}")
            if c <= 0:
                raise IndexCorruption(f"L({v}) hub {h} has non-positive count {c}")
            if (d == 0) != (h == rv):
                raise IndexCorruption(
                    f"L({v}) hub {h} has distance 0 but is not the self-label"
                )
    return True


def indexes_equivalent(index_a, index_b, graph, sample_pairs=None, seed=0):
    """Check that two indexes answer identically on ``graph``'s pairs.

    Used to compare a dynamically-maintained index against a rebuilt one:
    label *sets* may legitimately differ (IncSPC retains stale entries) but
    query answers must agree.
    """
    vertices = sorted(graph.vertices())
    if sample_pairs is None and len(vertices) <= 60:
        pairs = [(s, t) for s in vertices for t in vertices]
    else:
        rng = random.Random(seed)
        k = sample_pairs if isinstance(sample_pairs, int) else 4 * len(vertices)
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(k)]
    for s, t in pairs:
        if index_a.query(s, t) != index_b.query(s, t):
            return False
    return True
