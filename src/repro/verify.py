"""Index verification: the ESPC cover constraint and structural invariants.

Theorems 3.7 and 3.16 claim the updated index obeys Exact Shortest Paths
Covering — every query answers (sd, spc) exactly.  ``verify_espc`` checks
that claim against BFS ground truth, exhaustively on small graphs or over a
random pair sample on larger ones, and raises :class:`IndexCorruption` with
a precise diagnosis on the first mismatch.

``check_invariants`` validates the structural well-formedness that every
SPC-Index must satisfy regardless of the graph: per-vertex self-labels,
rank-sorted hub arrays, the rank constraint (hubs rank at least as high as
the label owner), positive counts and non-negative distances — plus the
reverse-hub-map consistency rule: every (v, h) label entry appears in
holders(h), and every holders entry is backed by a label.
``check_invariants_directed`` applies the same rules to both label
families of a directed index; ``check_sd_invariants`` / ``verify_sd`` are
the distance-only siblings for the SD backend.
"""

import random

from repro.exceptions import IndexCorruption
from repro.traversal.bfs import bfs_counting_sssp, directed_bfs_counting_sssp

INF = float("inf")


def verify_espc(graph, index, sample_pairs=None, seed=0, exhaustive_threshold=400):
    """Check SpcQUERY against BFS ground truth.

    Parameters
    ----------
    graph, index:
        The graph and the index claimed to cover it.
    sample_pairs:
        If None, verify all pairs when n <= ``exhaustive_threshold``, else
        sample ``4 * n`` random pairs.  An int requests that many sampled
        pairs; an iterable of (s, t) pairs is used verbatim.
    """
    vertices = sorted(graph.vertices())
    n = len(vertices)
    if n == 0:
        return True

    if sample_pairs is None and n <= exhaustive_threshold:
        _verify_exhaustive(graph, index, vertices)
        return True

    if sample_pairs is None:
        sample_pairs = 4 * n
    return _verify_sampled(graph, index, bfs_counting_sssp, vertices,
                           sample_pairs, seed)


def _verify_sampled(graph, index, sssp, vertices, sample_pairs, seed):
    """Check a pair sample against ``sssp`` ground truth (any family)."""
    if isinstance(sample_pairs, int):
        rng = random.Random(seed)
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(sample_pairs)
        ]
    else:
        pairs = list(sample_pairs)

    # Group by source so one traversal serves all queries from that source.
    by_source = {}
    for s, t in pairs:
        by_source.setdefault(s, []).append(t)
    for s, ts in by_source.items():
        dist, count = sssp(graph, s)
        for t in ts:
            expected = (dist.get(t, INF), count.get(t, 0)) if s != t else (0, 1)
            _compare(index, s, t, expected)
    return True


def _verify_exhaustive(graph, index, vertices):
    for s in vertices:
        dist, count = bfs_counting_sssp(graph, s)
        for t in vertices:
            if s == t:
                expected = (0, 1)
            else:
                expected = (dist.get(t, INF), count.get(t, 0))
            _compare(index, s, t, expected)


def _compare(index, s, t, expected):
    got = index.query(s, t)
    if got != expected:
        raise IndexCorruption(
            f"ESPC violated for pair ({s}, {t}): index answers "
            f"(sd={got[0]}, spc={got[1]}) but ground truth is "
            f"(sd={expected[0]}, spc={expected[1]})"
        )


def verify_espc_directed(graph, index, exhaustive_threshold=300,
                         sample_pairs=None, seed=0):
    """Directed ESPC check against directed BFS ground truth.

    Exhaustive over every ordered pair up to ``exhaustive_threshold``
    vertices; beyond that (or when ``sample_pairs`` is given) it checks a
    random pair sample like :func:`verify_espc`.
    """
    vertices = sorted(graph.vertices())
    if not vertices:
        return True
    if sample_pairs is not None or len(vertices) > exhaustive_threshold:
        if sample_pairs is None:
            sample_pairs = 4 * len(vertices)
        return _verify_sampled(graph, index, directed_bfs_counting_sssp,
                               vertices, sample_pairs, seed)
    for s in vertices:
        dist, count = directed_bfs_counting_sssp(graph, s)
        for t in vertices:
            if s == t:
                expected = (0, 1)
            else:
                expected = (dist.get(t, INF), count.get(t, 0))
            got = index.query(s, t)
            if got != expected:
                raise IndexCorruption(
                    f"directed ESPC violated for ({s} -> {t}): index answers "
                    f"{got} but ground truth is {expected}"
                )
    return True


def verify_espc_weighted(graph, index, exhaustive_threshold=200,
                         sample_pairs=None, seed=0):
    """Weighted ESPC check against Dijkstra counting ground truth.

    Exhaustive over every pair up to ``exhaustive_threshold`` vertices;
    beyond that (or when ``sample_pairs`` is given) it checks a random
    pair sample like :func:`verify_espc`.
    """
    from repro.traversal.dijkstra import dijkstra_counting_sssp

    vertices = sorted(graph.vertices())
    if not vertices:
        return True
    if sample_pairs is not None or len(vertices) > exhaustive_threshold:
        if sample_pairs is None:
            sample_pairs = 4 * len(vertices)
        return _verify_sampled(graph, index, dijkstra_counting_sssp,
                               vertices, sample_pairs, seed)
    for s in vertices:
        dist, count = dijkstra_counting_sssp(graph, s)
        for t in vertices:
            if s == t:
                expected = (0, 1)
            else:
                expected = (dist.get(t, INF), count.get(t, 0))
            got = index.query(s, t)
            if got != expected:
                raise IndexCorruption(
                    f"weighted ESPC violated for ({s}, {t}): index answers "
                    f"{got} but ground truth is {expected}"
                )
    return True


def check_invariants(index, graph=None):
    """Validate structural invariants of an SPC-Index.

    With ``graph`` given, additionally checks that every labeled distance is
    an *upper bound* on the true distance that never undercuts it (stale
    labels after insertions may overestimate, never underestimate), by
    checking the query result only — per-label distances are allowed to be
    stale by Lemma 3.1.

    Also verifies the reverse hub map when the index maintains one: the
    map and the label sets must describe exactly the same (holder, hub)
    relation.
    """
    _check_label_family(
        index.order, index.vertices(), index.label_set, "L"
    )
    holders_map = getattr(index, "holders_map", None)
    if holders_map is not None:
        _check_holders_consistency(
            holders_map(), {v: index.label_set(v) for v in index.vertices()}, "L"
        )
    return True


def _check_label_family(order, vertices, label_of, family):
    """Per-label-set structural checks shared by every index family."""
    for v in vertices:
        ls = label_of(v)
        rv = order.rank(v)
        hubs = ls.hubs
        if sorted(hubs) != hubs:
            raise IndexCorruption(
                f"{family}({v}) hubs are not sorted by rank: {hubs}"
            )
        if len(set(hubs)) != len(hubs):
            raise IndexCorruption(
                f"{family}({v}) contains duplicate hubs: {hubs}"
            )
        entry = ls.get(rv)
        if entry != (0, 1):
            raise IndexCorruption(
                f"{family}({v}) self-label is {entry}, expected (0, 1)"
            )
        for h, d, c in ls:
            if h > rv:
                raise IndexCorruption(
                    f"rank constraint violated in {family}({v}): hub rank {h} "
                    f"is lower than owner rank {rv}"
                )
            if d < 0:
                raise IndexCorruption(
                    f"{family}({v}) hub {h} has negative distance {d}"
                )
            if c <= 0:
                raise IndexCorruption(
                    f"{family}({v}) hub {h} has non-positive count {c}"
                )
            if (d == 0) != (h == rv):
                raise IndexCorruption(
                    f"{family}({v}) hub {h} has distance 0 but is not the "
                    f"self-label"
                )
    return True


def _check_holders_consistency(holders, label_sets, family):
    """Check holders == {h: {v | h in label_sets[v]}} in both directions."""
    for v, ls in label_sets.items():
        for h in ls.hubs:
            if v not in holders.get(h, ()):
                raise IndexCorruption(
                    f"reverse hub map missing {family}({v}) entry for hub "
                    f"rank {h}"
                )
    for h, vs in holders.items():
        if not vs:
            raise IndexCorruption(
                f"reverse hub map keeps an empty holder set for hub rank {h}"
            )
        for v in vs:
            ls = label_sets.get(v)
            if ls is None or h not in ls:
                raise IndexCorruption(
                    f"reverse hub map claims {v} holds hub rank {h} in "
                    f"{family}, but no such label exists"
                )
    return True


def check_invariants_directed(index):
    """Directed-index structural invariants: both families, both maps."""
    sides = (
        ("L_in", index.in_label_set, index.in_holders_map),
        ("L_out", index.out_label_set, index.out_holders_map),
    )
    for family, label_of, holders_map in sides:
        _check_label_family(index.order, index.vertices(), label_of, family)
        _check_holders_consistency(
            holders_map(), {v: label_of(v) for v in index.vertices()}, family
        )
    return True


def check_sd_invariants(index):
    """Structural invariants of the distance-only SD-Index."""
    order = index.order
    for v in order:
        hubs, dists = index.label_arrays(v)
        rv = order.rank(v)
        if sorted(hubs) != hubs:
            raise IndexCorruption(f"SD L({v}) hubs are not sorted by rank: {hubs}")
        if len(set(hubs)) != len(hubs):
            raise IndexCorruption(f"SD L({v}) contains duplicate hubs: {hubs}")
        if rv not in hubs:
            raise IndexCorruption(f"SD L({v}) is missing its self-label")
        for h, d in zip(hubs, dists):
            if h > rv:
                raise IndexCorruption(
                    f"rank constraint violated in SD L({v}): hub rank {h} is "
                    f"lower than owner rank {rv}"
                )
            if d < 0:
                raise IndexCorruption(f"SD L({v}) hub {h} has negative distance {d}")
            if (d == 0) != (h == rv):
                raise IndexCorruption(
                    f"SD L({v}) hub {h} has distance 0 but is not the self-label"
                )
    return True


def verify_sd(graph, index, sample_pairs=None, seed=0, exhaustive_threshold=400):
    """Check SD-Index distances against BFS ground truth.

    Sampling behaves like :func:`verify_espc`; only sd(s, t) is compared
    (the SD-Index carries no counts).
    """
    vertices = sorted(graph.vertices())
    n = len(vertices)
    if n == 0:
        return True
    if sample_pairs is None and n <= exhaustive_threshold:
        pairs = [(s, t) for s in vertices for t in vertices]
    elif isinstance(sample_pairs, int) or sample_pairs is None:
        k = sample_pairs if isinstance(sample_pairs, int) else 4 * n
        rng = random.Random(seed)
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(k)]
    else:
        pairs = list(sample_pairs)

    by_source = {}
    for s, t in pairs:
        by_source.setdefault(s, []).append(t)
    for s, ts in by_source.items():
        dist, _ = bfs_counting_sssp(graph, s)
        for t in ts:
            expected = dist.get(t, INF)
            got = index.distance(s, t)
            if got != expected:
                raise IndexCorruption(
                    f"SD-Index violated for pair ({s}, {t}): index answers "
                    f"sd={got} but ground truth is sd={expected}"
                )
    return True


def indexes_equivalent(index_a, index_b, graph, sample_pairs=None, seed=0):
    """Check that two indexes answer identically on ``graph``'s pairs.

    Used to compare a dynamically-maintained index against a rebuilt one:
    label *sets* may legitimately differ (IncSPC retains stale entries) but
    query answers must agree.
    """
    vertices = sorted(graph.vertices())
    if sample_pairs is None and len(vertices) <= 60:
        pairs = [(s, t) for s in vertices for t in vertices]
    else:
        rng = random.Random(seed)
        k = sample_pairs if isinstance(sample_pairs, int) else 4 * len(vertices)
        pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(k)]
    for s, t in pairs:
        if index_a.query(s, t) != index_b.query(s, t):
            return False
    return True
