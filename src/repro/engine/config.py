"""Engine configuration: one validated dataclass instead of kwarg sprawl.

The three legacy facades each accepted a different, partially-overlapping
set of keyword arguments (``strategy``, ``rebuild_every``,
``rebuild_drift_threshold``, ``use_isolated_fast_path``, ...).
:class:`EngineConfig` collects every serving- and maintenance-path knob in
one frozen, validated object that any backend can consume; unknown or
nonsensical settings fail at construction time, not deep inside an update.
"""

import dataclasses
from dataclasses import dataclass

from repro.exceptions import EngineError


@dataclass(frozen=True)
class EngineConfig:
    """All tunables of an :class:`~repro.engine.SPCEngine`.

    Parameters
    ----------
    backend:
        Explicit backend name (``"core"``, ``"directed"``, ``"weighted"``).
        ``None`` (the default) auto-selects from the graph type.
    strategy:
        Vertex-ordering strategy handed to the index builder (§2.2).
    rebuild_every:
        Rebuild the index from scratch after this many edge updates
        (the paper's §6 lazy strategy); ``None`` disables.
    rebuild_drift_threshold:
        Rebuild once the sampled ordering-drift inversion fraction exceeds
        this value (see :mod:`repro.order.drift`); ``None`` disables.
    drift_check_every:
        How often (in updates) the drift threshold is evaluated.
    use_isolated_fast_path:
        Enable the decremental fast path for edges whose deletion isolates
        an endpoint: it skips the SrrSEARCH/hub-repair machinery, paying
        only an O(n) sweep that clears the stranded vertex's hub from
        other label sets (see repro/core/decremental.py).
    coalesce_batches:
        Net-effect coalescing in :meth:`SPCEngine.apply_batch` — churn that
        cancels out inside a batch is never applied to the index.
    cache_size:
        Capacity of the epoch-invalidated LRU query cache; ``0`` disables
        caching entirely.
    sd_defer_rebuilds:
        SD backend only: inside an update batch (``apply_stream`` /
        ``apply_batch``, bracketed by the backend batch hooks), coalesce
        the rebuild-on-delete policy into a single rebuild per batch
        instead of one per deletion.  Queries never observe the deferred
        state — the engine rebuilds before the batch call returns — so
        this is purely a cost knob for delete-heavy SD traffic.

    Example
    -------
    >>> EngineConfig().cache_size
    1024
    >>> EngineConfig(rebuild_every=100).replace(cache_size=0).cache_size
    0
    """

    backend: str = None
    strategy: str = "degree"
    rebuild_every: int = None
    rebuild_drift_threshold: float = None
    drift_check_every: int = 50
    use_isolated_fast_path: bool = True
    coalesce_batches: bool = True
    cache_size: int = 1024
    sd_defer_rebuilds: bool = True

    def __post_init__(self):
        if self.rebuild_every is not None and self.rebuild_every < 1:
            raise EngineError(
                f"rebuild_every must be a positive int or None, "
                f"got {self.rebuild_every!r}"
            )
        if self.rebuild_drift_threshold is not None and not (
            0 <= self.rebuild_drift_threshold <= 1
        ):
            raise EngineError(
                f"rebuild_drift_threshold must lie in [0, 1] or be None, "
                f"got {self.rebuild_drift_threshold!r}"
            )
        if self.drift_check_every < 1:
            raise EngineError(
                f"drift_check_every must be >= 1, got {self.drift_check_every!r}"
            )
        if self.cache_size < 0:
            raise EngineError(
                f"cache_size must be >= 0 (0 disables caching), "
                f"got {self.cache_size!r}"
            )

    def replace(self, **changes):
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
