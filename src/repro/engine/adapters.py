"""The built-in backends: core (undirected), directed, weighted, sd.

Each adapter is a thin, stateful wrapper over the corresponding function
stack (``repro.core`` / ``repro.directed`` / ``repro.weighted`` /
``repro.sd``) — no algorithmic logic lives here.  What the adapters buy is
*uniformity*: the engine drives every family through the same five verbs
(build / inc / dec / query / verify), which is what makes rebuild policies,
streaming stats and batch coalescing graph-type-agnostic instead of
core-only.

The ``sd`` backend is never auto-selected (core wins the ``Graph`` match);
request it explicitly — ``repro.open(g, backend="sd")`` — to serve
distance-only traffic from the lighter SD-Index.  Its queries answer
``(sd, None)``: exact distances, no counts.
"""

from repro.core.builder import build_spc_index
from repro.core.decremental import dec_spc
from repro.core.incremental import inc_spc
from repro.core.index import SPCIndex
from repro.core.stats import UpdateStats
from repro.directed.builder import build_directed_spc_index
from repro.directed.decremental import dec_spc_directed
from repro.directed.incremental import inc_spc_directed
from repro.directed.index import DirectedSPCIndex
from repro.engine.backends import SPCBackend, register_backend
from repro.exceptions import EngineError
from repro.graph.directed import DiGraph
from repro.graph.undirected import Graph
from repro.graph.weighted import WeightedGraph
from repro.weighted.builder import build_weighted_spc_index
from repro.weighted.decremental import dec_spc_weighted, increase_weight
from repro.weighted.incremental import decrease_weight, inc_spc_weighted
from repro.weighted.index import WeightedSPCIndex


@register_backend
class CoreBackend(SPCBackend):
    """Undirected, unweighted SPC over :class:`repro.graph.Graph` (§3)."""

    name = "core"
    graph_type = Graph
    index_type = SPCIndex

    def build_index(self):
        return build_spc_index(self.graph, strategy=self.config.strategy)

    def insert_edge(self, a, b, weight=None):
        self.check_weight(weight)
        return inc_spc(self.graph, self.index, a, b)

    def delete_edge(self, a, b):
        return dec_spc(
            self.graph, self.index, a, b,
            use_isolated_fast_path=self.config.use_isolated_fast_path,
        )

    def verify(self, sample_pairs=None, seed=0):
        from repro.verify import verify_espc

        return verify_espc(self.graph, self.index,
                           sample_pairs=sample_pairs, seed=seed)


@register_backend
class DirectedBackend(SPCBackend):
    """Directed SPC over :class:`repro.graph.DiGraph` (Appendix C.1)."""

    name = "directed"
    graph_type = DiGraph
    index_type = DirectedSPCIndex
    directed = True

    def build_index(self):
        return build_directed_spc_index(self.graph, strategy=self.config.strategy)

    def insert_edge(self, a, b, weight=None):
        self.check_weight(weight)
        return inc_spc_directed(self.graph, self.index, a, b)

    def delete_edge(self, a, b):
        return dec_spc_directed(self.graph, self.index, a, b)

    def initial_edges(self, v, edges, in_edges=()):
        # ``edges`` are out-arcs v -> u; ``in_edges`` are in-arcs u -> v.
        return [(v, u, None) for u in edges] + [(u, v, None) for u in in_edges]

    def incident_edges(self, v):
        return [(v, w) for w in self.graph.successors(v)] + [
            (u, v) for u in self.graph.predecessors(v)
        ]

    def label_payload(self, v):
        # Both families travel together: the shard query path needs
        # L_out(s) and L_in(t) of the *same* vertex state.
        if v not in self.index:
            return None
        return {
            "in": [[h, d, c] for h, d, c in self.index.in_label_set(v)],
            "out": [[h, d, c] for h, d, c in self.index.out_label_set(v)],
        }

    @classmethod
    def iter_label_payloads(cls, index_payload, vertex_type=int):
        out_labels = index_payload["out_labels"]
        for key, entries in index_payload["in_labels"].items():
            yield vertex_type(key), {
                "in": entries,
                "out": out_labels.get(key, []),
            }

    def verify(self, sample_pairs=None, seed=0):
        from repro.verify import verify_espc_directed

        return verify_espc_directed(self.graph, self.index,
                                    sample_pairs=sample_pairs, seed=seed)

    def check_invariants(self):
        from repro.verify import check_invariants_directed

        return check_invariants_directed(self.index)


@register_backend
class WeightedBackend(SPCBackend):
    """Weighted SPC over :class:`repro.graph.WeightedGraph` (Appendix C.2)."""

    name = "weighted"
    graph_type = WeightedGraph
    index_type = WeightedSPCIndex
    weighted = True

    def check_weight(self, weight):
        if weight is None:
            raise EngineError(
                "the weighted backend requires a weight for edge insertion"
            )

    def build_index(self):
        return build_weighted_spc_index(self.graph, strategy=self.config.strategy)

    def insert_edge(self, a, b, weight=None):
        self.check_weight(weight)
        return inc_spc_weighted(self.graph, self.index, a, b, weight)

    def delete_edge(self, a, b):
        return dec_spc_weighted(
            self.graph, self.index, a, b,
            use_isolated_fast_path=self.config.use_isolated_fast_path,
        )

    def set_weight(self, a, b, new_weight):
        old = self.graph.weight(a, b)
        if new_weight == old:
            return UpdateStats(kind="noop", edge=(a, b))
        if new_weight < old:
            return decrease_weight(self.graph, self.index, a, b, new_weight)
        return increase_weight(self.graph, self.index, a, b, new_weight)

    def initial_edges(self, v, edges, in_edges=()):
        if in_edges:
            raise EngineError("the weighted backend has no in-edges")
        # ``edges`` are (neighbor, weight) pairs.
        return [(v, u, w) for u, w in edges]

    def verify(self, sample_pairs=None, seed=0):
        from repro.verify import verify_espc_weighted

        return verify_espc_weighted(self.graph, self.index,
                                    sample_pairs=sample_pairs, seed=seed)


@register_backend
class SDBackend(SPCBackend):
    """Distance-only PLL over :class:`repro.graph.Graph` (§2.3, [3]).

    Serves ``(sd, None)`` answers from the lighter SD-Index for read-heavy
    traffic that never asks for counts.  Registered *after* the core
    backend, so ``repro.open(g)`` still auto-selects counting; opt in with
    ``repro.open(g, backend="sd")``.  Insertions run the WWW'14 incremental
    algorithm (:func:`repro.sd.inc_sd`); the SD literature has no
    decremental repair, so deletions rebuild the index — cheap relative to
    the SPC build, and honest about the trade-off.

    Inside an update batch (``config.sd_defer_rebuilds``) consecutive
    deletions coalesce: each one only removes its edge from the graph, and
    the rebuild runs once — at the end of the batch, or earlier if an
    insertion needs a current index to repair incrementally.  Deferral is
    confined to the engine's batch hooks, so queries never see a stale
    index.
    """

    name = "sd"
    graph_type = Graph
    counts = False

    def __init__(self, graph, index, config):
        super().__init__(graph, index, config)
        self._in_batch = False
        self._rebuild_pending = False
        #: rebuilds performed over this backend's lifetime (policy tests
        #: and the serving layer's stats read this).
        self.rebuild_count = 0

    @classmethod
    def index_from_dict(cls, payload):
        from repro.sd import SDIndex

        return SDIndex.from_dict(payload)

    def build_index(self):
        from repro.sd import build_sd_index

        self._rebuild_pending = False
        self.rebuild_count += 1
        return build_sd_index(self.graph, strategy=self.config.strategy)

    def begin_update_batch(self):
        if self.config.sd_defer_rebuilds:
            self._in_batch = True

    def end_update_batch(self):
        self._in_batch = False
        self._flush_pending_rebuild()

    def _flush_pending_rebuild(self):
        if self._rebuild_pending:
            self.index = self.build_index()

    def insert_edge(self, a, b, weight=None):
        from repro.sd import inc_sd

        self.check_weight(weight)
        # inc_sd repairs the *current* index; a deferred deletion would
        # leave it repairing stale labels, so settle the debt first.
        self._flush_pending_rebuild()
        stats = UpdateStats(kind="insert", edge=(a, b))
        inc_sd(self.graph, self.index, a, b)
        return stats

    def delete_edge(self, a, b):
        from repro.exceptions import EdgeNotFound

        if not self.graph.has_edge(a, b):
            raise EdgeNotFound(a, b)
        stats = UpdateStats(kind="delete", edge=(a, b))
        self.graph.remove_edge(a, b)
        if self._in_batch:
            self._rebuild_pending = True
        else:
            self.index = self.build_index()
        return stats

    def incident_edges(self, v):
        # Each SD deletion is a full rebuild, so stripping a vertex's edges
        # one delete_edge at a time would rebuild degree(v) times; let
        # remove_vertex take them all out and rebuild once.
        return []

    def remove_vertex(self, v):
        for u in list(self.graph.neighbors(v)):
            self.graph.remove_edge(v, u)
        self.graph.remove_vertex(v)
        if self._in_batch:
            # Same deferral as delete_edge: no query can run before the
            # batch ends, so a vertex-removal storm rebuilds once too.
            self._rebuild_pending = True
        else:
            self.index = self.build_index()

    def label_payload(self, v):
        from repro.exceptions import VertexNotFound

        try:
            hubs, dists = self.index.label_arrays(v)
        except VertexNotFound:
            return None
        return [[h, d] for h, d in zip(hubs, dists)]

    def verify(self, sample_pairs=None, seed=0):
        from repro.verify import verify_sd

        return verify_sd(self.graph, self.index,
                         sample_pairs=sample_pairs, seed=seed)

    def check_invariants(self):
        from repro.verify import check_sd_invariants

        return check_sd_invariants(self.index)
