"""The backend protocol and registry the engine dispatches over.

A *backend* owns one (graph, index) pair and knows how to build, repair and
query the index for its graph family — the engine layers the serving-path
features (caching, batching, history, rebuild policy) uniformly on top.
The dynamic-shortest-path literature frames directed/weighted/fully-dynamic
as *variants of one problem*; the registry makes that dispatch explicit:

* ``register_backend`` — class decorator adding an implementation;
* ``backend_for_graph`` — pick the backend whose graph type matches;
* ``get_backend`` / ``available_backends`` — lookup and introspection.

Third parties can register their own backend (e.g. an SD-only or a sharded
one) without touching the engine, as long as it implements
:class:`SPCBackend`.
"""

import abc

from repro.exceptions import EngineError

_REGISTRY = {}


class SPCBackend(abc.ABC):
    """One graph family's build / inc / dec / query implementation.

    Subclasses set three class attributes —

    * ``name`` — the registry key (``config.backend`` selects by it);
    * ``graph_type`` — the graph class auto-selection matches on;
    * ``weighted`` / ``directed`` — capability flags the engine consults
      (query-key symmetry, weight handling, vertex-op shapes).

    Instances hold ``graph``, ``index`` and the :class:`EngineConfig`.
    """

    name = None
    graph_type = None
    #: the index class this backend builds — used by the serving layer to
    #: rehydrate checkpoints (see :meth:`index_from_dict`).
    index_type = None
    directed = False
    weighted = False
    #: whether queries answer exact path counts; distance-only families
    #: (the sd backend) serve ``(sd, None)``, and auditors must compare
    #: only the distance half of their answers.
    counts = True

    def __init__(self, graph, index, config):
        self.graph = graph
        self.index = index
        self.config = config

    @classmethod
    def build(cls, graph, config, index=None):
        """Create a backend over ``graph``, building the index if missing."""
        backend = cls(graph, None, config)
        backend.index = index if index is not None else backend.build_index()
        return backend

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def build_index(self):
        """Build a fresh index for the current graph (HP-SPC baseline)."""

    # ------------------------------------------------------------------
    # Snapshot / serialization hooks (the repro.serve seam)
    # ------------------------------------------------------------------

    def snapshot_index(self):
        """Return an independent copy of the index, safe to read from other
        threads while this backend keeps mutating its live index.

        The default relies on the index's own ``copy`` (which rebinds the
        reverse hub maps); backends whose index lacks one must override.
        """
        return self.index.copy()

    def index_to_dict(self):
        """JSON-serializable payload of the live index (checkpointing)."""
        return self.index.to_dict()

    # ------------------------------------------------------------------
    # Label-delta hooks (the repro.shard seam)
    # ------------------------------------------------------------------

    def install_label_sink(self, sink):
        """Arm dirty-vertex tracking on the *current* index.

        ``sink`` is a set collecting every vertex whose labels mutate; the
        serving layer drains it per applied batch to journal label deltas
        for hub-partitioned shards.  Must be re-installed after any index
        replacement (rebuild, SD rebuild-on-delete) — the service detects
        replacement by identity and emits a full-dump reset record.
        """
        self.index.set_dirty_sink(sink)

    def label_payload(self, v):
        """JSON-safe label state of one vertex, or ``None`` if it is gone.

        The default suits any index mirroring ``SPCIndex`` (one label set
        per vertex, hub ranks): a ``[[hub_rank, dist, count], ...]`` list.
        Directed/SD-shaped indexes override with their own shape; shards
        rehydrate through :meth:`iter_label_payloads`-compatible filters.
        """
        from repro.exceptions import VertexNotFound

        try:
            ls = self.index.label_set(v)
        except VertexNotFound:
            return None
        return [[h, d, c] for h, d, c in ls]

    @classmethod
    def iter_label_payloads(cls, index_payload, vertex_type=int):
        """Yield ``(vertex, label_payload)`` for every vertex in a
        checkpointed index payload — the slice-restricted-restore seam:
        shards filter each payload to their hub range instead of
        materializing the full index."""
        for key, entries in index_payload["labels"].items():
            yield vertex_type(key), entries

    @classmethod
    def index_from_dict(cls, payload):
        """Rehydrate an index of this backend's family from a checkpoint."""
        if cls.index_type is None:
            raise EngineError(
                f"backend {cls.name!r} declares no index_type; "
                f"checkpoints cannot be restored for it"
            )
        return cls.index_type.from_dict(payload)

    # ------------------------------------------------------------------
    # Updates — each returns an UpdateStats
    # ------------------------------------------------------------------

    def begin_update_batch(self):
        """Hook: a stream of updates is about to be applied back-to-back.

        No queries will be issued until :meth:`end_update_batch`, so a
        backend may defer expensive per-update work (the SD backend
        coalesces its rebuild-on-delete into one rebuild per batch).
        The default is a no-op; the engine brackets ``apply_stream`` /
        ``apply_batch`` with these hooks.
        """

    def end_update_batch(self):
        """Hook: the update stream ended; restore query-ready state."""

    def check_weight(self, weight):
        """Validate an insert_edge weight *before* any mutation happens.

        The engine calls this ahead of endpoint auto-creation so a doomed
        insertion cannot leave half-registered vertices behind.
        """
        if weight is not None:
            raise EngineError(
                f"the {self.name} backend takes no edge weights"
            )

    @abc.abstractmethod
    def insert_edge(self, a, b, weight=None):
        """IncSPC for this family; ``weight`` only on weighted backends."""

    @abc.abstractmethod
    def delete_edge(self, a, b):
        """DecSPC for this family."""

    def set_weight(self, a, b, new_weight):
        """Change an edge weight (weighted backends only)."""
        raise EngineError(
            f"backend {self.name!r} does not support edge-weight updates"
        )

    def add_vertex(self, v):
        """Register a brand-new vertex with the graph and the index."""
        self.graph.add_vertex(v)
        self.index.add_vertex(v)

    def remove_vertex(self, v):
        """Drop an (already isolated) vertex from graph and index."""
        self.graph.remove_vertex(v)
        self.index.drop_vertex_labels(v)

    # ------------------------------------------------------------------
    # Shape adapters for the engine's generic vertex operations
    # ------------------------------------------------------------------

    def initial_edges(self, v, edges, in_edges=()):
        """Normalize an insert_vertex edge spec to (a, b, weight) triples."""
        if in_edges:
            raise EngineError(
                f"backend {self.name!r} has no in-edges; pass edges= only"
            )
        return [(v, u, None) for u in edges]

    def incident_edges(self, v):
        """Every edge a delete_vertex must remove, as (a, b) pairs."""
        return [(v, u) for u in self.graph.neighbors(v)]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def verify(self, sample_pairs=None, seed=0):
        """Check the index against ground truth; raises IndexCorruption."""

    def check_invariants(self):
        """Validate structural label invariants; raises IndexCorruption.

        Unlike :meth:`verify` this never touches the graph: it checks
        sortedness, self-labels, the rank constraint and the reverse hub
        map's consistency with the label sets.  The default suits any
        backend whose index mirrors :class:`repro.core.index.SPCIndex`;
        directed/SD-shaped indexes override.
        """
        from repro.verify import check_invariants

        return check_invariants(self.index)

    def __repr__(self):
        return f"{type(self).__name__}(graph={self.graph!r}, index={self.index!r})"


def register_backend(cls):
    """Class decorator: add an :class:`SPCBackend` subclass to the registry.

    Registration order matters for auto-selection — earlier registrations
    win when several ``graph_type``s match via subclassing.
    """
    if not (isinstance(cls, type) and issubclass(cls, SPCBackend)):
        raise EngineError(f"register_backend expects an SPCBackend subclass, got {cls!r}")
    if not cls.name or cls.graph_type is None:
        raise EngineError(
            f"backend {cls.__name__} must define 'name' and 'graph_type'"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get_backend(name):
    """Look a backend class up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def backend_for_graph(graph):
    """Auto-select the backend whose ``graph_type`` matches ``graph``.

    Exact type matches take precedence over subclass matches, so a custom
    backend registered for a Graph subclass wins on its own type.
    """
    for cls in _REGISTRY.values():
        if type(graph) is cls.graph_type:
            return cls
    for cls in _REGISTRY.values():
        if isinstance(graph, cls.graph_type):
            return cls
    raise EngineError(
        f"no registered backend accepts graphs of type "
        f"{type(graph).__name__}; available: "
        f"{ {n: c.graph_type.__name__ for n, c in _REGISTRY.items()} }"
    )


def available_backends():
    """Mapping of registered backend name -> graph type name."""
    return {name: cls.graph_type.__name__ for name, cls in _REGISTRY.items()}
