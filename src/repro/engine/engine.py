"""The backend-agnostic SPC engine: one facade for every graph family.

``SPCEngine`` is the single public entry point for dynamic shortest-path
counting.  It auto-selects a backend from the graph type (or honours
``config.backend``), owns the maintenance loop (rebuild policies, drift
checks, streaming stats) and the serving path (query cache, batch queries,
net-effect update batches) *uniformly* — features that used to exist only
on the undirected facade now apply to directed and weighted graphs too.

Example
-------
>>> import repro
>>> g = repro.Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
>>> engine = repro.open(g)
>>> engine.backend_name
'core'
>>> engine.query(0, 2)
(2, 2)
>>> engine.query_many([(0, 2), (1, 3)])
[(2, 2), (2, 2)]
>>> _ = engine.insert_edge(0, 2)
>>> engine.query(0, 2)
(1, 1)
"""

import time

from repro.core.stats import StreamStats, UpdateStats
from repro.engine.backends import backend_for_graph, get_backend
from repro.engine.cache import QueryCache
from repro.engine.config import EngineConfig
from repro.exceptions import EngineError


def source_probe_or_merge(index, s, group_size):
    """Pick the answer strategy for one source's group of queries.

    Returns a ``probe(t) -> (sd, spc)``: the PSPC-style shared scan
    (``index.source_probe``) when the group has enough targets to
    amortize materializing L(s), else the per-pair two-pointer merge.
    Shared by :meth:`SPCEngine.query_many` and the serving layer's
    :meth:`~repro.serve.SnapshotView.query_many` so the heuristic cannot
    silently diverge between the two batch paths.
    """
    source_probe = getattr(index, "source_probe", None)
    if source_probe is not None and group_size >= 2:
        return source_probe(s)
    return lambda t: index.query(s, t)


def baseline_answer(graph, s, t, directed=False, weighted=False, counts=True):
    """Recompute (sd, spc) for one pair by direct traversal — no index.

    The trusted-baseline primitive of the audit subsystem
    (:mod:`repro.audit`): answers come from the reference traversals in
    :mod:`repro.traversal`, so they are correct by construction whatever
    state the maintained labels are in.  ``counts=False`` mirrors the
    distance-only families and answers ``(sd, None)``.

    Endpoints absent from the graph answer ``(inf, 0)`` — the same
    convention the indexes use for unreachable pairs.
    """
    from repro.traversal import (
        bfs_counting_pair,
        dijkstra_counting_pair,
        directed_bfs_counting_pair,
    )

    if not (graph.has_vertex(s) and graph.has_vertex(t)):
        d, c = float("inf"), 0
    elif directed:
        d, c = directed_bfs_counting_pair(graph, s, t)
    elif weighted:
        d, c = dijkstra_counting_pair(graph, s, t)
    else:
        d, c = bfs_counting_pair(graph, s, t)
    if not counts:
        return d, None
    return d, c


def batch_answers(index, pairs):
    """Answer (s, t) pairs against one index state, cache-free.

    The uncached core of the PSPC-style batch path: group by source, one
    :func:`source_probe_or_merge` probe per group.  ``SPCEngine.query_many``
    layers cache lookups and miss-deduplication on top of the same
    grouping; the serving layer's immutable snapshots call this directly.
    """
    pairs = list(pairs)
    answers = [None] * len(pairs)
    by_source = {}
    for i, (s, t) in enumerate(pairs):
        by_source.setdefault(s, []).append((t, i))
    for s, group in by_source.items():
        probe = source_probe_or_merge(index, s, len(group))
        for t, i in group:
            answers[i] = probe(t)
    return answers


class SPCEngine:
    """A shortest-path-counting oracle over any supported dynamic graph.

    Create one via :func:`repro.open` (auto-selection) or directly::

        engine = SPCEngine(graph, config=EngineConfig(rebuild_every=500))

    The engine owns its graph and index: mutate only through the engine so
    the index and the query cache stay in sync with the topology.
    """

    def __init__(self, graph, config=None, index=None, backend=None):
        self._config = config if config is not None else EngineConfig()
        if backend is not None:
            backend_cls = get_backend(backend)
        elif self._config.backend is not None:
            backend_cls = get_backend(self._config.backend)
        else:
            backend_cls = backend_for_graph(graph)
        self._backend = backend_cls.build(graph, self._config, index=index)
        self._cache = (
            QueryCache(self._config.cache_size)
            if self._config.cache_size else None
        )
        self._epoch = 0
        self._updates_since_rebuild = 0
        self.history = StreamStats()
        self._obs = None

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    @property
    def graph(self):
        """The underlying graph (mutate only through this engine)."""
        return self._backend.graph

    @property
    def index(self):
        """The maintained SPC index (family-specific type)."""
        return self._backend.index

    @property
    def config(self):
        """The engine's :class:`EngineConfig` (frozen)."""
        return self._config

    @property
    def backend(self):
        """The active :class:`SPCBackend` instance."""
        return self._backend

    @property
    def backend_name(self):
        """The registry name of the active backend."""
        return self._backend.name

    @property
    def epoch(self):
        """Monotone counter of topology changes (drives cache validity)."""
        return self._epoch

    def seed_epoch(self, epoch):
        """Fast-forward the epoch counter (checkpoint restore only).

        The serving layer uses the epoch as a cross-restart consistency
        coordinate, so a restored engine must not reissue epoch numbers
        readers already saw.  Rewinding is refused — a lower epoch would
        resurrect stale cache entries and break snapshot monotonicity.
        """
        if epoch < self._epoch:
            raise EngineError(
                f"cannot rewind epoch from {self._epoch} to {epoch}"
            )
        self._epoch = epoch

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------

    def set_metrics(self, registry):
        """Install (or clear, with ``None``) observability counters.

        Promotes the cache/stream accessors into ``registry`` as callback
        gauges (``repro_engine_cache_*``, ``repro_engine_*`` — see
        :mod:`repro.obs.bind`) and arms hot-path counters for answered
        queries, shared probe scans and singleton pair merges.  An
        uninstrumented engine pays one attribute check per call.
        """
        if registry is None:
            self._obs = None
            return
        from repro.obs.bind import bind_engine

        bind_engine(registry, self)
        self._obs = (
            registry.counter("repro_engine_queries"),
            registry.counter("repro_engine_probe_scans"),
            registry.counter("repro_engine_pair_merges"),
        )

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)), served from the cache when warm."""
        obs = self._obs
        if obs is not None:
            obs[0].inc()
        if self._cache is None:
            if obs is not None:
                obs[2].inc()
            return self._backend.index.query(s, t)
        key = self._cache_key(s, t)
        answer = self._cache.get(key)
        if answer is None:
            answer = self._backend.index.query(s, t)
            self._cache.put(key, answer)
            if obs is not None:
                obs[2].inc()
        return answer

    def query_many(self, pairs):
        """Answer a batch of (s, t) pairs; returns answers in order.

        The PSPC-style shared-scan serving path: cache misses are grouped
        by source, each distinct source's labels are materialized into one
        hub -> (dist, count) dict, and every pair of that group is answered
        by a single probe-scan over the target's label arrays — the
        two-pointer merge runs only for singleton sources.  Repeated pairs
        within the batch compute exactly once (deduplicated on the cache
        key before the cache is consulted, so each distinct missing pair
        records exactly one miss), pairs repeated across batches are
        served from the cache until the next update, and epoch/
        invalidation semantics are unchanged.
        """
        pairs = list(pairs)
        answers = [None] * len(pairs)
        cache = self._cache
        key_indices = {}
        for i, (s, t) in enumerate(pairs):
            key = self._cache_key(s, t)
            pending = key_indices.get(key)
            if pending is not None:  # duplicate of a pending miss
                pending.append(i)
                continue
            if cache is not None:
                hit = cache.get(key)
                if hit is not None:
                    answers[i] = hit
                    continue
            key_indices[key] = [i]

        by_source = {}
        for key, indices in key_indices.items():
            s, t = pairs[indices[0]]
            by_source.setdefault(s, []).append((t, key, indices))

        obs = self._obs
        if obs is not None:
            obs[0].inc(len(pairs))
            obs[1].inc(len(by_source))

        index = self._backend.index
        for s, group in by_source.items():
            probe = source_probe_or_merge(index, s, len(group))
            for t, key, indices in group:
                answer = probe(t)
                if cache is not None:
                    cache.put(key, answer)
                for i in indices:
                    answers[i] = answer
        return answers

    def distance(self, s, t):
        """Return sd(s, t)."""
        return self.query(s, t)[0]

    def count(self, s, t):
        """Return spc(s, t)."""
        return self.query(s, t)[1]

    def recompute(self, s, t):
        """Recompute (sd, spc) by direct traversal, bypassing the index.

        The audit subsystem's baseline hook: a :func:`baseline_answer`
        over the live graph, shaped like :meth:`query` (distance-only
        backends answer ``(sd, None)``), but never touching the maintained
        labels or the cache — so it stays trustworthy even when the index
        is corrupt.
        """
        backend = self._backend
        return baseline_answer(
            backend.graph, s, t,
            directed=backend.directed,
            weighted=backend.weighted,
            counts=backend.counts,
        )

    def cache_info(self):
        """Query-cache counters, or ``None`` when caching is disabled."""
        return self._cache.info() if self._cache is not None else None

    def _cache_key(self, s, t):
        if self._backend.directed:
            return (s, t)
        return (s, t) if s <= t else (t, s)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert_edge(self, a, b, weight=None):
        """Insert edge (a, b) via IncSPC, creating missing endpoints.

        ``weight`` is required by the weighted backend and rejected by the
        unweighted ones — validated up front, so a rejected insertion
        leaves no half-created endpoints behind.
        """
        self._backend.check_weight(weight)
        for v in (a, b):
            if not self.graph.has_vertex(v):
                self.insert_vertex(v)
        start = time.perf_counter()
        stats = self._backend.insert_edge(a, b, weight)
        stats.elapsed = time.perf_counter() - start
        self._after_update(stats)
        return stats

    def delete_edge(self, a, b):
        """Delete edge (a, b) via DecSPC."""
        start = time.perf_counter()
        stats = self._backend.delete_edge(a, b)
        stats.elapsed = time.perf_counter() - start
        self._after_update(stats)
        return stats

    def set_weight(self, a, b, new_weight):
        """Change edge (a, b)'s weight (weighted backend only).

        Dispatches to the incremental path on decreases and the decremental
        path on increases; equal weight is a recorded no-op.
        """
        start = time.perf_counter()
        stats = self._backend.set_weight(a, b, new_weight)
        stats.elapsed = time.perf_counter() - start
        self._after_update(stats)
        return stats

    def insert_vertex(self, v, edges=(), in_edges=()):
        """Add vertex ``v`` (lowest rank) plus optional initial edges.

        The edge spec is backend-shaped: plain neighbor ids for core,
        (neighbor, weight) pairs for weighted, out-neighbors in ``edges``
        and in-neighbors in ``in_edges`` for directed.  Each initial edge
        is recorded as its own update; the returned stats aggregate the
        whole operation.
        """
        initial = self._backend.initial_edges(v, edges, in_edges)
        start = time.perf_counter()
        self._backend.add_vertex(v)
        marker = UpdateStats(kind="insert_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self._after_update(marker)
        result = UpdateStats(kind="insert_vertex", edge=(v,))
        result.merge(marker)
        for a, b, w in initial:
            result.merge(self.insert_edge(a, b, w))
        return result

    def delete_vertex(self, v):
        """Remove vertex ``v``: DecSPC per incident edge, then drop labels."""
        result = UpdateStats(kind="delete_vertex", edge=(v,))
        for a, b in self._backend.incident_edges(v):
            result.merge(self.delete_edge(a, b))
        start = time.perf_counter()
        self._backend.remove_vertex(v)
        marker = UpdateStats(kind="delete_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self._after_update(marker)
        result.elapsed += marker.elapsed
        return result

    def apply(self, update):
        """Apply one workload update object (see repro.workloads.updates)."""
        apply_to = getattr(update, "apply", None)
        if apply_to is None:
            raise TypeError(f"unsupported update {update!r}")
        return apply_to(self)

    def apply_stream(self, updates):
        """Apply an iterable of updates; returns the list of stats.

        The stream is bracketed by the backend's update-batch hooks, so a
        backend may defer per-update work to the end of the stream (the SD
        backend's batched rebuild); the index is query-ready again before
        this returns.
        """
        self._backend.begin_update_batch()
        try:
            return [self.apply(u) for u in updates]
        finally:
            self._backend.end_update_batch()

    def apply_logged_batches(self, records):
        """Replay WAL records — an iterable of ``(seq, updates)`` pairs —
        and return the last sequence number applied (``None`` when empty).

        The replica-side apply path: records come from a write-ahead log,
        so they are already net-effect (the primary coalesced before
        logging) and must be applied verbatim, in order.  The whole record
        stream shares one ``begin/end_update_batch`` bracket, so backends
        that defer per-update work amortize it across the entire tail (the
        SD backend rebuilds once per replayed tail, not once per record).
        """
        last_seq = None
        self._backend.begin_update_batch()
        try:
            for seq, updates in records:
                for update in updates:
                    self.apply(update)
                last_seq = seq
        finally:
            self._backend.end_update_batch()
        return last_seq

    def apply_batch(self, updates, coalesce=None):
        """Apply an edge-update batch with set semantics (net effect only).

        Insert/delete churn that cancels out within the batch is skipped
        entirely, and weight churn on weighted graphs nets down to a single
        ``set_weight`` (see :mod:`repro.core.batch`).  Returns (stats list,
        cancelled-op count).  ``coalesce=False`` (or
        ``config.coalesce_batches = False``) replays the batch verbatim.
        """
        from repro.core.batch import coalesce_edge_updates

        if coalesce is None:
            coalesce = self._config.coalesce_batches
        if not coalesce:
            return self.apply_stream(list(updates)), 0
        effective, cancelled = coalesce_edge_updates(self.graph, updates)
        return self.apply_stream(effective), cancelled

    # ------------------------------------------------------------------
    # Rebuild policy
    # ------------------------------------------------------------------

    def rebuild(self):
        """Reconstruct the index from scratch (the HP-SPC baseline).

        Returns the build time in seconds; resets the lazy-rebuild counter
        and expires the query cache.
        """
        start = time.perf_counter()
        self._backend.index = self._backend.build_index()
        self._updates_since_rebuild = 0
        self._epoch += 1
        if self._cache is not None:
            self._cache.invalidate()
        return time.perf_counter() - start

    def drift(self, samples=1000, seed=0):
        """Measure how stale the frozen vertex ordering has become (§6)."""
        from repro.order import drift_report

        return drift_report(self.graph, self.index.order, samples=samples,
                            seed=seed)

    def _after_update(self, stats):
        if stats.kind in ("noop", "insert_vertex"):
            # Recorded for the history, but no cached answer can have
            # changed: an unchanged weight alters nothing, and a brand-new
            # isolated vertex has no cached queries (delete_vertex, by
            # contrast, must invalidate).  Don't advance the rebuild
            # counter either.
            self.history.record(stats)
            return
        self._epoch += 1
        if self._cache is not None:
            self._cache.invalidate()
        self.history.record(stats)
        if stats.kind == "delete_vertex":
            return
        self._updates_since_rebuild += 1
        if (
            self._config.rebuild_every
            and self._updates_since_rebuild >= self._config.rebuild_every
        ):
            self.rebuild()
            return
        if (
            self._config.rebuild_drift_threshold is not None
            and self._updates_since_rebuild % self._config.drift_check_every == 0
            and self.drift()["sampled_inversions"]
            > self._config.rebuild_drift_threshold
        ):
            self.rebuild()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def check(self, sample_pairs=None, seed=0):
        """Verify the index against ground truth; raises on mismatch."""
        self._backend.verify(sample_pairs=sample_pairs, seed=seed)
        return True

    def check_invariants(self):
        """Validate structural label invariants without touching the graph.

        Cheaper than :meth:`check` (no BFS ground truth): sortedness,
        self-labels, the rank constraint, and reverse-hub-map consistency.
        Raises :class:`~repro.exceptions.IndexCorruption` on violation.
        """
        self._backend.check_invariants()
        return True

    def __repr__(self):
        return (
            f"SPCEngine(backend={self.backend_name!r}, "
            f"graph={self.graph!r}, index={self.index!r})"
        )


def open(graph, config=None, index=None, **overrides):  # noqa: A001
    """Open an :class:`SPCEngine` over ``graph`` with auto-selected backend.

    ``config`` takes a full :class:`EngineConfig`; keyword overrides patch
    individual fields (``repro.open(g, cache_size=0)``).  ``index`` reuses
    a prebuilt index instead of building one.

    Example
    -------
    >>> import repro
    >>> engine = repro.open(repro.Graph.from_edges([(0, 1)]), cache_size=16)
    >>> engine.query(0, 1)
    (1, 1)
    """
    if config is None:
        config = EngineConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    return SPCEngine(graph, config=config, index=index)
