"""Epoch-invalidated LRU cache for the engine's query fast path.

Repeated SPC traffic (the PSPC serving scenario) frequently re-asks the
same (s, t) pairs; label-set merging is cheap but not free, so the engine
memoizes answers.  Correctness under updates comes from *epochs*: every
mutation bumps the engine's epoch, and a cached entry only counts as a hit
while its stamp matches the current epoch.  Stale entries are evicted
lazily — on the next touch, or by ordinary LRU pressure — so invalidation
is O(1) regardless of how many entries the cache holds.
"""

from collections import OrderedDict

_MISS = object()


class QueryCache:
    """A bounded LRU mapping of query keys to answers, stamped by epoch.

    Example
    -------
    >>> cache = QueryCache(maxsize=2)
    >>> cache.put((0, 1), (1, 1))
    >>> cache.get((0, 1))
    (1, 1)
    >>> cache.invalidate()          # an update happened
    >>> cache.get((0, 1)) is None   # stale entry no longer answers
    True
    >>> cache.hits, cache.misses
    (1, 1)
    """

    __slots__ = ("maxsize", "epoch", "hits", "misses", "invalidations", "_data")

    def __init__(self, maxsize):
        if maxsize < 1:
            raise ValueError(f"QueryCache needs maxsize >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._data = OrderedDict()

    def __len__(self):
        return len(self._data)

    def get(self, key, default=None):
        """Return the cached answer for ``key`` or ``default`` on a miss.

        Entries written before the last :meth:`invalidate` are treated as
        misses and dropped.
        """
        entry = self._data.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return default
        epoch, value = entry
        if epoch != self.epoch:
            del self._data[key]
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        self._data[key] = (self.epoch, value)
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def invalidate(self):
        """Expire every current entry (O(1): just advances the epoch)."""
        self.epoch += 1
        self.invalidations += 1

    def clear(self):
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = self.misses = self.invalidations = 0

    def info(self):
        """A dict snapshot of the cache counters (for dashboards/tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "epoch": self.epoch,
        }

    def __repr__(self):
        return (
            f"QueryCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, epoch={self.epoch})"
        )
