"""repro.engine — the unified, backend-agnostic SPC serving engine.

One facade for every graph family::

    import repro

    engine = repro.open(graph)            # Graph | DiGraph | WeightedGraph
    engine.query(s, t)                    # cached (sd, spc)
    engine.query_many(pairs)              # batch serving
    engine.insert_edge(u, v)              # IncSPC + cache invalidation
    engine.apply_batch(updates)           # net-effect coalescing

See DESIGN.md §7 for the architecture; the legacy ``DynamicSPC`` /
``DynamicDirectedSPC`` / ``DynamicWeightedSPC`` facades are deprecation
shims over this engine.
"""

from repro.engine.backends import (
    SPCBackend,
    available_backends,
    backend_for_graph,
    get_backend,
    register_backend,
)
from repro.engine.cache import QueryCache
from repro.engine.config import EngineConfig
from repro.engine.engine import SPCEngine, baseline_answer
from repro.engine.engine import open as open_engine

# Importing the adapters registers the three built-in backends.
from repro.engine import adapters as _adapters  # noqa: F401  isort: skip

__all__ = [
    "SPCEngine",
    "EngineConfig",
    "SPCBackend",
    "QueryCache",
    "baseline_answer",
    "open_engine",
    "register_backend",
    "get_backend",
    "backend_for_graph",
    "available_backends",
]
