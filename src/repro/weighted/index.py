"""Weighted SPC-Index (Appendix C.2).

"For weighted graphs, the labels store the sum of weights along the
shortest paths instead of the number of hops."  Structurally identical to
the unweighted index — the same sorted LabelSet and merge queries work with
float or int distances — so this class mirrors
:class:`repro.core.index.SPCIndex` with weighted semantics documented,
including the incrementally-maintained reverse hub map (DESIGN.md §9).
"""

from repro.core.labels import ENTRY_BYTES, LabelSet, counting_probe
from repro.exceptions import VertexNotFound
from repro.order import VertexOrder

INF = float("inf")

_NO_HOLDERS = frozenset()


class WeightedSPCIndex:
    """Hub labeling for shortest-path counting on weighted graphs."""

    __slots__ = ("_order", "_labels", "_holders", "_dirty")

    def __init__(self, order, with_self_labels=True):
        if not isinstance(order, VertexOrder):
            order = VertexOrder(order)
        self._order = order
        self._labels = {}
        self._holders = {}
        self._dirty = None
        rank = order.rank_map()
        for v in order:
            ls = LabelSet()
            ls.bind(self._holders, v)
            if with_self_labels:
                ls.set(rank[v], 0, 1)
            self._labels[v] = ls

    @property
    def order(self):
        """The total order ≤ the index was built under."""
        return self._order

    def rank(self, v):
        """Rank number of vertex ``v`` (0 = highest)."""
        return self._order.rank(v)

    def __contains__(self, v):
        return v in self._labels

    def vertices(self):
        """Iterate over indexed vertex ids."""
        return iter(self._labels)

    def label_set(self, v):
        """The internal LabelSet of ``v`` (library use)."""
        try:
            return self._labels[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def labels(self, v):
        """L(v) in id space: [(hub_vertex, dist, count)]."""
        ls = self.label_set(v)
        return [(self._order.vertex(h), d, c) for h, d, c in ls]

    def holders(self, hub_rank):
        """Vertices whose label set contains ``hub_rank`` (read-only set)."""
        return self._holders.get(hub_rank, _NO_HOLDERS)

    def holders_map(self):
        """The internal {hub_rank: set(vertex_id)} reverse map (read-only)."""
        return self._holders

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)) under edge-weight distances."""
        return _merge(self.label_set(s), self.label_set(t), None)

    def pre_query(self, s, t):
        """Upper-bound (d̄, c̄) via hubs ranked strictly above s."""
        return _merge(self.label_set(s), self.label_set(t), self._order.rank(s))

    def distance(self, s, t):
        """Return the weighted shortest distance sd(s, t)."""
        return self.query(s, t)[0]

    def count(self, s, t):
        """Return spc(s, t)."""
        return self.query(s, t)[1]

    def source_probe(self, s, hub_filter=None):
        """Return ``probe(t) -> (sd, spc)`` sharing one scan of L(s).

        See :func:`repro.core.labels.counting_probe`; identical under
        weighted distances.  ``hub_filter`` restricts the merge to a
        hub-rank subset, yielding shard-mergeable partial answers.
        """
        return counting_probe(self.label_set(s), self.label_set, hub_filter)

    def set_dirty_sink(self, sink):
        """Install (or clear) a dirty-vertex sink (see SPCIndex)."""
        self._dirty = sink
        for ls in self._labels.values():
            ls._sink = sink

    def add_vertex(self, v):
        """Register a new isolated vertex with the lowest rank."""
        r = self._order.append(v)
        ls = LabelSet()
        ls.bind(self._holders, v)
        ls._sink = self._dirty
        ls.set(r, 0, 1)
        self._labels[v] = ls
        return r

    def drop_vertex_labels(self, v):
        """Forget ``v``'s label set and tombstone its rank.

        Stale entries elsewhere that reference ``v`` as hub are purged via
        the reverse hub map — O(|L(v)| + |holders(v)|).
        """
        ls = self._labels.get(v)
        if ls is None:
            raise VertexNotFound(v)
        rv = self._order.rank(v)
        ls.clear()
        for u in list(self._holders.get(rv, _NO_HOLDERS)):
            self._labels[u].remove(rv)
        del self._labels[v]
        self._order.remove(v)

    @property
    def num_entries(self):
        """Total label entries."""
        return sum(len(ls) for ls in self._labels.values())

    @property
    def size_bytes(self):
        """Size under the paper's 8-bytes-per-entry rule."""
        return self.num_entries * ENTRY_BYTES

    def to_dict(self):
        """Return a JSON-serializable snapshot (tombstones become null)."""
        return {
            "order": self._order.as_raw_list(),
            "labels": {
                str(v): [[h, d, c] for h, d, c in ls]
                for v, ls in self._labels.items()
            },
        }

    @classmethod
    def from_dict(cls, payload, vertex_type=int):
        """Rebuild an index from :meth:`to_dict` output."""
        index = cls(VertexOrder(payload["order"]), with_self_labels=False)
        for key, entries in payload["labels"].items():
            ls = index.label_set(vertex_type(key))
            for h, d, c in entries:
                ls.set(h, d, c)
        return index

    def copy(self):
        """Return an independent deep copy (reverse hub map rebuilt)."""
        clone = WeightedSPCIndex(
            VertexOrder(self._order.as_raw_list()), with_self_labels=False
        )
        for v, ls in self._labels.items():
            dup = ls.copy()
            dup.bind(clone._holders, v)
            clone._labels[v] = dup
        return clone

    def __repr__(self):
        return f"WeightedSPCIndex(n={len(self._labels)}, entries={self.num_entries})"


def _merge(ls, lt, stop_rank):
    hubs_s, dists_s, counts_s = ls.hubs, ls.dists, ls.counts
    hubs_t, dists_t, counts_t = lt.hubs, lt.dists, lt.counts
    i, j = 0, 0
    len_s, len_t = len(hubs_s), len(hubs_t)
    best = INF
    count = 0
    while i < len_s and j < len_t:
        hs = hubs_s[i]
        ht = hubs_t[j]
        if hs == ht:
            if stop_rank is not None and hs >= stop_rank:
                break
            d = dists_s[i] + dists_t[j]
            if d < best:
                best = d
                count = counts_s[i] * counts_t[j]
            elif d == best:
                count += counts_s[i] * counts_t[j]
            i += 1
            j += 1
        elif hs < ht:
            i += 1
        else:
            j += 1
    return best, count
