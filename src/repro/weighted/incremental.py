"""Weighted IncSPC (Appendix C.2): edge insertion and weight decrease.

"When an edge (a, b) with weight w_ab is inserted, the affected hubs come
from L(a) ∪ L(b).  Starting from b, a partial Dijkstra-like execution is
performed with an initial distance of d_hb + w_ab and initial path counting
of c_hb, where (h, d_hb, c_hb) ∈ L(a)."  (The label is read from L(a) — the
search enters the edge at a and continues beyond b.)  Decreasing the weight
of an existing edge is the identical procedure with the new weight.
"""

import heapq

from repro.core.stats import UpdateStats
from repro.exceptions import GraphError

INF = float("inf")


def inc_spc_weighted(graph, index, a, b, weight, stats=None):
    """Insert edge (a, b, weight) into ``graph`` and repair ``index``."""
    if stats is None:
        stats = UpdateStats(kind="insert", edge=(a, b))
    aff_a = list(index.label_set(a).hubs)
    aff_b = list(index.label_set(b).hubs)
    stats.affected_hubs = len(set(aff_a) | set(aff_b))

    graph.add_edge(a, b, weight)
    _repair_after_shortening(graph, index, a, b, weight, aff_a, aff_b, stats)
    return stats


def decrease_weight(graph, index, a, b, new_weight, stats=None):
    """Decrease the weight of edge (a, b) and repair ``index``.

    A decrease can only create new shortest paths through (a, b), so it is
    handled exactly like an insertion with initial distance d + w'.
    """
    if stats is None:
        stats = UpdateStats(kind="insert", edge=(a, b))
    old = graph.weight(a, b)
    if new_weight >= old:
        raise GraphError(
            f"decrease_weight: new weight {new_weight} is not below {old}; "
            "use increase_weight for increases"
        )
    aff_a = list(index.label_set(a).hubs)
    aff_b = list(index.label_set(b).hubs)
    stats.affected_hubs = len(set(aff_a) | set(aff_b))

    graph.set_weight(a, b, new_weight)
    _repair_after_shortening(graph, index, a, b, new_weight, aff_a, aff_b, stats)
    return stats


def _repair_after_shortening(graph, index, a, b, weight, aff_a, aff_b, stats):
    rank = index.order.rank_map()
    in_a, in_b = set(aff_a), set(aff_b)
    for h in sorted(in_a | in_b):
        if h in in_a and h <= rank[b]:
            _inc_update_dijkstra(graph, index, h, a, b, weight, stats)
        if h in in_b and h <= rank[a]:
            _inc_update_dijkstra(graph, index, h, b, a, weight, stats)


def _inc_update_dijkstra(graph, index, h, va, vb, w_ab, stats):
    """Partial Dijkstra rooted at hub ``h``, entering the edge at va -> vb."""
    order = index.order
    rank = order.rank_map()
    label_of = index.label_set
    entry = label_of(va).get(h)
    if entry is None:
        return
    d0, c0 = entry

    hub_vertex = order.vertex(h)
    hub_labels = label_of(hub_vertex)
    root_dist = dict(zip(hub_labels.hubs, hub_labels.dists))

    dist = {vb: d0 + w_ab}
    count = {vb: c0}
    settled = set()
    heap = [(d0 + w_ab, rank[vb], vb)]
    while heap:
        dv, _, v = heapq.heappop(heap)
        if v in settled or dv > dist[v]:
            continue
        settled.add(v)
        stats.bfs_visits += 1
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        dl = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < dl:
                    dl = cand
        if dl < dv:
            continue
        existing = ls.get(h)
        if existing is not None:
            d_i, c_i = existing
            if dv == d_i:
                ls.set(h, dv, count[v] + c_i)
                stats.renew_count += 1
            else:
                ls.set(h, dv, count[v])
                stats.renew_dist += 1
        else:
            ls.set(h, dv, count[v])
            stats.inserted += 1
        cv = count[v]
        for w, weight in graph.neighbors(v).items():
            if w in settled or h > rank[w]:
                continue
            cand = dv + weight
            dw = dist.get(w)
            if dw is None or cand < dw:
                dist[w] = cand
                count[w] = cv
                heapq.heappush(heap, (cand, rank[w], w))
            elif cand == dw:
                count[w] += cv
