"""Weighted extension (Appendix C.2): Dijkstra-based labeling and updates.

Note on float weights: shortest-path *counting* relies on exact distance
ties; floating-point sums make ties numerically fragile.  Use integer (or
rational) weights when exact counts matter — the tests and benchmarks do.
"""

from repro.weighted.builder import build_weighted_spc_index
from repro.weighted.decremental import dec_spc_weighted, increase_weight
from repro.weighted.dynamic import DynamicWeightedSPC
from repro.weighted.incremental import decrease_weight, inc_spc_weighted
from repro.weighted.index import WeightedSPCIndex

__all__ = [
    "WeightedSPCIndex",
    "build_weighted_spc_index",
    "inc_spc_weighted",
    "dec_spc_weighted",
    "decrease_weight",
    "increase_weight",
    "DynamicWeightedSPC",
]
