"""Deprecated facade: ``DynamicWeightedSPC`` is a shim over the engine.

Prefer ``repro.open(weighted_graph)``.  Weight updates stay first-class
(Appendix C.2): ``set_weight`` dispatches to the incremental path on
decreases and the decremental path on increases, now via the engine's
``weighted`` backend.
"""

import warnings

import repro.engine.adapters  # noqa: F401  (registers the built-in backends)
from repro.engine.config import EngineConfig
from repro.engine.engine import SPCEngine


class DynamicWeightedSPC(SPCEngine):
    """Deprecated alias for an :class:`SPCEngine` on the weighted backend.

    Example
    -------
    >>> from repro.graph import WeightedGraph
    >>> g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2), (0, 2, 5)])
    >>> dyn = DynamicWeightedSPC(g)
    >>> dyn.query(0, 2)
    (4, 1)
    >>> _ = dyn.set_weight(0, 2, 4)   # tie the two routes
    >>> dyn.query(0, 2)
    (4, 2)
    """

    def __init__(self, graph, index=None, strategy="degree",
                 use_isolated_fast_path=True, rebuild_every=None,
                 rebuild_drift_threshold=None, drift_check_every=50):
        warnings.warn(
            "DynamicWeightedSPC is deprecated; use repro.open(graph) "
            "or repro.engine.SPCEngine instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = EngineConfig(
            backend="weighted",
            strategy=strategy,
            rebuild_every=rebuild_every,
            rebuild_drift_threshold=rebuild_drift_threshold,
            drift_check_every=drift_check_every,
            use_isolated_fast_path=use_isolated_fast_path,
            cache_size=0,  # legacy facades never cached queries
        )
        super().__init__(graph, config=config, index=index)

    def insert_edge(self, a, b, weight):
        """Insert edge (a, b, weight); creates missing endpoints."""
        return super().insert_edge(a, b, weight)

    def __repr__(self):
        return f"DynamicWeightedSPC(graph={self.graph!r}, index={self.index!r})"
