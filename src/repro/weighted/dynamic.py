"""Dynamic facade for weighted graphs, including weight changes.

Weight updates are first-class (Appendix C.2): ``set_weight`` dispatches to
the incremental path on decreases and the decremental path on increases.
"""

import time

from repro.core.stats import StreamStats, UpdateStats
from repro.weighted.builder import build_weighted_spc_index
from repro.weighted.decremental import dec_spc_weighted, increase_weight
from repro.weighted.incremental import decrease_weight, inc_spc_weighted


class DynamicWeightedSPC:
    """A shortest-path-counting oracle over a dynamic weighted graph.

    Example
    -------
    >>> from repro.graph import WeightedGraph
    >>> g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2), (0, 2, 5)])
    >>> dyn = DynamicWeightedSPC(g)
    >>> dyn.query(0, 2)
    (4, 1)
    >>> _ = dyn.set_weight(0, 2, 4)   # tie the two routes
    >>> dyn.query(0, 2)
    (4, 2)
    """

    def __init__(self, graph, index=None, strategy="degree",
                 use_isolated_fast_path=True):
        self._graph = graph
        self._index = (
            index if index is not None
            else build_weighted_spc_index(graph, strategy=strategy)
        )
        self._strategy = strategy
        self._use_isolated_fast_path = use_isolated_fast_path
        self.history = StreamStats()

    @property
    def graph(self):
        """The underlying weighted graph."""
        return self._graph

    @property
    def index(self):
        """The maintained weighted SPC-Index."""
        return self._index

    def query(self, s, t):
        """Return (sd(s, t), spc(s, t)) under weighted distances."""
        return self._index.query(s, t)

    def distance(self, s, t):
        """Return the weighted shortest distance."""
        return self._index.distance(s, t)

    def count(self, s, t):
        """Return the shortest-path count."""
        return self._index.count(s, t)

    def insert_edge(self, a, b, weight):
        """Insert edge (a, b, weight); creates missing endpoints."""
        for v in (a, b):
            if not self._graph.has_vertex(v):
                self.insert_vertex(v)
        start = time.perf_counter()
        stats = inc_spc_weighted(self._graph, self._index, a, b, weight)
        stats.elapsed = time.perf_counter() - start
        self.history.record(stats)
        return stats

    def delete_edge(self, a, b):
        """Delete edge (a, b)."""
        start = time.perf_counter()
        stats = dec_spc_weighted(
            self._graph, self._index, a, b,
            use_isolated_fast_path=self._use_isolated_fast_path,
        )
        stats.elapsed = time.perf_counter() - start
        self.history.record(stats)
        return stats

    def set_weight(self, a, b, new_weight):
        """Change an edge's weight; dispatches on the direction of change."""
        old = self._graph.weight(a, b)
        start = time.perf_counter()
        if new_weight == old:
            stats = UpdateStats(kind="noop", edge=(a, b))
        elif new_weight < old:
            stats = decrease_weight(self._graph, self._index, a, b, new_weight)
        else:
            stats = increase_weight(self._graph, self._index, a, b, new_weight)
        stats.elapsed = time.perf_counter() - start
        self.history.record(stats)
        return stats

    def insert_vertex(self, v, edges=()):
        """Add vertex ``v``; ``edges`` are (neighbor, weight) pairs.

        Edge insertions are recorded individually; the returned stats
        aggregate the whole operation.
        """
        start = time.perf_counter()
        self._graph.add_vertex(v)
        self._index.add_vertex(v)
        marker = UpdateStats(kind="insert_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self.history.record(marker)
        result = UpdateStats(kind="insert_vertex", edge=(v,))
        result.merge(marker)
        for u, w in edges:
            result.merge(self.insert_edge(v, u, w))
        return result

    def delete_vertex(self, v):
        """Delete vertex ``v`` via per-edge deletions."""
        result = UpdateStats(kind="delete_vertex", edge=(v,))
        for u in list(self._graph.neighbors(v)):
            result.merge(self.delete_edge(v, u))
        start = time.perf_counter()
        self._graph.remove_vertex(v)
        self._index.drop_vertex_labels(v)
        marker = UpdateStats(kind="delete_vertex", edge=(v,))
        marker.elapsed = time.perf_counter() - start
        self.history.record(marker)
        result.elapsed += marker.elapsed
        return result

    def rebuild(self):
        """Reconstruct the index from scratch."""
        start = time.perf_counter()
        self._index = build_weighted_spc_index(self._graph, strategy=self._strategy)
        return time.perf_counter() - start

    def __repr__(self):
        return f"DynamicWeightedSPC(graph={self._graph!r}, index={self._index!r})"
