"""Weighted HP-SPC construction: pruned Dijkstra per hub (Appendix C.2).

"Dijkstra's algorithm replaces BFS for index construction, and a priority
queue is used instead of a FIFO queue."  The pruning probe and rank
restriction are unchanged; counting follows the standard Dijkstra counting
recurrence — counts are final when a vertex is settled, because every
tied predecessor has strictly smaller distance under positive weights.
"""

import heapq

from repro.order import VertexOrder, make_order
from repro.weighted.index import WeightedSPCIndex

INF = float("inf")


def build_weighted_spc_index(graph, order=None, strategy="degree"):
    """Construct the weighted SPC-Index of a :class:`WeightedGraph`."""
    if order is None:
        order = make_order(graph, strategy)
    elif not isinstance(order, VertexOrder):
        order = VertexOrder(order)
    index = WeightedSPCIndex(order, with_self_labels=False)
    rank = order.rank_map()

    for root in order:
        r = rank[root]
        index.label_set(root).set(r, 0, 1)
        if root not in graph:
            continue
        _hub_push_dijkstra(graph, index, rank, root, r)
    return index


def _hub_push_dijkstra(graph, index, rank, root, r):
    label_of = index.label_set
    root_labels = label_of(root)
    root_dist = dict(zip(root_labels.hubs, root_labels.dists))

    dist = {root: 0}
    count = {root: 1}
    settled = set()
    heap = []
    for w, weight in graph.neighbors(root).items():
        if rank[w] > r:
            dist[w] = weight
            count[w] = 1
            heapq.heappush(heap, (weight, rank[w], w))
    settled.add(root)

    while heap:
        dv, _, v = heapq.heappop(heap)
        if v in settled or dv > dist[v]:
            continue
        settled.add(v)
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        pruned = False
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None and rd + dists[i] < dv:
                pruned = True
                break
        if pruned:
            continue
        ls.set(r, dv, count[v])
        cv = count[v]
        for w, weight in graph.neighbors(v).items():
            if rank[w] <= r or w in settled:
                continue
            cand = dv + weight
            dw = dist.get(w)
            if dw is None or cand < dw:
                dist[w] = cand
                count[w] = cv
                heapq.heappush(heap, (cand, rank[w], w))
            elif cand == dw:
                count[w] += cv
    return index
